//! Meso-benchmarks: how fast full cluster-seconds simulate, per system.
//! These are the budgets behind the figure binaries' wall-clock times.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynatune_cluster::experiments::failover::{run_single_trial, FailoverConfig};
use dynatune_cluster::{ClusterConfig, ClusterSim};
use dynatune_core::TuningConfig;
use dynatune_simnet::SimTime;
use std::hint::black_box;
use std::time::Duration;

fn bench_cluster_second(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    for (name, tuning) in [
        ("raft", TuningConfig::raft_default()),
        ("dynatune", TuningConfig::dynatune()),
    ] {
        g.bench_function(format!("10s_5servers_{name}"), |b| {
            b.iter_batched(
                || {
                    ClusterSim::new(&ClusterConfig::stable(
                        5,
                        tuning,
                        Duration::from_millis(100),
                        7,
                    ))
                },
                |mut sim| {
                    sim.run_until(SimTime::from_secs(10));
                    black_box(sim.leader())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.bench_function("10s_17servers_dynatune", |b| {
        b.iter_batched(
            || {
                ClusterSim::new(&ClusterConfig::stable(
                    17,
                    TuningConfig::dynatune(),
                    Duration::from_millis(100),
                    7,
                ))
            },
            |mut sim| {
                sim.run_until(SimTime::from_secs(10));
                black_box(sim.leader())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_failover_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("failover_trial");
    g.sample_size(10);
    for (name, tuning) in [
        ("raft", TuningConfig::raft_default()),
        ("dynatune", TuningConfig::dynatune()),
    ] {
        g.bench_function(name, |b| {
            let cluster = ClusterConfig::stable(5, tuning, Duration::from_millis(100), 99);
            let mut cfg = FailoverConfig::new(cluster, 1);
            cfg.warmup = Duration::from_secs(20);
            cfg.observe = Duration::from_secs(10);
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                black_box(run_single_trial(&cfg, trial))
            });
        });
    }
    g.finish();
}

/// Write-heavy cluster-seconds with the replication pipeline at both
/// extremes: window 1 (the retired ping-pong) floods the event queue with
/// resend-paced round trips, window 8 with back-to-back sends — the two
/// shapes bound what the `pipeline_depth` scenario costs to simulate.
fn bench_pipelined_writes(c: &mut Criterion) {
    use dynatune_cluster::scenario::{NetPlan, ScenarioBuilder};
    use dynatune_cluster::WorkloadSpec;
    use dynatune_kv::OpMix;
    let mut g = c.benchmark_group("pipelined_writes");
    g.sample_size(10);
    for window in [1usize, 8] {
        g.bench_function(format!("8s_3servers_window{window}"), |b| {
            b.iter_batched(
                || {
                    ScenarioBuilder::cluster(3)
                        .tuning(TuningConfig::raft_default())
                        .net(NetPlan::stable(Duration::from_millis(50)))
                        .pipeline_window(window)
                        .max_entries_per_append(64)
                        .seed(7)
                        .workload(
                            WorkloadSpec::steady(2_000.0, Duration::from_secs(4))
                                .starting_at(Duration::from_secs(3))
                                .mix(OpMix::write_heavy())
                                .timeout(None),
                        )
                        .build_sim()
                },
                |mut sim| {
                    sim.run_until(SimTime::from_secs(8));
                    black_box(sim.leader())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_scenario_driver(c: &mut Criterion) {
    use dynatune_cluster::scenario::{
        FaultPlan, Horizon, PartitionSpec, ScenarioBuilder, ScenarioDriver,
    };
    let mut g = c.benchmark_group("scenario_driver");
    g.sample_size(10);
    // A churn cycle through the declarative driver: the cost of plan
    // resolution + trace recording on top of the raw simulation.
    g.bench_function("partition_churn_cycle", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = ScenarioBuilder::cluster(5)
                .tuning(TuningConfig::dynatune())
                .seed(seed)
                .build();
            let plan = FaultPlan::new().flapping_partition(
                Duration::from_secs(20),
                PartitionSpec::LeaderPlusFollowers(1),
                Duration::from_secs(5),
                Duration::from_secs(5),
                2,
            );
            let run = ScenarioDriver::new(config)
                .plan(plan)
                .horizon(Horizon::AfterLastFault(Duration::from_secs(5)))
                .run();
            black_box(run.trace.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cluster_second,
    bench_failover_trial,
    bench_pipelined_writes,
    bench_scenario_driver
);
criterion_main!(benches);
