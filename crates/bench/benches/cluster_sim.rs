//! Meso-benchmarks: how fast full cluster-seconds simulate, per system.
//! These are the budgets behind the figure binaries' wall-clock times.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynatune_cluster::experiments::failover::{run_single_trial, FailoverConfig};
use dynatune_cluster::{ClusterConfig, ClusterSim};
use dynatune_core::TuningConfig;
use dynatune_simnet::SimTime;
use std::hint::black_box;
use std::time::Duration;

fn bench_cluster_second(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    for (name, tuning) in [
        ("raft", TuningConfig::raft_default()),
        ("dynatune", TuningConfig::dynatune()),
    ] {
        g.bench_function(format!("10s_5servers_{name}"), |b| {
            b.iter_batched(
                || {
                    ClusterSim::new(&ClusterConfig::stable(
                        5,
                        tuning,
                        Duration::from_millis(100),
                        7,
                    ))
                },
                |mut sim| {
                    sim.run_until(SimTime::from_secs(10));
                    black_box(sim.leader())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.bench_function("10s_17servers_dynatune", |b| {
        b.iter_batched(
            || {
                ClusterSim::new(&ClusterConfig::stable(
                    17,
                    TuningConfig::dynatune(),
                    Duration::from_millis(100),
                    7,
                ))
            },
            |mut sim| {
                sim.run_until(SimTime::from_secs(10));
                black_box(sim.leader())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_failover_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("failover_trial");
    g.sample_size(10);
    for (name, tuning) in [
        ("raft", TuningConfig::raft_default()),
        ("dynatune", TuningConfig::dynatune()),
    ] {
        g.bench_function(name, |b| {
            let cluster = ClusterConfig::stable(5, tuning, Duration::from_millis(100), 99);
            let mut cfg = FailoverConfig::new(cluster, 1);
            cfg.warmup = Duration::from_secs(20);
            cfg.observe = Duration::from_secs(10);
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                black_box(run_single_trial(&cfg, trial))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cluster_second, bench_failover_trial);
criterion_main!(benches);
