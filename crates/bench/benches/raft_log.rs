//! Micro-benchmarks of the replicated log hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dynatune_raft::{Entry, Progress, RaftLog};
use dynatune_simnet::SimTime;
use std::hint::black_box;
use std::time::Duration;

fn filled_log(n: u64) -> RaftLog<u64> {
    let mut log = RaftLog::new();
    for i in 1..=n {
        log.append(Entry::normal(1 + i / 100, i, Some(i)));
    }
    log
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("raft_log");
    g.throughput(Throughput::Elements(1));
    g.bench_function("append_new", |b| {
        let mut log = filled_log(1);
        b.iter(|| black_box(log.append_new(2, Some(7))));
    });
    g.bench_function("try_append_batch_64", |b| {
        b.iter_batched(
            || {
                let follower = filled_log(1000);
                let batch: Vec<Entry<u64>> = (1001..=1064)
                    .map(|i| Entry::normal(11, i, Some(i)))
                    .collect();
                (follower, batch)
            },
            |(mut follower, batch)| black_box(follower.try_append(1000, 11, &batch)),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("entries_from_256", |b| {
        let log = filled_log(10_000);
        b.iter(|| black_box(log.entries_from(5_000, 256)));
    });
    g.bench_function("term_at", |b| {
        let log = filled_log(10_000);
        let mut i = 1u64;
        b.iter(|| {
            i = i % 10_000 + 1;
            black_box(log.term_at(i))
        });
    });
    g.bench_function("compact_half_of_64k", |b| {
        b.iter_batched(
            || filled_log(65_536),
            |mut log| {
                log.compact(32_768);
                black_box(log.first_index())
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

/// The per-ack bookkeeping of pipelined replication: every committed batch
/// pays one `record_send` + one `on_success` per follower, so window churn
/// sits directly on the replication hot path.
fn bench_progress(c: &mut Criterion) {
    let mut g = c.benchmark_group("progress");
    g.throughput(Throughput::Elements(1));
    g.bench_function("pipeline_send_ack_window8", |b| {
        let mut p = Progress::new(0, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let mut last = 0u64;
        b.iter(|| {
            now += Duration::from_micros(10);
            if p.window_free(8) {
                p.record_send(now, last, last + 2);
                last += 2;
            } else {
                // Acks retire out of order: newest-first stresses the
                // transitive retirement path.
                p.on_success(last);
            }
            black_box(p.oldest_sent_at())
        });
    });
    g.bench_function("pipeline_conflict_suffix_cancel", |b| {
        let mut now = SimTime::ZERO;
        b.iter_batched(
            || {
                let mut p = Progress::new(100, SimTime::ZERO);
                for k in 0..8u64 {
                    now += Duration::from_micros(10);
                    p.record_send(now, 100 + 2 * k, 102 + 2 * k);
                }
                p
            },
            |mut p| {
                p.on_conflict(104);
                black_box(p.next_index)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_append, bench_progress);
criterion_main!(benches);
