//! Micro-benchmarks of the replicated log hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dynatune_raft::{Entry, RaftLog};
use std::hint::black_box;

fn filled_log(n: u64) -> RaftLog<u64> {
    let mut log = RaftLog::new();
    for i in 1..=n {
        log.append(Entry {
            term: 1 + i / 100,
            index: i,
            data: Some(i),
        });
    }
    log
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("raft_log");
    g.throughput(Throughput::Elements(1));
    g.bench_function("append_new", |b| {
        let mut log = filled_log(1);
        b.iter(|| black_box(log.append_new(2, Some(7))));
    });
    g.bench_function("try_append_batch_64", |b| {
        b.iter_batched(
            || {
                let follower = filled_log(1000);
                let batch: Vec<Entry<u64>> = (1001..=1064)
                    .map(|i| Entry {
                        term: 11,
                        index: i,
                        data: Some(i),
                    })
                    .collect();
                (follower, batch)
            },
            |(mut follower, batch)| black_box(follower.try_append(1000, 11, &batch)),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("entries_from_256", |b| {
        let log = filled_log(10_000);
        b.iter(|| black_box(log.entries_from(5_000, 256)));
    });
    g.bench_function("term_at", |b| {
        let log = filled_log(10_000);
        let mut i = 1u64;
        b.iter(|| {
            i = i % 10_000 + 1;
            black_box(log.term_at(i))
        });
    });
    g.bench_function("compact_half_of_64k", |b| {
        b.iter_batched(
            || filled_log(65_536),
            |mut log| {
                log.compact(32_768);
                black_box(log.first_index())
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_append);
criterion_main!(benches);
