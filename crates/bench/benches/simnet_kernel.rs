//! Discrete-event kernel throughput: events per second the simulator can
//! push, which bounds how fast the paper's long experiments regenerate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dynatune_simnet::{
    Channel, CongestionConfig, Host, HostCtx, NetParams, Network, Rng, SimTime, Topology, World,
};
use std::hint::black_box;
use std::time::Duration;

/// Minimal ping host: every wake sends one message to a random-ish peer.
struct Pinger {
    n: usize,
    interval: Duration,
    next: SimTime,
    counter: u64,
}

impl Host for Pinger {
    type Msg = u64;

    fn on_message(&mut self, _ctx: &mut HostCtx<'_, u64>, _from: usize, msg: u64) {
        self.counter = self.counter.wrapping_add(msg);
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_, u64>) {
        let to = (ctx.node + 1 + (self.counter as usize % (self.n - 1))) % self.n;
        ctx.send(to, Channel::Udp, self.counter);
        self.counter += 1;
        self.next = ctx.now + self.interval;
    }

    fn next_wake(&self) -> Option<SimTime> {
        Some(self.next)
    }
}

fn make_world(n: usize, jitter: f64) -> World<Pinger> {
    let topo = Topology::uniform_constant(
        n,
        NetParams::clean(Duration::from_millis(10)).with_jitter(jitter),
    );
    let net = Network::new(n, &Rng::new(1), CongestionConfig::disabled(), |f, t| {
        topo.schedule(f, t)
    });
    let hosts = (0..n)
        .map(|i| Pinger {
            n,
            interval: Duration::from_millis(1),
            next: SimTime::from_micros(i as u64 * 10),
            counter: i as u64,
        })
        .collect();
    World::new(hosts, net)
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    // 10 hosts x 1kHz x 1 simulated second = ~20k events (send + deliver).
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("world_1s_10hosts_1khz", |b| {
        b.iter_batched(
            || make_world(10, 0.0),
            |mut w| {
                w.run_until(SimTime::from_secs(1));
                black_box(w.counters())
            },
            BatchSize::SmallInput,
        );
    });
    g.throughput(Throughput::Elements(1));
    g.bench_function("network_send_udp_jittered", |b| {
        let topo = Topology::uniform_constant(
            2,
            NetParams::clean(Duration::from_millis(50))
                .with_jitter(0.2)
                .with_loss(0.05),
        );
        let mut net = Network::new(2, &Rng::new(3), CongestionConfig::wan_default(), |f, t| {
            topo.schedule(f, t)
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(net.send(SimTime::from_micros(i * 100), 0, 1, Channel::Udp))
        });
    });
    g.bench_function("network_send_tcp_fifo", |b| {
        let topo = Topology::uniform_constant(
            2,
            NetParams::clean(Duration::from_millis(50)).with_jitter(0.2),
        );
        let mut net = Network::new(2, &Rng::new(4), CongestionConfig::disabled(), |f, t| {
            topo.schedule(f, t)
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(net.send(SimTime::from_micros(i * 100), 0, 1, Channel::Tcp))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
