//! Micro-benchmarks of the Dynatune core: the per-heartbeat tuning path
//! whose overhead the paper trades against peak throughput (§IV-E).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynatune_core::{
    required_heartbeats, FollowerTuner, HeartbeatMeta, LossEstimator, RttEstimator, TuningConfig,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_tuner_on_heartbeat(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner");
    g.bench_function("on_heartbeat_warmed", |b| {
        let mut tuner = FollowerTuner::new(TuningConfig::dynatune());
        for i in 0..1000u64 {
            tuner.on_heartbeat(&HeartbeatMeta {
                id: i,
                sent_at_nanos: i * 100_000_000,
                rtt_sample: Some(Duration::from_millis(100)),
            });
        }
        let mut id = 1000u64;
        b.iter(|| {
            let meta = HeartbeatMeta {
                id,
                sent_at_nanos: id * 100_000_000,
                rtt_sample: Some(Duration::from_millis(100 + (id % 7))),
            };
            id += 1;
            black_box(tuner.on_heartbeat(&meta))
        });
    });
    g.bench_function("required_heartbeats", |b| {
        let mut p = 0.0f64;
        b.iter(|| {
            p = (p + 0.001) % 0.95;
            black_box(required_heartbeats(black_box(p), 0.999, 100))
        });
    });
    g.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimators");
    g.bench_function("rtt_record", |b| {
        let mut e = RttEstimator::new(10, 1000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            e.record(Duration::from_micros(100_000 + (i % 997) * 10));
            black_box(e.mean())
        });
    });
    g.bench_function("loss_record_in_order", |b| {
        let mut e = LossEstimator::new(10, 1000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(e.record(i))
        });
    });
    g.bench_function("loss_record_reordered", |b| {
        b.iter_batched(
            || LossEstimator::new(10, 1000),
            |mut e| {
                // Pairs arrive swapped: 2,1,4,3,...
                for k in 0..500u64 {
                    let base = k * 2;
                    e.record(base + 2);
                    e.record(base + 1);
                }
                black_box(e.loss_rate())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_tuner_on_heartbeat, bench_estimators);
criterion_main!(benches);
