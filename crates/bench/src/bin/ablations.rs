//! Ablation studies over Dynatune's design knobs (DESIGN.md §5): timer
//! quantization, safety factor s, arrival probability x, minListSize
//! warm-up, and the hybrid UDP/TCP heartbeat transport.

use dynatune_bench::{banner, FigArgs};
use dynatune_cluster::experiments::ablation;
use dynatune_stats::table::Table;

fn main() {
    let args = FigArgs::parse();
    banner(
        "Ablations",
        "quantization / safety factor / arrival probability / warm-up / transport",
        args.quick,
    );
    let trials = args.trials.unwrap_or(args.scale(100, 12));

    println!("\n[1/6] election-timer quantization (Dynatune, {trials} trials each)");
    let mut t = Table::new(["quantization", "detection (ms)", "OTS (ms)"]);
    for row in ablation::quantization(trials, args.seed) {
        t.row([
            format!("{:?}", row.quantization),
            format!("{:.0}", row.detection_ms),
            format!("{:.0}", row.ots_ms),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(tick quantization inflates detection to ~2*Et; continuous sits near ~1.2*Et + phase)"
    );

    println!("\n[2/6] safety factor s in Et = mu + s*sigma ({trials} trials each)");
    let mut t = Table::new(["s", "detection (ms)", "false timeouts/min @20% jitter"]);
    for row in ablation::safety_factor(&[0.5, 1.0, 2.0, 4.0], trials, args.seed) {
        t.row([
            format!("{:.1}", row.s),
            format!("{:.0}", row.detection_ms),
            format!("{:.2}", row.false_timeouts_per_min),
        ]);
    }
    print!("{}", t.render());
    println!("(smaller s detects faster but false-detects under jitter; the paper picks s=2)");

    println!("\n[3/6] arrival probability x at 20% loss (pure formula)");
    let mut t = Table::new(["x", "K", "h for Et=200ms (ms)"]);
    for row in ablation::arrival_probability(&[0.9, 0.99, 0.999, 0.9999, 0.99999], 0.20) {
        t.row([
            format!("{}", row.x),
            format!("{}", row.k),
            format!("{:.1}", row.h_ms),
        ]);
    }
    print!("{}", t.render());

    println!("\n[4/6] minListSize warm-up after leader election");
    let mut t = Table::new(["minListSize", "warm-up (s)"]);
    for row in ablation::min_list_size(&[5, 10, 50, 100], args.seed) {
        t.row([
            format!("{}", row.min_list_size),
            format!("{:.1}", row.warmup_secs),
        ]);
    }
    print!("{}", t.render());
    println!("(paper default 10: tuned parameters engage ~1s after a leader appears)");

    println!("\n[5/6] UDP vs TCP heartbeats at 15% link loss");
    let mut t = Table::new(["transport", "measured loss", "tuned h (ms)"]);
    for row in ablation::transport(args.seed) {
        t.row([
            if row.udp_heartbeats {
                "UDP (paper)"
            } else {
                "TCP (stock etcd)"
            }
            .to_string(),
            format!("{:.3}", row.measured_loss),
            format!("{:.0}", row.h_ms),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(TCP hides loss behind retransmission, blinding the estimator — the §III-E motivation)"
    );

    println!("\n[6/6] pre-vote on/off under the Fig. 6b radical RTT step (Dynatune)");
    let mut t = Table::new(["pre-vote", "OTS (s)", "timer expiries", "leader changes"]);
    for row in ablation::pre_vote(args.seed) {
        t.row([
            if row.pre_vote {
                "on (etcd default)"
            } else {
                "off (classic Raft)"
            }
            .to_string(),
            format!("{:.1}", row.total_ots_secs),
            format!("{}", row.timeouts),
            format!("{}", row.leader_changes),
        ]);
    }
    print!("{}", t.render());
    println!("(without pre-vote, false detections at the RTT step bump terms and depose the healthy leader)");
}
