//! Ablation studies over Dynatune's design knobs — thin wrapper over the
//! registered `ablations` experiment
//! (`dynatune_cluster::scenario::catalog::Ablations`).

fn main() {
    dynatune_bench::fig_main("ablations");
}
