//! §IV-E future-work extensions study — thin wrapper over the registered
//! `extensions` experiment
//! (`dynatune_cluster::scenario::catalog::Extensions`).

fn main() {
    dynatune_bench::fig_main("extensions");
}
