//! §IV-E future-work extensions study: the paper sketches two ways to
//! recover Dynatune's ~6 % peak-throughput overhead —
//!
//! 1. **Suppress heartbeats while replicating**: client-request replication
//!    already resets follower election timers, so heartbeats under load are
//!    redundant.
//! 2. **Consolidated heartbeat timer**: fire every follower's heartbeat on
//!    the smallest tuned interval so the leader manages one timer instead
//!    of n−1.
//!
//! This binary implements and evaluates both: peak throughput for each
//! variant, plus a failover check that the extensions do not hurt
//! detection/OTS times, plus a wake-rate comparison for the consolidated
//! timer on a size-17 cluster with per-path (geo-like) intervals.

use dynatune_bench::{banner, FigArgs};
use dynatune_cluster::experiments::failover::{run_trials, FailoverConfig};
use dynatune_cluster::experiments::throughput::{run, ThroughputConfig};
use dynatune_cluster::{ClusterConfig, ClusterSim, CostModel};
use dynatune_core::TuningConfig;
use dynatune_simnet::{geo_topology, Region, SimTime};
use dynatune_stats::table::Table;
use std::time::Duration;

struct Variant {
    name: &'static str,
    tuning: TuningConfig,
    suppress: bool,
    consolidated: bool,
}

fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "raft",
            tuning: TuningConfig::raft_default(),
            suppress: false,
            consolidated: false,
        },
        Variant {
            name: "dynatune",
            tuning: TuningConfig::dynatune(),
            suppress: false,
            consolidated: false,
        },
        Variant {
            name: "dynatune+suppress",
            tuning: TuningConfig::dynatune(),
            suppress: true,
            consolidated: false,
        },
        Variant {
            name: "dynatune+consolidated",
            tuning: TuningConfig::dynatune(),
            suppress: false,
            consolidated: true,
        },
        Variant {
            name: "dynatune+both",
            tuning: TuningConfig::dynatune(),
            suppress: true,
            consolidated: true,
        },
    ]
}

fn cluster_for(v: &Variant, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::stable(5, v.tuning, Duration::from_millis(100), seed);
    cfg.suppress_heartbeats = v.suppress;
    cfg.consolidated_timer = v.consolidated;
    cfg
}

fn main() {
    let args = FigArgs::parse();
    banner(
        "Extensions (§IV-E)",
        "heartbeat suppression under load + consolidated heartbeat timer",
        args.quick,
    );

    // ------------------------------------------------------------------
    // 1. Peak throughput per variant.
    // ------------------------------------------------------------------
    println!("\n[1/3] peak throughput (the overhead the extensions target)");
    let repeats = args.repeats.unwrap_or(args.scale(5, 2));
    let mut t = Table::new(["variant", "peak (req/s)", "vs raft"]);
    let mut raft_peak = None;
    for v in variants() {
        let mut cfg = ThroughputConfig::new(cluster_for(&v, args.seed), 16_000.0);
        cfg.repeats = repeats;
        if args.quick {
            cfg.increment = 4_000.0;
            cfg.hold = Duration::from_secs(4);
        }
        let peak = run(&cfg).peak_throughput();
        let baseline = *raft_peak.get_or_insert(peak);
        t.row([
            v.name.to_string(),
            format!("{peak:.0}"),
            format!("{:+.1}%", (peak / baseline - 1.0) * 100.0),
        ]);
    }
    print!("{}", t.render());

    // ------------------------------------------------------------------
    // 2. Failover sanity: the extensions must not slow detection.
    // ------------------------------------------------------------------
    println!("\n[2/3] failover under the extensions (must not regress)");
    let trials = args.trials.unwrap_or(args.scale(200, 20));
    let mut t = Table::new(["variant", "detection (ms)", "OTS (ms)"]);
    for v in variants() {
        let res = run_trials(&FailoverConfig::new(
            cluster_for(&v, args.seed ^ 0xE),
            trials,
        ));
        t.row([
            v.name.to_string(),
            format!("{:.0}", res.detection_stats().mean()),
            format!("{:.0}", res.ots_stats().mean()),
        ]);
    }
    print!("{}", t.render());

    // ------------------------------------------------------------------
    // 3. Leader wake rate with per-path intervals (geo topology): the
    //    consolidated timer's actual saving.
    // ------------------------------------------------------------------
    println!("\n[3/3] leader timer load on a geo cluster (per-path h differs)");
    let mut t = Table::new(["variant", "leader CPU (%)", "heartbeats sent"]);
    for consolidated in [false, true] {
        let mut cfg = ClusterConfig::stable(
            5,
            TuningConfig::dynatune(),
            Duration::from_millis(100),
            args.seed ^ 0xC0,
        );
        cfg.topology = geo_topology(&Region::ALL);
        cfg.consolidated_timer = consolidated;
        cfg.cost = CostModel {
            per_timer_wake: Duration::from_micros(200),
            ..CostModel::default()
        };
        cfg.cores = 2;
        let mut sim = ClusterSim::new(&cfg);
        sim.run_until(SimTime::from_secs(120));
        let leader = sim.leader().expect("leader");
        let cpu = sim.with_server(leader, |s| {
            s.cpu()
                .mean_utilization(SimTime::from_secs(60), SimTime::from_secs(120))
        });
        let sent = sim.net_counters().sent;
        t.row([
            if consolidated {
                "consolidated"
            } else {
                "per-follower timers"
            }
            .to_string(),
            format!("{cpu:.1}"),
            format!("{sent}"),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\n(consolidated mode aligns all heartbeats on the smallest tuned interval:\n\
         fewer leader wake-ups at the cost of extra heartbeats on slow paths —\n\
         the trade-off §IV-E describes)"
    );
}
