//! Figure 4 + §IV-B1 table: CDF of detection and OTS times under stable
//! network conditions (RTT 100 ms, no loss), repeated leader failures,
//! Raft vs Dynatune. Also prints the §IV-E election-time decomposition.

use dynatune_bench::{banner, compare_row, reduction_pct, write_csv, FigArgs};
use dynatune_cluster::experiments::failover::{run_trials, FailoverConfig, FailoverResult};
use dynatune_cluster::ClusterConfig;
use dynatune_core::TuningConfig;
use dynatune_stats::table::{multi_series_csv, Table};
use std::time::Duration;

fn study(name: &str, tuning: TuningConfig, trials: usize, seed: u64) -> FailoverResult {
    let cluster = ClusterConfig::stable(5, tuning, Duration::from_millis(100), seed);
    let cfg = FailoverConfig::new(cluster, trials);
    let res = run_trials(&cfg);
    println!(
        "  {name}: {} trials ok, {} incomplete",
        res.outcomes.len(),
        res.incomplete
    );
    res
}

fn main() {
    let args = FigArgs::parse();
    banner(
        "Figure 4",
        "detection & OTS time CDFs, stable network (5 servers, RTT 100ms, p=0)",
        args.quick,
    );
    let trials = args.trials.unwrap_or(args.scale(1000, 50));
    println!("running {trials} leader-failure trials per system...\n");

    let raft = study("Raft", TuningConfig::raft_default(), trials, args.seed);
    let dynatune = study(
        "Dynatune",
        TuningConfig::dynatune(),
        trials,
        args.seed ^ 0xD1,
    );

    let raft_det = raft.detection_stats().mean();
    let raft_ots = raft.ots_stats().mean();
    let dt_det = dynatune.detection_stats().mean();
    let dt_ots = dynatune.ots_stats().mean();

    println!();
    let mut t = Table::new(["metric", "paper (ms)", "measured (ms)", "ratio"]);
    t.row(compare_row("Raft detection mean", 1205.0, raft_det));
    t.row(compare_row("Raft OTS mean", 1449.0, raft_ots));
    t.row(compare_row("Dynatune detection mean", 237.0, dt_det));
    t.row(compare_row("Dynatune OTS mean", 797.0, dt_ots));
    t.row(compare_row(
        "Raft mean randomizedTimeout",
        1454.0,
        raft.mean_rto_ms(),
    ));
    t.row(compare_row(
        "Dynatune mean randomizedTimeout",
        152.0,
        dynatune.mean_rto_ms(),
    ));
    t.row(compare_row(
        "Raft election time (OTS-det)",
        244.0,
        raft.election_time_ms(),
    ));
    t.row(compare_row(
        "Dynatune election time (OTS-det)",
        560.0,
        dynatune.election_time_ms(),
    ));
    print!("{}", t.render());

    println!();
    let mut r = Table::new(["headline", "paper", "measured"]);
    r.row([
        "detection reduction".to_string(),
        "80%".to_string(),
        format!("{:.0}%", reduction_pct(raft_det, dt_det)),
    ]);
    r.row([
        "OTS reduction".to_string(),
        "45%".to_string(),
        format!("{:.0}%", reduction_pct(raft_ots, dt_ots)),
    ]);
    print!("{}", r.render());

    // CDF series, downsampled for the CSV.
    let series = [
        ("raft_detection", raft.detection_cdf()),
        ("raft_ots", raft.ots_cdf()),
        ("dynatune_detection", dynatune.detection_cdf()),
        ("dynatune_ots", dynatune.ots_cdf()),
    ];
    let pts: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(name, cdf)| (name.to_string(), cdf.points_downsampled(200)))
        .collect();
    let borrowed: Vec<(&str, &[(f64, f64)])> = pts
        .iter()
        .map(|(n, p)| (n.as_str(), p.as_slice()))
        .collect();
    write_csv(
        &args.out,
        "fig4_cdf.csv",
        &multi_series_csv("time_ms", &borrowed),
    );
}
