//! Figure 4 + §IV-B1 table: CDF of detection and OTS times under stable
//! network conditions — thin wrapper over the registered `fig4`
//! experiment (`dynatune_cluster::scenario::catalog::Fig4Failover`).

fn main() {
    dynatune_bench::fig_main("fig4");
}
