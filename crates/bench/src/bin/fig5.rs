//! Figure 5 + §IV-B2: throughput vs latency under open-loop ramp load,
//! Raft vs Dynatune; reports peak throughput and the tuning overhead.

use dynatune_bench::{banner, compare_row, write_csv, FigArgs};
use dynatune_cluster::experiments::throughput::{run, ThroughputConfig, ThroughputResult};
use dynatune_cluster::ClusterConfig;
use dynatune_core::TuningConfig;
use dynatune_stats::table::{series_csv, Table};
use std::time::Duration;

fn study(tuning: TuningConfig, args: &FigArgs, seed: u64) -> ThroughputResult {
    let cluster = ClusterConfig::stable(5, tuning, Duration::from_millis(100), seed);
    let mut cfg = ThroughputConfig::new(cluster, 16_000.0);
    if args.quick {
        cfg.increment = 4_000.0;
        cfg.hold = Duration::from_secs(4);
        cfg.repeats = 2;
    }
    if let Some(r) = args.repeats {
        cfg.repeats = r;
    }
    run(&cfg)
}

fn main() {
    let args = FigArgs::parse();
    banner(
        "Figure 5",
        "throughput vs latency (open-loop ramp, 5 servers, RTT 100ms)",
        args.quick,
    );
    println!("running ramps (this is the heaviest figure)...\n");

    let raft = study(TuningConfig::raft_default(), &args, args.seed);
    let dynatune = study(TuningConfig::dynatune(), &args, args.seed ^ 0xD1);

    let mut t = Table::new([
        "offered (req/s)",
        "raft tput",
        "raft lat (ms)",
        "dynatune tput",
        "dynatune lat (ms)",
    ]);
    for (r, d) in raft.levels.iter().zip(dynatune.levels.iter()) {
        t.row([
            format!("{:.0}", r.offered_rps),
            format!("{:.0}", r.throughput.mean()),
            format!("{:.1}", r.latency_ms.mean()),
            format!("{:.0}", d.throughput.mean()),
            format!("{:.1}", d.latency_ms.mean()),
        ]);
    }
    print!("{}", t.render());

    let raft_peak = raft.peak_throughput();
    let dt_peak = dynatune.peak_throughput();
    println!();
    let mut s = Table::new(["metric", "paper (ms)", "measured (ms)", "ratio"]);
    s.row(compare_row(
        "Raft peak throughput (req/s)",
        13_678.0,
        raft_peak,
    ));
    s.row(compare_row(
        "Dynatune peak throughput (req/s)",
        12_800.0,
        dt_peak,
    ));
    print!("{}", s.render());
    println!(
        "tuning overhead at peak: paper 6.4%, measured {:.1}%",
        (1.0 - dt_peak / raft_peak) * 100.0
    );

    write_csv(
        &args.out,
        "fig5_raft.csv",
        &series_csv(("throughput_rps", "latency_ms"), &raft.curve()),
    );
    write_csv(
        &args.out,
        "fig5_dynatune.csv",
        &series_csv(("throughput_rps", "latency_ms"), &dynatune.curve()),
    );
}
