//! Figure 5 + §IV-B2: throughput vs latency under open-loop ramp load —
//! thin wrapper over the registered `fig5` experiment
//! (`dynatune_cluster::scenario::catalog::Fig5Throughput`).

fn main() {
    dynatune_bench::fig_main("fig5");
}
