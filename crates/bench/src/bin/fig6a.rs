//! Figure 6a: gradual RTT fluctuation (50→200→50 ms in 10 ms steps) —
//! thin wrapper over the registered `fig6a` experiment
//! (`dynatune_cluster::scenario::catalog::Fig6aGradualRtt`).

fn main() {
    dynatune_bench::fig_main("fig6a");
}
