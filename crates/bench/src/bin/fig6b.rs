//! Figure 6b: radical RTT fluctuation (50→500→50 ms, one minute each) —
//! thin wrapper over the registered `fig6b` experiment
//! (`dynatune_cluster::scenario::catalog::Fig6bRadicalRtt`).

fn main() {
    dynatune_bench::fig_main("fig6b");
}
