//! Figure 6b: radical RTT fluctuation (50→500→50 ms, one minute each),
//! third-smallest randomizedTimeout + RTT + OTS shading, for Dynatune,
//! Raft and Raft-Low.

use dynatune_bench::{banner, write_csv, FigArgs};
use dynatune_cluster::experiments::rtt_fluctuation::{run, RttFlucConfig, RttPattern};
use dynatune_core::TuningConfig;
use dynatune_stats::table::{multi_series_csv, Table};
use std::time::Duration;

fn main() {
    let args = FigArgs::parse();
    banner(
        "Figure 6b",
        "radical RTT fluctuation 50->500->50ms (1 minute holds)",
        args.quick,
    );
    let hold = if args.quick {
        Duration::from_secs(15)
    } else {
        Duration::from_secs(60)
    };
    let systems = [
        ("dynatune", TuningConfig::dynatune()),
        ("raft", TuningConfig::raft_default()),
        ("raft_low", TuningConfig::raft_low()),
    ];
    let mut summary = Table::new([
        "system",
        "total OTS (s)",
        "timer expiries",
        "pre-vote aborts",
        "leader changes",
    ]);
    for (name, tuning) in systems {
        let mut cfg = RttFlucConfig::new(tuning, RttPattern::Radical, args.seed);
        cfg.hold = hold;
        let s = run(&cfg);
        println!(
            "{name}: {} samples, OTS intervals: {:?}",
            s.t.len(),
            s.ots_intervals
        );
        summary.row([
            name.to_string(),
            format!("{:.1}", s.total_ots_secs),
            format!("{}", s.timeouts_observed),
            // pre-vote aborts are folded into timeouts for the summary; the
            // CSV/event log carries the detail.
            String::new(),
            format!("{}", s.leader_changes),
        ]);
        let rto: Vec<(f64, f64)> =
            s.t.iter()
                .zip(&s.third_smallest_rto_ms)
                .map(|(&t, &v)| (t, v))
                .collect();
        let rtt: Vec<(f64, f64)> = s.t.iter().zip(&s.rtt_ms).map(|(&t, &v)| (t, v)).collect();
        write_csv(
            &args.out,
            &format!("fig6b_{name}.csv"),
            &multi_series_csv(
                "t_secs",
                &[("randomized_timeout_ms", &rto), ("rtt_ms", &rtt)],
            ),
        );
        let ots_csv: String = std::iter::once("start_s,end_s\n".to_string())
            .chain(s.ots_intervals.iter().map(|(a, b)| format!("{a},{b}\n")))
            .collect();
        write_csv(&args.out, &format!("fig6b_{name}_ots.csv"), &ots_csv);
    }
    println!();
    print!("{}", summary.render());
    println!(
        "\npaper expectation: Dynatune false-detects at the step but pre-vote\n\
         aborts on leader contact -> no OTS; Raft rides it out (large Et);\n\
         Raft-Low is leaderless for most of the 500ms minute (vote RTT exceeds\n\
         its randomized timeout, so elections repeat until RTT drops)."
    );
}
