//! Figure 7: heartbeat-interval adaptation (7a) and CPU utilization (7b)
//! under packet-loss fluctuation 0→30→0 %, RTT 200 ms, for N = 5, 17, 65,
//! Dynatune vs Fix-K (K = 10).

use dynatune_bench::{banner, write_csv, FigArgs};
use dynatune_cluster::experiments::loss_fluctuation::{run, LossFlucConfig};
use dynatune_core::TuningConfig;
use dynatune_stats::table::{series_csv, Table};
use dynatune_stats::{ResamplePolicy, TimeSeries};
use std::time::Duration;

fn mean_between(series: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= from && *t < to)
        .map(|&(_, v)| v)
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

fn cpu_mean(ts: &TimeSeries) -> f64 {
    let pts = ts.points();
    if pts.is_empty() {
        return f64::NAN;
    }
    pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64
}

fn main() {
    let args = FigArgs::parse();
    banner(
        "Figure 7",
        "heartbeat interval + CPU under loss ramp 0->30->0% (RTT 200ms, 2 cores)",
        args.quick,
    );
    let sizes: &[usize] = if args.quick { &[5, 17] } else { &[5, 17, 65] };
    let hold = if args.quick {
        Duration::from_secs(20)
    } else {
        Duration::from_secs(180) // paper: 3 minutes per level
    };
    let mut summary = Table::new([
        "system",
        "N",
        "h@0% (ms)",
        "h@30% (ms)",
        "leader CPU (%)",
        "follower CPU (%)",
        "elections",
    ]);
    for &n in sizes {
        for (name, tuning) in [
            ("dynatune", TuningConfig::dynatune()),
            ("fix_k", TuningConfig::fix_k(10)),
        ] {
            let mut cfg = LossFlucConfig::new(n, tuning, args.seed ^ n as u64);
            cfg.hold = hold;
            if args.quick {
                // Shrink the id window so loss estimates track the shrunk
                // schedule (window lag = maxListSize x h).
                cfg.tuning.max_list_size = 200;
            }
            let s = run(&cfg);
            let dur = cfg.duration().as_secs_f64();
            // Clean head (after warm-up) and peak-loss middle.
            let h_clean = mean_between(&s.h_ms, dur * 0.05, dur * 0.077);
            let h_peak = mean_between(&s.h_ms, dur * 0.46, dur * 0.54);
            summary.row([
                name.to_string(),
                format!("{n}"),
                format!("{h_clean:.0}"),
                format!("{h_peak:.0}"),
                format!("{:.1}", cpu_mean(&s.leader_cpu)),
                format!("{:.1}", cpu_mean(&s.follower_cpu)),
                format!("{}", s.elections_after_warmup),
            ]);
            write_csv(
                &args.out,
                &format!("fig7a_{name}_n{n}.csv"),
                &series_csv(("t_secs", "h_ms"), &s.h_ms),
            );
            let leader_pts = s.leader_cpu.resample(0.0, dur, 5.0, ResamplePolicy::Last);
            let follower_pts = s.follower_cpu.resample(0.0, dur, 5.0, ResamplePolicy::Last);
            write_csv(
                &args.out,
                &format!("fig7b_{name}_n{n}_leader.csv"),
                &series_csv(("t_secs", "cpu_pct"), &leader_pts),
            );
            write_csv(
                &args.out,
                &format!("fig7b_{name}_n{n}_follower.csv"),
                &series_csv(("t_secs", "cpu_pct"), &follower_pts),
            );
        }
    }
    println!();
    print!("{}", summary.render());
    println!(
        "\npaper expectation: Dynatune h dips from ~Et (K=1) to ~Et/6 at 30% loss\n\
         and recovers; Fix-K h stays ~Et/10 flat. Fix-K's N=65 leader pegs\n\
         ~100%+ CPU while Dynatune uses less than half under clean conditions,\n\
         peaking with the loss. Neither system triggers unnecessary elections."
    );
}
