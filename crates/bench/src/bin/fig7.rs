//! Figure 7: heartbeat-interval adaptation and CPU utilization under
//! packet-loss fluctuation — thin wrapper over the registered `fig7`
//! experiment (`dynatune_cluster::scenario::catalog::Fig7LossFluctuation`).

fn main() {
    dynatune_bench::fig_main("fig7");
}
