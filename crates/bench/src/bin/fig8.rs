//! Figure 8: detection & OTS CDFs on the geo-replicated deployment
//! (Tokyo, London, California, Sydney, São Paulo), Raft vs Dynatune.

use dynatune_bench::{banner, compare_row, reduction_pct, write_csv, FigArgs};
use dynatune_cluster::experiments::failover::{run_trials, FailoverConfig, FailoverResult};
use dynatune_cluster::{ClusterConfig, CostModel};
use dynatune_core::TuningConfig;
use dynatune_raft::TimerQuantization;
use dynatune_simnet::{geo_topology, CongestionConfig, Region};
use dynatune_stats::table::{multi_series_csv, Table};
use std::time::Duration;

fn study(tuning: TuningConfig, trials: usize, seed: u64) -> FailoverResult {
    let mut cluster = ClusterConfig::stable(5, tuning, Duration::from_millis(100), seed);
    cluster.topology = geo_topology(&Region::ALL);
    cluster.congestion = CongestionConfig::wan_default();
    cluster.quantization = TimerQuantization::Tick;
    cluster.cost = CostModel::default();
    cluster.cores = 2; // m5.large
    let mut cfg = FailoverConfig::new(cluster, trials);
    cfg.warmup = Duration::from_secs(40); // WAN warm-up is slower
    run_trials(&cfg)
}

fn main() {
    let args = FigArgs::parse();
    banner(
        "Figure 8",
        "geo-replicated failover (Tokyo/London/California/Sydney/Sao Paulo)",
        args.quick,
    );
    let trials = args.trials.unwrap_or(args.scale(300, 30));
    println!("running {trials} leader-failure trials per system...\n");

    let raft = study(TuningConfig::raft_default(), trials, args.seed);
    let dynatune = study(TuningConfig::dynatune(), trials, args.seed ^ 0xD1);
    println!(
        "  raft: {} ok / {} incomplete; dynatune: {} ok / {} incomplete",
        raft.outcomes.len(),
        raft.incomplete,
        dynatune.outcomes.len(),
        dynatune.incomplete
    );

    let raft_det = raft.detection_stats().mean();
    let raft_ots = raft.ots_stats().mean();
    let dt_det = dynatune.detection_stats().mean();
    let dt_ots = dynatune.ots_stats().mean();

    println!();
    let mut t = Table::new(["metric", "paper (ms)", "measured (ms)", "ratio"]);
    t.row(compare_row("Raft detection mean", 1137.0, raft_det));
    t.row(compare_row("Raft OTS mean", 1718.0, raft_ots));
    t.row(compare_row("Dynatune detection mean", 213.0, dt_det));
    t.row(compare_row("Dynatune OTS mean", 1145.0, dt_ots));
    print!("{}", t.render());

    println!();
    let mut r = Table::new(["headline", "paper", "measured"]);
    r.row([
        "detection reduction".to_string(),
        "81%".to_string(),
        format!("{:.0}%", reduction_pct(raft_det, dt_det)),
    ]);
    r.row([
        "OTS reduction".to_string(),
        "33%".to_string(),
        format!("{:.0}%", reduction_pct(raft_ots, dt_ots)),
    ]);
    print!("{}", r.render());

    let series = [
        ("raft_detection", raft.detection_cdf()),
        ("raft_ots", raft.ots_cdf()),
        ("dynatune_detection", dynatune.detection_cdf()),
        ("dynatune_ots", dynatune.ots_cdf()),
    ];
    let pts: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(name, cdf)| (name.to_string(), cdf.points_downsampled(200)))
        .collect();
    let borrowed: Vec<(&str, &[(f64, f64)])> = pts
        .iter()
        .map(|(n, p)| (n.as_str(), p.as_slice()))
        .collect();
    write_csv(
        &args.out,
        "fig8_cdf.csv",
        &multi_series_csv("time_ms", &borrowed),
    );
}
