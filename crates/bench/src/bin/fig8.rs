//! Figure 8: detection & OTS CDFs on the geo-replicated deployment —
//! thin wrapper over the registered `fig8` experiment
//! (`dynatune_cluster::scenario::catalog::Fig8GeoFailover`).

fn main() {
    dynatune_bench::fig_main("fig8");
}
