//! The registry-driven scenario runner.
//!
//! ```text
//! scenarios --list                 # what's registered (+ headline, CI assertion)
//! scenarios --list --json          # the same registry, machine-readable
//! scenarios --quick                # smoke-run every scenario
//! scenarios --only fig4,fig8      # a subset, by exact name
//! scenarios --only broker          # ... or by substring/prefix
//! scenarios --jobs 4               # cap trial fan-out (results identical)
//! ```
//!
//! Every §IV figure, the ablations and the beyond-paper scenarios run
//! through the same `Experiment` interface; this binary enumerates the
//! registry, runs the selection, and writes each experiment's CSV
//! artifacts under `--out` (default `results/`), plus a machine-readable
//! `BENCH_scenarios.json` (per-scenario wall time and headline metrics)
//! that CI uploads so the perf trajectory accumulates across commits.

// Measuring scenario wall time is this binary's job: the D001 exemption
// for the bench harness (see clippy.toml and dynatune_lint's policy).
#![allow(clippy::disallowed_types)]

use dynatune_bench::{bench_json, run_and_emit, select_names, BenchEntry, RunArgs};
use dynatune_cluster::scenario::{catalog_json, catalog_markdown, registry};
use dynatune_stats::table::Table;
use std::time::Instant;

fn main() {
    let args = RunArgs::parse();
    let all = registry();

    if args.describe_md {
        // The SCENARIOS.md generator: name, what it models, headline
        // metric, CI assertion — straight from the registry metadata.
        print!("{}", catalog_markdown());
        return;
    }

    if args.json && !args.list {
        eprintln!("error: --json only applies to --list");
        std::process::exit(2);
    }

    if args.list {
        if args.json {
            print!("{}", catalog_json());
            return;
        }
        let mut t = Table::new(["name", "description", "headline metric", "CI assertion"]);
        for e in &all {
            t.row([
                e.name().to_string(),
                e.describe().to_string(),
                e.headline_metric().to_string(),
                e.ci_assertion().to_string(),
            ]);
        }
        print!("{}", t.render());
        return;
    }

    // Resolve the selection before running anything: a pattern that
    // matches nothing is a user error, reported up front with the
    // available names.
    let names: Vec<&str> = all.iter().map(|e| e.name()).collect();
    let wanted = match select_names(&names, &args.only) {
        Ok(wanted) => wanted,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("registered: {}", names.join(", "));
            std::process::exit(2);
        }
    };
    let selected: Vec<_> = all
        .iter()
        .filter(|e| args.only.is_empty() || wanted.iter().any(|n| n == e.name()))
        .collect();
    println!(
        "running {} scenario(s){}{}\n",
        selected.len(),
        if args.quick { " (quick)" } else { "" },
        if args.jobs > 0 {
            format!(" with --jobs {}", args.jobs)
        } else {
            String::new()
        }
    );

    let mut summary = Table::new(["scenario", "wall (s)", "tables", "artifacts"]);
    let mut entries = Vec::new();
    for e in selected {
        let started = Instant::now();
        let report = run_and_emit(e.as_ref(), &args);
        let wall_s = started.elapsed().as_secs_f64();
        summary.row([
            e.name().to_string(),
            format!("{wall_s:.1}"),
            format!("{}", report.tables.len()),
            format!("{}", report.artifacts.len()),
        ]);
        entries.push(BenchEntry {
            name: e.name().to_string(),
            wall_s,
            headlines: report
                .headlines
                .iter()
                .map(|h| (h.label.clone(), h.paper.clone(), h.measured.clone()))
                .collect(),
        });
        println!();
    }
    let json = bench_json(&args, &entries);
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let json_path = args.out.join("BENCH_scenarios.json");
    std::fs::write(&json_path, json).expect("write bench json");
    println!("================================================================");
    print!("{}", summary.render());
    println!("wrote {}", json_path.display());
}
