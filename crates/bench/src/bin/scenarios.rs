//! The registry-driven scenario runner.
//!
//! ```text
//! scenarios --list                 # what's registered
//! scenarios --quick                # smoke-run every scenario
//! scenarios --only fig4,fig8      # a subset
//! scenarios --jobs 4               # cap trial fan-out (results identical)
//! ```
//!
//! Every §IV figure, the ablations and the beyond-paper scenarios run
//! through the same `Experiment` interface; this binary enumerates the
//! registry, runs the selection, and writes each experiment's CSV
//! artifacts under `--out` (default `results/`).

use dynatune_bench::{run_and_emit, RunArgs};
use dynatune_cluster::scenario::registry;
use dynatune_stats::table::Table;
use std::time::Instant;

fn main() {
    let args = RunArgs::parse();
    let all = registry();

    if args.list {
        let mut t = Table::new(["name", "description"]);
        for e in &all {
            t.row([e.name().to_string(), e.describe().to_string()]);
        }
        print!("{}", t.render());
        return;
    }

    // Validate the selection before running anything: a typo'd name is a
    // user error, reported up front with the available names.
    for name in &args.only {
        if !all.iter().any(|e| e.name() == name) {
            eprintln!("error: unknown scenario {name:?}");
            eprintln!(
                "registered: {}",
                all.iter().map(|e| e.name()).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        }
    }

    let selected: Vec<_> = all
        .iter()
        .filter(|e| args.only.is_empty() || args.only.iter().any(|n| n == e.name()))
        .collect();
    println!(
        "running {} scenario(s){}{}\n",
        selected.len(),
        if args.quick { " (quick)" } else { "" },
        if args.jobs > 0 {
            format!(" with --jobs {}", args.jobs)
        } else {
            String::new()
        }
    );

    let mut summary = Table::new(["scenario", "wall (s)", "tables", "artifacts"]);
    for e in selected {
        let started = Instant::now();
        let report = run_and_emit(e.as_ref(), &args);
        summary.row([
            e.name().to_string(),
            format!("{:.1}", started.elapsed().as_secs_f64()),
            format!("{}", report.tables.len()),
            format!("{}", report.artifacts.len()),
        ]);
        println!();
    }
    println!("================================================================");
    print!("{}", summary.render());
}
