//! Shared plumbing for the scenario runner and the per-figure wrapper
//! binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — scaled-down run (fewer trials, shorter holds) for smoke
//!   testing; the full defaults match the paper's §IV settings.
//! * `--trials N` / `--repeats N` — override trial counts.
//! * `--jobs N` — cap parallel trial fan-out at N worker threads
//!   (0/default: all cores). Results are bit-identical for every N.
//! * `--out DIR` — where to write CSV series (default `results/`).
//! * `--seed N` — master seed (default 42).
//!
//! The `scenarios` binary additionally accepts `--list` (print the
//! registry with each scenario's headline metric and CI assertion) and
//! `--only PAT[,PAT...]` (run a subset). Each pattern selects by exact
//! name first, else by substring — `--only broker` runs every scenario
//! with "broker" in its name, `--only fig` every paper figure.
//!
//! Output convention: a human-readable "paper vs measured" report on
//! stdout plus machine-readable CSVs under the output directory.
//! EXPERIMENTS.md records one run of each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dynatune_cluster::scenario::{Experiment, Report, RunCtx};
use std::path::{Path, PathBuf};

pub use dynatune_cluster::scenario::{compare_row, reduction_pct};

/// Parsed command-line options shared by every runner binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// Scaled-down run.
    pub quick: bool,
    /// Trial-count override.
    pub trials: Option<usize>,
    /// Repeat-count override.
    pub repeats: Option<usize>,
    /// Output directory for CSVs.
    pub out: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for trial fan-out (0 = all cores).
    pub jobs: usize,
    /// Restrict `scenarios` to these registry names (empty = all).
    pub only: Vec<String>,
    /// List registered scenarios and exit.
    pub list: bool,
    /// With `--list`: emit the registry as JSON instead of a table.
    pub json: bool,
    /// Print the Markdown scenario catalog (`SCENARIOS.md`) and exit.
    pub describe_md: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            quick: false,
            trials: None,
            repeats: None,
            out: PathBuf::from("results"),
            seed: 42,
            jobs: 0,
            only: Vec::new(),
            list: false,
            json: false,
            describe_md: false,
        }
    }
}

/// The usage string printed on `--help` and on parse errors.
pub const USAGE: &str = "usage: [--quick] [--trials N] [--repeats N] [--jobs N] [--out DIR] \
[--seed N] [--list [--json]] [--describe-md] [--only PAT[,PAT...]]
  --only selects by exact scenario name, else by substring (\"broker\"
  runs every broker_* scenario); unknown patterns are an error
  --list --json emits the registry (name, headline metric, CI assertion)
  as machine-readable JSON";

impl RunArgs {
    /// Parse from `std::env::args`. On bad input, prints the error and
    /// usage to stderr and exits with a nonzero status (no panic, no
    /// backtrace); `--help` prints usage to stdout and exits 0.
    #[must_use]
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(Some(args)) => args,
            Ok(None) => {
                // --help
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument iterator. `Ok(None)` means help was
    /// requested; `Err` carries a human-readable message.
    ///
    /// # Errors
    /// Returns a message for unknown flags, missing values, and
    /// unparsable numbers.
    pub fn try_parse<I>(args: I) -> Result<Option<Self>, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = Self::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--list" => out.list = true,
                "--json" => out.json = true,
                "--describe-md" => out.describe_md = true,
                "--trials" => out.trials = Some(number(&mut args, "--trials")?),
                "--repeats" => out.repeats = Some(number(&mut args, "--repeats")?),
                "--jobs" => out.jobs = number(&mut args, "--jobs")?,
                "--seed" => out.seed = number(&mut args, "--seed")?,
                "--out" => {
                    let dir = args.next().ok_or("--out needs a path")?;
                    out.out = PathBuf::from(dir);
                }
                "--only" => {
                    let names = args.next().ok_or("--only needs a name list")?;
                    out.only.extend(
                        names
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(String::from),
                    );
                }
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(Some(out))
    }

    /// Pick between the full (paper-scale) and quick values.
    #[must_use]
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// The execution context these arguments describe.
    #[must_use]
    pub fn ctx(&self) -> RunCtx {
        RunCtx {
            seed: self.seed,
            quick: self.quick,
            trials: self.trials,
            repeats: self.repeats,
            jobs: self.jobs,
        }
    }
}

/// Parse the next argument as a number for `flag`.
fn number<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let value = args
        .next()
        .ok_or_else(|| format!("{flag} needs a number"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} needs a number, got {value:?}"))
}

/// Resolve `--only` patterns against the registry's scenario names.
///
/// Each pattern selects by **exact name** when one matches (so a full
/// name never accidentally drags in scenarios it is a substring of),
/// else by **substring** — which subsumes prefix matching, so
/// `--only broker` selects every `broker_*` scenario. The result keeps
/// registry order with duplicates collapsed.
///
/// # Errors
/// Returns a message naming the first pattern that selects nothing.
pub fn select_names(all: &[&str], patterns: &[String]) -> Result<Vec<String>, String> {
    let mut selected: Vec<&str> = Vec::new();
    for pattern in patterns {
        let matched: Vec<&str> = if all.contains(&pattern.as_str()) {
            vec![pattern.as_str()]
        } else {
            all.iter()
                .copied()
                .filter(|name| name.contains(pattern.as_str()))
                .collect()
        };
        if matched.is_empty() {
            return Err(format!("no scenario matches {pattern:?}"));
        }
        selected.extend(matched);
    }
    Ok(all
        .iter()
        .filter(|name| selected.contains(name))
        .map(ToString::to_string)
        .collect())
}

/// Write a CSV file under the output directory, creating it if needed.
pub fn write_csv(dir: &Path, name: &str, content: &str) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write csv");
    println!("  wrote {}", path.display());
}

/// One scenario's entry in the machine-readable benchmark summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Registry name.
    pub name: String,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// The report's headline metrics as `(label, paper, measured)`.
    pub headlines: Vec<(String, String, String)>,
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the benchmark summary the `scenarios` binary writes as
/// `BENCH_scenarios.json`: per-scenario wall time plus the headline
/// metrics, so CI runs accumulate a perf/result trajectory without
/// scraping stdout tables.
#[must_use]
pub fn bench_json(args: &RunArgs, entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"dynatune-bench-scenarios/v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", args.quick));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"jobs\": {},\n", args.jobs));
    // fold, not sum: an empty f64 `sum()` is -0.0 (std seeds the fold with
    // -0.0), which would print "-0.000" for an empty run.
    out.push_str(&format!(
        "  \"total_wall_s\": {:.3},\n",
        entries.iter().fold(0.0, |acc, e| acc + e.wall_s)
    ));
    out.push_str("  \"scenarios\": [\n");
    let scenario_entries: Vec<String> = entries
        .iter()
        .map(|e| {
            let headlines: Vec<String> = e
                .headlines
                .iter()
                .map(|(label, paper, measured)| {
                    format!(
                        "        {{\"label\": \"{}\", \"paper\": \"{}\", \"measured\": \"{}\"}}",
                        json_escape(label),
                        json_escape(paper),
                        json_escape(measured)
                    )
                })
                .collect();
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"wall_s\": {:.3},\n      \"headlines\": [\n{}\n      ]\n    }}",
                json_escape(&e.name),
                e.wall_s,
                headlines.join(",\n")
            )
        })
        .collect();
    out.push_str(&scenario_entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Standard banner for runner binaries.
pub fn banner(fig: &str, description: &str, quick: bool) {
    println!("================================================================");
    println!("{fig}: {description}");
    if quick {
        println!("(QUICK mode: scaled-down parameters; use full run for EXPERIMENTS.md)");
    }
    println!("================================================================");
}

/// Run one registered experiment under `args` and print/write everything:
/// banner, report text, CSV artifacts.
pub fn run_and_emit(experiment: &dyn Experiment, args: &RunArgs) -> Report {
    banner(experiment.name(), experiment.describe(), args.quick);
    let report = args.ctx().run(experiment);
    print!("{}", report.render());
    for artifact in &report.artifacts {
        write_csv(&args.out, &artifact.filename, &artifact.csv);
    }
    report
}

/// Entry point for the thin per-figure wrapper binaries: parse args, look
/// the experiment up in the registry, run it. Registry-selection flags
/// (`--list`, `--only`) only make sense on the `scenarios` runner and are
/// rejected here rather than silently ignored. Exits nonzero when the
/// name is missing from the registry (a bug, not a user error).
pub fn fig_main(name: &str) {
    let args = RunArgs::parse();
    if args.list || args.json || args.describe_md || !args.only.is_empty() {
        eprintln!(
            "error: --list/--json/--describe-md/--only work on the registry; use the `scenarios` binary"
        );
        std::process::exit(2);
    }
    let Some(experiment) = dynatune_cluster::scenario::find(name) else {
        eprintln!("error: experiment {name:?} is not registered");
        std::process::exit(1);
    };
    run_and_emit(experiment.as_ref(), &args);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Option<RunArgs>, String> {
        RunArgs::try_parse(words.iter().map(ToString::to_string))
    }

    #[test]
    fn defaults_and_flags() {
        let args = parse(&[]).unwrap().unwrap();
        assert_eq!(args, RunArgs::default());
        let args = parse(&[
            "--quick",
            "--trials",
            "7",
            "--jobs",
            "3",
            "--seed",
            "9",
            "--out",
            "x",
            "--only",
            "fig4,fig8",
            "--list",
            "--json",
        ])
        .unwrap()
        .unwrap();
        assert!(args.quick && args.list && args.json);
        assert_eq!(args.trials, Some(7));
        assert_eq!(args.jobs, 3);
        assert_eq!(args.seed, 9);
        assert_eq!(args.out, PathBuf::from("x"));
        assert_eq!(args.only, vec!["fig4".to_string(), "fig8".to_string()]);
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "many"]).is_err());
        assert!(parse(&["--seed", "-1"]).is_err());
        assert!(parse(&["--out"]).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap(), None);
        assert_eq!(parse(&["-h"]).unwrap(), None);
    }

    #[test]
    fn scale_picks_by_mode() {
        let mut a = RunArgs::default();
        assert_eq!(a.scale(1000, 50), 1000);
        a.quick = true;
        assert_eq!(a.scale(1000, 50), 50);
    }

    #[test]
    fn ctx_carries_the_knobs() {
        let args = parse(&["--quick", "--jobs", "2", "--seed", "5"])
            .unwrap()
            .unwrap();
        let ctx = args.ctx();
        assert!(ctx.quick);
        assert_eq!(ctx.jobs, 2);
        assert_eq!(ctx.seed, 5);
    }

    #[test]
    fn bench_json_shape_and_escaping() {
        let args = RunArgs {
            quick: true,
            jobs: 2,
            ..RunArgs::default()
        };
        let entries = vec![
            BenchEntry {
                name: "fig4".to_string(),
                wall_s: 1.25,
                headlines: vec![(
                    "detection \"reduction\"".to_string(),
                    "80%".to_string(),
                    "88%\nline2".to_string(),
                )],
            },
            BenchEntry {
                name: "hot_shard".to_string(),
                wall_s: 0.5,
                headlines: vec![],
            },
        ];
        let json = bench_json(&args, &entries);
        assert!(json.contains("\"schema\": \"dynatune-bench-scenarios/v1\""));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"jobs\": 2"));
        assert!(json.contains("\"total_wall_s\": 1.750"));
        assert!(json.contains("\"name\": \"fig4\""));
        assert!(json.contains("\"wall_s\": 1.250"));
        // Quotes and newlines inside headline strings are escaped.
        assert!(json.contains("detection \\\"reduction\\\""));
        assert!(json.contains("88%\\nline2"));
        assert!(!json.contains("88%\nline2"));
        // Balanced braces/brackets — a cheap structural sanity check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn bench_json_empty_run_is_wellformed() {
        let json = bench_json(&RunArgs::default(), &[]);
        assert!(json.contains("\"total_wall_s\": 0.000"));
        assert!(json.contains("\"scenarios\": ["));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn only_patterns_match_exact_then_substring() {
        let all = ["fig4", "fig4_geo", "broker_produce", "consumer_lag"];
        let s = |words: &[&str]| words.iter().map(ToString::to_string).collect::<Vec<_>>();
        // Exact name wins: it does not drag in names it is a substring of.
        assert_eq!(select_names(&all, &s(&["fig4"])).unwrap(), vec!["fig4"]);
        // Substring (and thus prefix) selects every containing name.
        assert_eq!(
            select_names(&all, &s(&["fig"])).unwrap(),
            vec!["fig4", "fig4_geo"]
        );
        assert_eq!(
            select_names(&all, &s(&["broker"])).unwrap(),
            vec!["broker_produce"]
        );
        // Union keeps registry order, deduplicated.
        assert_eq!(
            select_names(&all, &s(&["consumer", "fig", "fig4"])).unwrap(),
            vec!["fig4", "fig4_geo", "consumer_lag"]
        );
        // A pattern that selects nothing is an error naming the pattern.
        let err = select_names(&all, &s(&["fig9"])).unwrap_err();
        assert!(err.contains("fig9"));
    }

    #[test]
    fn reduction_and_compare_reexports() {
        assert!((reduction_pct(1205.0, 237.0) - 80.33).abs() < 0.1);
        let row = compare_row("detection (ms)", 1205.0, 1100.0);
        assert_eq!(row[3], "0.91x");
    }
}
