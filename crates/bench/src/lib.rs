//! Shared plumbing for the scenario runner and the per-figure wrapper
//! binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — scaled-down run (fewer trials, shorter holds) for smoke
//!   testing; the full defaults match the paper's §IV settings.
//! * `--trials N` / `--repeats N` — override trial counts.
//! * `--jobs N` — cap parallel trial fan-out at N worker threads
//!   (0/default: all cores). Results are bit-identical for every N.
//! * `--out DIR` — where to write CSV series (default `results/`).
//! * `--seed N` — master seed (default 42).
//!
//! The `scenarios` binary additionally accepts `--list` (print the
//! registry) and `--only NAME[,NAME...]` (run a subset).
//!
//! Output convention: a human-readable "paper vs measured" report on
//! stdout plus machine-readable CSVs under the output directory.
//! EXPERIMENTS.md records one run of each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dynatune_cluster::scenario::{Experiment, Report, RunCtx};
use std::path::{Path, PathBuf};

pub use dynatune_cluster::scenario::{compare_row, reduction_pct};

/// Parsed command-line options shared by every runner binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// Scaled-down run.
    pub quick: bool,
    /// Trial-count override.
    pub trials: Option<usize>,
    /// Repeat-count override.
    pub repeats: Option<usize>,
    /// Output directory for CSVs.
    pub out: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread cap for trial fan-out (0 = all cores).
    pub jobs: usize,
    /// Restrict `scenarios` to these registry names (empty = all).
    pub only: Vec<String>,
    /// List registered scenarios and exit.
    pub list: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            quick: false,
            trials: None,
            repeats: None,
            out: PathBuf::from("results"),
            seed: 42,
            jobs: 0,
            only: Vec::new(),
            list: false,
        }
    }
}

/// The usage string printed on `--help` and on parse errors.
pub const USAGE: &str = "usage: [--quick] [--trials N] [--repeats N] [--jobs N] [--out DIR] \
[--seed N] [--list] [--only NAME[,NAME...]]";

impl RunArgs {
    /// Parse from `std::env::args`. On bad input, prints the error and
    /// usage to stderr and exits with a nonzero status (no panic, no
    /// backtrace); `--help` prints usage to stdout and exits 0.
    #[must_use]
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(Some(args)) => args,
            Ok(None) => {
                // --help
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument iterator. `Ok(None)` means help was
    /// requested; `Err` carries a human-readable message.
    ///
    /// # Errors
    /// Returns a message for unknown flags, missing values, and
    /// unparsable numbers.
    pub fn try_parse<I>(args: I) -> Result<Option<Self>, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = Self::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--list" => out.list = true,
                "--trials" => out.trials = Some(number(&mut args, "--trials")?),
                "--repeats" => out.repeats = Some(number(&mut args, "--repeats")?),
                "--jobs" => out.jobs = number(&mut args, "--jobs")?,
                "--seed" => out.seed = number(&mut args, "--seed")?,
                "--out" => {
                    let dir = args.next().ok_or("--out needs a path")?;
                    out.out = PathBuf::from(dir);
                }
                "--only" => {
                    let names = args.next().ok_or("--only needs a name list")?;
                    out.only.extend(
                        names
                            .split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(String::from),
                    );
                }
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(Some(out))
    }

    /// Pick between the full (paper-scale) and quick values.
    #[must_use]
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// The execution context these arguments describe.
    #[must_use]
    pub fn ctx(&self) -> RunCtx {
        RunCtx {
            seed: self.seed,
            quick: self.quick,
            trials: self.trials,
            repeats: self.repeats,
            jobs: self.jobs,
        }
    }
}

/// Parse the next argument as a number for `flag`.
fn number<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let value = args
        .next()
        .ok_or_else(|| format!("{flag} needs a number"))?;
    value
        .parse()
        .map_err(|_| format!("{flag} needs a number, got {value:?}"))
}

/// Write a CSV file under the output directory, creating it if needed.
pub fn write_csv(dir: &Path, name: &str, content: &str) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write csv");
    println!("  wrote {}", path.display());
}

/// Standard banner for runner binaries.
pub fn banner(fig: &str, description: &str, quick: bool) {
    println!("================================================================");
    println!("{fig}: {description}");
    if quick {
        println!("(QUICK mode: scaled-down parameters; use full run for EXPERIMENTS.md)");
    }
    println!("================================================================");
}

/// Run one registered experiment under `args` and print/write everything:
/// banner, report text, CSV artifacts.
pub fn run_and_emit(experiment: &dyn Experiment, args: &RunArgs) -> Report {
    banner(experiment.name(), experiment.describe(), args.quick);
    let report = args.ctx().run(experiment);
    print!("{}", report.render());
    for artifact in &report.artifacts {
        write_csv(&args.out, &artifact.filename, &artifact.csv);
    }
    report
}

/// Entry point for the thin per-figure wrapper binaries: parse args, look
/// the experiment up in the registry, run it. Registry-selection flags
/// (`--list`, `--only`) only make sense on the `scenarios` runner and are
/// rejected here rather than silently ignored. Exits nonzero when the
/// name is missing from the registry (a bug, not a user error).
pub fn fig_main(name: &str) {
    let args = RunArgs::parse();
    if args.list || !args.only.is_empty() {
        eprintln!("error: --list/--only select from the registry; use the `scenarios` binary");
        std::process::exit(2);
    }
    let Some(experiment) = dynatune_cluster::scenario::find(name) else {
        eprintln!("error: experiment {name:?} is not registered");
        std::process::exit(1);
    };
    run_and_emit(experiment.as_ref(), &args);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Option<RunArgs>, String> {
        RunArgs::try_parse(words.iter().map(ToString::to_string))
    }

    #[test]
    fn defaults_and_flags() {
        let args = parse(&[]).unwrap().unwrap();
        assert_eq!(args, RunArgs::default());
        let args = parse(&[
            "--quick",
            "--trials",
            "7",
            "--jobs",
            "3",
            "--seed",
            "9",
            "--out",
            "x",
            "--only",
            "fig4,fig8",
            "--list",
        ])
        .unwrap()
        .unwrap();
        assert!(args.quick && args.list);
        assert_eq!(args.trials, Some(7));
        assert_eq!(args.jobs, 3);
        assert_eq!(args.seed, 9);
        assert_eq!(args.out, PathBuf::from("x"));
        assert_eq!(args.only, vec!["fig4".to_string(), "fig8".to_string()]);
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--trials"]).is_err());
        assert!(parse(&["--trials", "many"]).is_err());
        assert!(parse(&["--seed", "-1"]).is_err());
        assert!(parse(&["--out"]).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap(), None);
        assert_eq!(parse(&["-h"]).unwrap(), None);
    }

    #[test]
    fn scale_picks_by_mode() {
        let mut a = RunArgs::default();
        assert_eq!(a.scale(1000, 50), 1000);
        a.quick = true;
        assert_eq!(a.scale(1000, 50), 50);
    }

    #[test]
    fn ctx_carries_the_knobs() {
        let args = parse(&["--quick", "--jobs", "2", "--seed", "5"])
            .unwrap()
            .unwrap();
        let ctx = args.ctx();
        assert!(ctx.quick);
        assert_eq!(ctx.jobs, 2);
        assert_eq!(ctx.seed, 5);
    }

    #[test]
    fn reduction_and_compare_reexports() {
        assert!((reduction_pct(1205.0, 237.0) - 80.33).abs() < 0.1);
        let row = compare_row("detection (ms)", 1205.0, 1100.0);
        assert_eq!(row[3], "0.91x");
    }
}
