//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — scaled-down run (fewer trials, shorter holds) for smoke
//!   testing; the full defaults match the paper's §IV settings.
//! * `--trials N` / `--repeats N` — override trial counts.
//! * `--out DIR` — where to write CSV series (default `results/`).
//! * `--seed N` — master seed (default 42).
//!
//! Output convention: a human-readable "paper vs measured" table on stdout
//! plus machine-readable CSVs under the output directory. EXPERIMENTS.md
//! records one run of each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

/// Parsed command-line options for figure binaries.
#[derive(Debug, Clone)]
pub struct FigArgs {
    /// Scaled-down run.
    pub quick: bool,
    /// Trial-count override.
    pub trials: Option<usize>,
    /// Repeat-count override.
    pub repeats: Option<usize>,
    /// Output directory for CSVs.
    pub out: PathBuf,
    /// Master seed.
    pub seed: u64,
}

impl Default for FigArgs {
    fn default() -> Self {
        Self {
            quick: false,
            trials: None,
            repeats: None,
            out: PathBuf::from("results"),
            seed: 42,
        }
    }
}

impl FigArgs {
    /// Parse from `std::env::args`, panicking with usage on bad input.
    #[must_use]
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--trials" => {
                    out.trials = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--trials needs a number"),
                    );
                }
                "--repeats" => {
                    out.repeats = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--repeats needs a number"),
                    );
                }
                "--out" => {
                    out.out = PathBuf::from(args.next().expect("--out needs a path"));
                }
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number");
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--quick] [--trials N] [--repeats N] [--out DIR] [--seed N]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}"),
            }
        }
        out
    }

    /// Pick between the full (paper-scale) and quick values.
    #[must_use]
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Write a CSV file under the output directory, creating it if needed.
pub fn write_csv(dir: &Path, name: &str, content: &str) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write csv");
    println!("  wrote {}", path.display());
}

/// Format a paper-vs-measured row with a deviation note.
#[must_use]
pub fn compare_row(metric: &str, paper: f64, measured: f64) -> Vec<String> {
    let ratio = if paper.abs() > 1e-12 {
        measured / paper
    } else {
        f64::NAN
    };
    vec![
        metric.to_string(),
        format!("{paper:.0}"),
        format!("{measured:.0}"),
        format!("{ratio:.2}x"),
    ]
}

/// Percentage reduction from `from` to `to` (the paper's headline metric
/// style: "reduces detection time by 80%").
#[must_use]
pub fn reduction_pct(from: f64, to: f64) -> f64 {
    if from.abs() < 1e-12 {
        0.0
    } else {
        (1.0 - to / from) * 100.0
    }
}

/// Standard banner for figure binaries.
pub fn banner(fig: &str, description: &str, quick: bool) {
    println!("================================================================");
    println!("{fig}: {description}");
    if quick {
        println!("(QUICK mode: scaled-down parameters; use full run for EXPERIMENTS.md)");
    }
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert!((reduction_pct(1205.0, 237.0) - 80.33).abs() < 0.1);
        assert!((reduction_pct(1449.0, 797.0) - 45.0).abs() < 0.1);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn scale_picks_by_mode() {
        let mut a = FigArgs::default();
        assert_eq!(a.scale(1000, 50), 1000);
        a.quick = true;
        assert_eq!(a.scale(1000, 50), 50);
    }

    #[test]
    fn compare_row_formats() {
        let row = compare_row("detection (ms)", 1205.0, 1100.0);
        assert_eq!(row[0], "detection (ms)");
        assert_eq!(row[1], "1205");
        assert_eq!(row[2], "1100");
        assert_eq!(row[3], "0.91x");
    }
}
