//! Sparse offset index: offset → in-segment position hints.
//!
//! A segment does not index every record; it records one `(offset,
//! position)` entry per index interval of appended bytes (like Kafka's
//! `.index` files, one entry per `index.interval.bytes`). Lookup binary
//! searches for the floor entry at or below the wanted offset, then the
//! segment scans forward from that position — the scan is bounded by the
//! interval, so fetches stay cheap without paying an index entry per
//! record.

/// One index entry: the record at `position` (within the segment's record
/// run) starts offset `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Absolute partition offset of the indexed record.
    pub offset: u64,
    /// Position of that record within its segment (0-based).
    pub position: usize,
}

/// An append-only sparse offset index for one segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseIndex {
    entries: Vec<IndexEntry>,
}

impl SparseIndex {
    /// Empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append an entry. Offsets and positions are strictly increasing —
    /// the index is written in append order, never rewritten.
    pub fn push(&mut self, offset: u64, position: usize) {
        if let Some(last) = self.entries.last() {
            assert!(
                offset > last.offset && position > last.position,
                "index entries must be appended in offset order"
            );
        }
        self.entries.push(IndexEntry { offset, position });
    }

    /// The greatest entry at or below `offset` (binary search), if any.
    /// The caller scans the segment forward from its `position`.
    #[must_use]
    pub fn floor(&self, offset: u64) -> Option<IndexEntry> {
        match self.entries.binary_search_by_key(&offset, |e| e.offset) {
            Ok(i) => Some(self.entries[i]),
            Err(0) => None,
            Err(i) => Some(self.entries[i - 1]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_finds_the_greatest_entry_at_or_below() {
        let mut idx = SparseIndex::new();
        assert_eq!(idx.floor(5), None);
        idx.push(10, 0);
        idx.push(20, 7);
        idx.push(35, 19);
        assert_eq!(idx.floor(9), None);
        assert_eq!(idx.floor(10).unwrap().position, 0);
        assert_eq!(idx.floor(19).unwrap().position, 0);
        assert_eq!(idx.floor(20).unwrap().position, 7);
        assert_eq!(idx.floor(34).unwrap().position, 7);
        assert_eq!(idx.floor(35).unwrap().position, 19);
        assert_eq!(idx.floor(1000).unwrap().position, 19);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    #[should_panic(expected = "offset order")]
    fn out_of_order_push_panics() {
        let mut idx = SparseIndex::new();
        idx.push(10, 0);
        idx.push(10, 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `floor` (binary search) agrees with a naive linear scan for
            /// the greatest entry at or below the probe.
            #[test]
            fn prop_floor_matches_linear_scan(
                gaps in proptest::collection::vec(1u64..20, 0..40),
                probes in proptest::collection::vec(0u64..1000, 1..30),
            ) {
                let mut idx = SparseIndex::new();
                let mut entries = Vec::new();
                let mut offset = 0;
                for (position, gap) in gaps.iter().enumerate() {
                    offset += gap;
                    idx.push(offset, position + 1);
                    entries.push(IndexEntry { offset, position: position + 1 });
                }
                for &probe in &probes {
                    let naive = entries
                        .iter()
                        .filter(|e| e.offset <= probe)
                        .max_by_key(|e| e.offset)
                        .copied();
                    prop_assert_eq!(idx.floor(probe), naive);
                }
            }
        }
    }
}
