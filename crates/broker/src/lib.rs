//! `dynatune_broker` — a Kafka-style replicated topic/partition log as a
//! second state machine on the dynatune Raft core.
//!
//! The KV store proved the consensus stack; this crate proves it
//! *generalizes*. A broker is the best-case workload for everything PRs
//! 3–6 built: produces are append-only (pipelined, byte-batched
//! replication at its strongest), fetches are reads at an offset (the
//! log-free lease/ReadIndex/follower path), producers retry (the
//! origin/reply-cache dedupe machinery), and topics × partitions map onto
//! `ShardMap` Raft groups exactly like key ranges do.
//!
//! Layering (mirroring josefine's `entry`/`segment`/`partition`/`topic`/
//! `index` split):
//!
//! - [`Record`]: one key/value message, sized for the byte-based cost
//!   model.
//! - [`SparseIndex`]: offset → position hints, one per index interval of
//!   appended bytes; lookup is a binary search to the floor entry.
//! - [`Segment`]: a contiguous run of records starting at a base offset,
//!   with its own sparse index; fetch = index binary-search + forward
//!   scan.
//! - [`PartitionLog`]: the append-only sequence of segments for one
//!   partition; rolls a new segment when the active one crosses the byte
//!   threshold.
//! - [`Topic`]: the partitions of one topic.
//! - [`BrokerSm`]: the replicated state machine — topics, durable
//!   consumer-group offsets, and the producer reply cache — implementing
//!   [`StateMachine`](dynatune_raft::StateMachine) so any Raft group can
//!   host it.
//!
//! Serving (hosts, clients, scenarios) lives in `dynatune_cluster`, which
//! plugs [`BrokerSm`] into the same generic `ServerHost` that serves the
//! KV store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod partition;
pub mod record;
pub mod segment;
pub mod sm;
pub mod topic;

pub use index::SparseIndex;
pub use partition::{FetchResult, PartitionConfig, PartitionLog};
pub use record::Record;
pub use segment::Segment;
pub use sm::{BrokerCommand, BrokerRequest, BrokerResponse, BrokerSm};
pub use topic::{shard_of_partition, Topic};
