//! One partition: an append-only sequence of segments.

use crate::record::Record;
use crate::segment::Segment;
use dynatune_core::invariant_violated;

/// Default segment-roll threshold. Small by datacenter standards but right
/// for simulation scale: scenario produce volumes (tens of MB) span many
/// segments, so the roll and cross-segment fetch paths are actually
/// exercised.
pub const DEFAULT_SEGMENT_BYTES: usize = 256 * 1024;

/// Default sparse-index interval (Kafka's `index.interval.bytes` is 4096).
pub const DEFAULT_INDEX_INTERVAL: usize = 4096;

/// Sizing knobs for a partition's segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Roll a new segment once the active one reaches this many bytes.
    pub segment_bytes: usize,
    /// One sparse-index entry per this many appended bytes.
    pub index_interval: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            index_interval: DEFAULT_INDEX_INTERVAL,
        }
    }
}

impl PartitionConfig {
    /// Validate invariants.
    ///
    /// # Panics
    /// Panics when a knob is zero.
    pub fn validate(&self) {
        assert!(self.segment_bytes > 0, "zero segment byte threshold");
        assert!(self.index_interval > 0, "zero index interval");
    }
}

/// The result of a fetch: records (with their offsets) plus the high
/// watermark, so consumers can compute their lag from the same response
/// that carries the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// `(offset, record)` pairs in offset order, starting at the fetch
    /// offset (empty when fetching at/after the high watermark).
    pub records: Vec<(u64, Record)>,
    /// The offset the next produced record will take — fetch position of a
    /// fully caught-up consumer.
    pub high_watermark: u64,
}

/// The append-only record log of one partition, stored as segments rolled
/// on a byte threshold. Offsets are dense: the first record is offset 0
/// and every append takes the next offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionLog {
    config: PartitionConfig,
    /// Non-empty; ordered by `base_offset`; only the last segment grows.
    segments: Vec<Segment>,
}

impl Default for PartitionLog {
    fn default() -> Self {
        Self::new(PartitionConfig::default())
    }
}

impl PartitionLog {
    /// Empty partition log.
    #[must_use]
    pub fn new(config: PartitionConfig) -> Self {
        config.validate();
        Self {
            config,
            segments: vec![Segment::new(0, config.index_interval)],
        }
    }

    /// The offset the next appended record will take (== the high
    /// watermark: everything in a replicated partition log is committed by
    /// the time it is applied).
    #[must_use]
    pub fn next_offset(&self) -> u64 {
        // A partition always holds at least one segment (constructed with
        // one, and rolls only ever push); an empty list means no offsets
        // were assigned, so 0 is the honest answer either way.
        self.segments.last().map_or(0, Segment::next_offset)
    }

    /// Total records stored.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.next_offset()
    }

    /// True when nothing has been produced yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.next_offset() == 0
    }

    /// Number of segments (observability: segment roll is working).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total stored bytes across segments.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.segments.iter().map(Segment::bytes).sum()
    }

    /// Append one record, rolling the active segment first if it has
    /// reached the byte threshold. Returns the record's offset.
    pub fn append(&mut self, record: Record) -> u64 {
        let Some(active) = self.segments.last_mut() else {
            invariant_violated!("partition has no segments — `new` seeds one and rolls only push");
        };
        if active.bytes() >= self.config.segment_bytes && !active.is_empty() {
            let base = active.next_offset();
            self.segments
                .push(Segment::new(base, self.config.index_interval));
        }
        let Some(active) = self.segments.last_mut() else {
            invariant_violated!("segment roll removed the active segment");
        };
        active.append(record)
    }

    /// Append a batch, returning the base offset assigned to its first
    /// record (records take consecutive offsets from there).
    pub fn append_batch(&mut self, records: impl IntoIterator<Item = Record>) -> u64 {
        let base = self.next_offset();
        for r in records {
            self.append(r);
        }
        base
    }

    /// Fetch up to `max_records` records starting at `offset`. Resolves
    /// the starting segment by binary search over segment base offsets,
    /// then reads through segment boundaries until `max_records` is
    /// reached or the log ends. Fetching at or past the high watermark
    /// returns no records (the consumer is caught up).
    #[must_use]
    pub fn fetch(&self, offset: u64, max_records: usize) -> FetchResult {
        let high_watermark = self.next_offset();
        let mut records = Vec::new();
        if offset < high_watermark && max_records > 0 {
            let seg = match self
                .segments
                .binary_search_by_key(&offset, Segment::base_offset)
            {
                Ok(i) => i,
                Err(i) => i - 1, // floor segment; i >= 1 since base 0 exists
            };
            let mut cursor = offset;
            for s in &self.segments[seg..] {
                let got = s.read_into(cursor, max_records - records.len(), &mut records);
                cursor += got as u64;
                if records.len() >= max_records || cursor >= high_watermark {
                    break;
                }
            }
        }
        FetchResult {
            records,
            high_watermark,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PartitionConfig {
        PartitionConfig {
            segment_bytes: 128,
            index_interval: 48,
        }
    }

    fn rec(tag: u8, n: usize) -> Record {
        Record::new(Vec::new(), vec![tag; n])
    }

    #[test]
    fn segments_roll_on_the_byte_threshold() {
        let mut p = PartitionLog::new(cfg());
        // 26-byte records; 128-byte threshold → a roll every 5 records.
        for i in 0..25 {
            assert_eq!(p.append(rec(i, 10)), u64::from(i));
        }
        assert!(p.segment_count() > 1, "roll must have happened");
        assert_eq!(p.len(), 25);
        assert_eq!(p.bytes(), 25 * 26);
    }

    #[test]
    fn fetch_spans_segment_boundaries() {
        let mut p = PartitionLog::new(cfg());
        for i in 0..40 {
            p.append(rec(i, 10));
        }
        assert!(p.segment_count() >= 3);
        let fx = p.fetch(0, 40);
        assert_eq!(fx.records.len(), 40);
        assert_eq!(fx.high_watermark, 40);
        for (i, (off, r)) in fx.records.iter().enumerate() {
            assert_eq!(*off, i as u64);
            assert_eq!(r.value[0], i as u8);
        }
        // A fetch starting mid-segment with a cap crossing a boundary.
        let fx = p.fetch(3, 10);
        assert_eq!(fx.records.len(), 10);
        assert_eq!(fx.records[0].0, 3);
        assert_eq!(fx.records[9].0, 12);
    }

    #[test]
    fn fetch_at_or_past_high_watermark_is_empty() {
        let mut p = PartitionLog::new(cfg());
        p.append(rec(1, 10));
        let fx = p.fetch(1, 10);
        assert!(fx.records.is_empty());
        assert_eq!(fx.high_watermark, 1);
        let fx = p.fetch(99, 10);
        assert!(fx.records.is_empty());
        assert!(PartitionLog::default().is_empty());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// The naive twin: the whole partition as one flat record vector.
        /// Offset `i` is index `i`; a fetch is a slice.
        fn naive_fetch(twin: &[Record], offset: u64, max: usize) -> FetchResult {
            let high_watermark = twin.len() as u64;
            let from = usize::try_from(offset.min(high_watermark)).unwrap();
            let to = from.saturating_add(max).min(twin.len());
            FetchResult {
                records: (from..to).map(|i| (i as u64, twin[i].clone())).collect(),
                high_watermark,
            }
        }

        proptest! {
            /// Any record sequence under any (small) segment sizing reads
            /// back exactly like the unsegmented flat vector, from every
            /// probed offset — and the segment chain keeps its invariants
            /// (contiguous bases, rolls only on the byte threshold).
            #[test]
            fn prop_segmented_log_matches_naive_twin(
                sizes in proptest::collection::vec(1usize..60, 1..120),
                segment_bytes in 32usize..512,
                index_interval in 16usize..128,
                probes in proptest::collection::vec((0u64..150, 0usize..150), 1..20),
            ) {
                let config = PartitionConfig { segment_bytes, index_interval };
                let mut log = PartitionLog::new(config);
                let mut twin: Vec<Record> = Vec::new();
                for (i, &n) in sizes.iter().enumerate() {
                    let r = rec(i as u8, n);
                    prop_assert_eq!(log.append(r.clone()), twin.len() as u64);
                    twin.push(r);
                }
                prop_assert_eq!(log.len(), twin.len() as u64);

                // Segment-chain invariants: bases tile the offset space and
                // every closed segment earned its roll.
                let mut expected_base = 0;
                for (i, s) in log.segments.iter().enumerate() {
                    prop_assert_eq!(s.base_offset(), expected_base);
                    expected_base = s.next_offset();
                    if i + 1 < log.segments.len() {
                        prop_assert!(s.bytes() >= segment_bytes,
                            "closed segment under the roll threshold");
                    }
                }

                // Offset lookup: every probed (offset, max) fetch equals
                // the twin's slice, including past-the-end probes.
                for &(offset, max) in &probes {
                    prop_assert_eq!(
                        log.fetch(offset, max),
                        naive_fetch(&twin, offset, max)
                    );
                }
                // And a full scan from zero reads the whole stream back.
                prop_assert_eq!(
                    log.fetch(0, twin.len()),
                    naive_fetch(&twin, 0, twin.len())
                );
            }
        }
    }
}
