//! One broker message: an optional key plus an opaque value.

use bytes::Bytes;

/// Per-record wire framing overhead (offset, lengths, checksum stand-in),
/// mirroring the KV layer's command framing so the byte-based replication
/// cost model prices produce batches honestly.
pub const RECORD_FRAMING: usize = 16;

/// One message in a partition log. Records are immutable once appended;
/// their offset is assigned by the partition at append time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Partitioning/compaction key (may be empty).
    pub key: Bytes,
    /// Opaque payload.
    pub value: Bytes,
}

impl Record {
    /// Build a record from key and value bytes.
    #[must_use]
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Wire/storage size of this record (framing + key + value) — the unit
    /// the segment byte threshold, the sparse index interval, and the
    /// replication cost model all count in.
    #[must_use]
    pub fn bytes(&self) -> usize {
        RECORD_FRAMING + self.key.len() + self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_bytes_counts_framing_key_and_value() {
        let r = Record::new(&b"k"[..], &b"value"[..]);
        assert_eq!(r.bytes(), RECORD_FRAMING + 1 + 5);
        let empty = Record::new(Bytes::new(), Bytes::new());
        assert_eq!(empty.bytes(), RECORD_FRAMING);
    }
}
