//! One segment: a contiguous run of records behind a sparse offset index.

use crate::index::SparseIndex;
use crate::record::Record;

/// A contiguous slice of a partition log starting at `base_offset`.
/// Records are only ever appended; fetch resolves an offset through the
/// sparse index (binary search to the floor entry) and scans forward from
/// the hinted position, exactly like a file-backed segment would seek then
/// read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    base_offset: u64,
    records: Vec<Record>,
    bytes: usize,
    index: SparseIndex,
    /// Bytes appended since the last index entry; the first record after
    /// `index_interval` bytes gets indexed.
    bytes_since_index: usize,
    index_interval: usize,
}

impl Segment {
    /// Empty segment whose first record will take `base_offset`, indexing
    /// one entry per `index_interval` appended bytes.
    #[must_use]
    pub fn new(base_offset: u64, index_interval: usize) -> Self {
        assert!(index_interval > 0, "zero index interval");
        Self {
            base_offset,
            records: Vec::new(),
            bytes: 0,
            index: SparseIndex::new(),
            // Force an index entry on the very first append, so every
            // lookup inside the segment has a floor entry to start from.
            bytes_since_index: index_interval,
            index_interval,
        }
    }

    /// First offset of this segment.
    #[must_use]
    pub fn base_offset(&self) -> u64 {
        self.base_offset
    }

    /// The offset the next appended record will take.
    #[must_use]
    pub fn next_offset(&self) -> u64 {
        self.base_offset + self.records.len() as u64
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the segment holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Stored bytes (records only; index entries are counted by the
    /// partition's size estimate separately).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The sparse index (observers/tests).
    #[must_use]
    pub fn index(&self) -> &SparseIndex {
        &self.index
    }

    /// Append one record, returning its offset.
    pub fn append(&mut self, record: Record) -> u64 {
        let offset = self.next_offset();
        if self.bytes_since_index >= self.index_interval {
            self.index.push(offset, self.records.len());
            self.bytes_since_index = 0;
        }
        self.bytes_since_index += record.bytes();
        self.bytes += record.bytes();
        self.records.push(record);
        offset
    }

    /// Copy up to `max` records starting at `offset` into `out` as
    /// `(offset, record)` pairs. Returns how many were copied. Offsets
    /// below the base or at/after `next_offset` contribute nothing.
    pub fn read_into(&self, offset: u64, max: usize, out: &mut Vec<(u64, Record)>) -> usize {
        if offset < self.base_offset || offset >= self.next_offset() || max == 0 {
            return 0;
        }
        // Index binary-search to the floor hint, then scan forward — the
        // scan advances at most one index interval's worth of records.
        let start_hint = self.index.floor(offset).map_or(0, |e| e.position);
        let mut pos = start_hint;
        while self.base_offset + pos as u64 != offset {
            pos += 1;
        }
        let copied = self.records[pos..].iter().take(max);
        let before = out.len();
        out.extend(
            copied
                .cloned()
                .enumerate()
                .map(|(i, r)| (self.base_offset + (pos + i) as u64, r)),
        );
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: usize) -> Record {
        Record::new(Vec::new(), vec![0u8; n])
    }

    #[test]
    fn append_assigns_consecutive_offsets_from_base() {
        let mut s = Segment::new(100, 64);
        assert_eq!(s.append(rec(10)), 100);
        assert_eq!(s.append(rec(10)), 101);
        assert_eq!(s.next_offset(), 102);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn index_is_sparse_one_entry_per_interval() {
        // 26-byte records (16 framing + 10 value), 64-byte interval: an
        // index entry every ceil(64/26) = 3 records.
        let mut s = Segment::new(0, 64);
        for _ in 0..9 {
            s.append(rec(10));
        }
        assert!(
            s.index().len() < s.len(),
            "index must be sparse: {} entries for {} records",
            s.index().len(),
            s.len()
        );
        assert!(s.index().len() >= 2, "intervals produce multiple entries");
    }

    #[test]
    fn read_into_resolves_any_offset_via_the_index() {
        let mut s = Segment::new(50, 64);
        for i in 0..20 {
            s.append(Record::new(Vec::new(), vec![i as u8; 10]));
        }
        for probe in 50..70 {
            let mut out = Vec::new();
            let n = s.read_into(probe, 5, &mut out);
            assert_eq!(n, (70 - probe).min(5) as usize);
            assert_eq!(out[0].0, probe);
            assert_eq!(out[0].1.value[0], (probe - 50) as u8);
        }
        let mut out = Vec::new();
        assert_eq!(s.read_into(49, 5, &mut out), 0, "below base");
        assert_eq!(s.read_into(70, 5, &mut out), 0, "at next_offset");
        assert!(out.is_empty());
    }
}
