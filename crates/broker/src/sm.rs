//! The broker's replicated state machine.
//!
//! Same shape as the KV `Store`: a data structure (topics instead of a
//! key map), durable consumer-group offsets, and the per-origin reply
//! cache that makes producer retries idempotent. Produce and offset
//! commits replicate through the Raft log; fetches are reads and ride the
//! log-free read path (they never enter the reply cache, in either
//! direction — the same invariant the KV store documents).

use crate::partition::{FetchResult, PartitionConfig};
use crate::record::Record;
use crate::topic::Topic;
use dynatune_core::invariant_violated;
use dynatune_kv::ReqOrigin;
use dynatune_raft::{LogIndex, StateMachine, DEFAULT_REPLY_WINDOW};
use std::collections::BTreeMap;

/// A client-facing broker command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerCommand {
    /// Append a batch of records to one partition.
    Produce {
        /// Topic name.
        topic: String,
        /// Partition within the topic.
        partition: u32,
        /// Records, appended in order at consecutive offsets.
        records: Vec<Record>,
    },
    /// Durably commit a consumer group's position on one partition (the
    /// offset of the next record the group will read).
    CommitOffset {
        /// Consumer group name.
        group: String,
        /// Topic name.
        topic: String,
        /// Partition within the topic.
        partition: u32,
        /// The committed position.
        offset: u64,
    },
    /// Read up to `max_records` records from `offset` (a linearizable
    /// read; served log-free).
    Fetch {
        /// Topic name.
        topic: String,
        /// Partition within the topic.
        partition: u32,
        /// First offset wanted.
        offset: u64,
        /// Fetch size cap.
        max_records: usize,
    },
    /// Read a consumer group's committed position (linearizable read).
    FetchCommitted {
        /// Consumer group name.
        group: String,
        /// Topic name.
        topic: String,
        /// Partition within the topic.
        partition: u32,
    },
}

impl BrokerCommand {
    /// True for commands served from applied state without a log entry.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            BrokerCommand::Fetch { .. } | BrokerCommand::FetchCommitted { .. }
        )
    }

    /// Approximate wire size of the command payload, for the byte-based
    /// replication cost model (mirrors `KvCommand::payload_bytes`).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        const FRAMING: usize = 16;
        let body = match self {
            BrokerCommand::Produce { topic, records, .. } => {
                topic.len() + records.iter().map(Record::bytes).sum::<usize>()
            }
            BrokerCommand::CommitOffset { group, topic, .. } => group.len() + topic.len() + 8,
            BrokerCommand::Fetch { topic, .. } => topic.len() + 16,
            BrokerCommand::FetchCommitted { group, topic, .. } => group.len() + topic.len(),
        };
        FRAMING + body
    }
}

/// A replicated broker command: the client command plus its retry origin —
/// the exact PR-4 origin/reply-cache shape the KV `KvRequest` uses, so the
/// same `ServerHost` propose path drives both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokerRequest {
    /// Who sent this and which attempt-id it is; `None` for internal
    /// traffic that needs no dedup.
    pub origin: Option<ReqOrigin>,
    /// The command.
    pub cmd: BrokerCommand,
}

impl BrokerRequest {
    /// A request with no dedup origin.
    #[must_use]
    pub fn bare(cmd: BrokerCommand) -> Self {
        Self { origin: None, cmd }
    }

    /// A client request carrying its retry origin (`client` is the
    /// producer/consumer id, `req_id` its monotone per-client sequence).
    #[must_use]
    pub fn from_client(client: u64, req_id: u64, cmd: BrokerCommand) -> Self {
        Self {
            origin: Some(ReqOrigin { client, req_id }),
            cmd,
        }
    }
}

/// A broker response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerResponse {
    /// Produce accepted: the batch's records sit at `base_offset ..
    /// base_offset + count`.
    Produced {
        /// Offset of the batch's first record.
        base_offset: u64,
        /// Number of records appended.
        count: u64,
    },
    /// Offset commit applied.
    OffsetCommitted {
        /// The committed position, echoed.
        offset: u64,
    },
    /// Fetched records plus the partition's high watermark (for lag).
    Records(FetchResult),
    /// A consumer group's committed position (`None`: never committed).
    CommittedOffset {
        /// The stored position, if any.
        offset: Option<u64>,
    },
}

/// Only mutating commands need exactly-once protection; re-running a
/// retried fetch is harmless, and keeping (potentially large) record
/// batches out of the reply cache keeps replicated state and snapshots
/// small.
fn needs_dedup(cmd: &BrokerCommand) -> bool {
    !cmd.is_read()
}

/// Rough in-memory size of one cached response (snapshot costing). Cached
/// responses are produce/commit acks — a few words each.
const CACHED_REPLY_BYTES: usize = 40;

/// The replicated broker state machine: topics of segmented partition
/// logs, durable consumer-group offsets, and the producer reply cache.
/// Everything here is replicated state — filled identically on every
/// replica and carried whole inside snapshots, so a follower restored via
/// `InstallSnapshot` serves fetches and dedupes producers exactly like one
/// that replayed the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokerSm {
    topics: BTreeMap<String, Topic>,
    /// `(group, topic, partition) → committed offset`.
    group_offsets: BTreeMap<(String, String, u32), u64>,
    /// Per-origin window of recent `req_id → response` (producer dedupe).
    sessions: BTreeMap<u64, BTreeMap<u64, BrokerResponse>>,
    /// Sliding id window retained per origin — the shared
    /// `RaftConfig::reply_window` knob (see
    /// [`dynatune_raft::DEFAULT_REPLY_WINDOW`] for the sizing rule).
    reply_window: u64,
    partition_config: PartitionConfig,
}

impl Default for BrokerSm {
    fn default() -> Self {
        Self::with_reply_window(DEFAULT_REPLY_WINDOW)
    }
}

impl BrokerSm {
    /// Empty broker with the default reply window and partition sizing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty broker retaining `window` reply ids per producer (the
    /// validated `RaftConfig::reply_window` knob).
    #[must_use]
    pub fn with_reply_window(window: u64) -> Self {
        assert!(window > 0, "zero reply window");
        Self {
            topics: BTreeMap::new(),
            group_offsets: BTreeMap::new(),
            sessions: BTreeMap::new(),
            reply_window: window,
            partition_config: PartitionConfig::default(),
        }
    }

    /// Override the segment sizing knobs (tests, scenarios).
    #[must_use]
    pub fn with_partition_config(mut self, config: PartitionConfig) -> Self {
        config.validate();
        self.partition_config = config;
        self
    }

    /// The configured per-origin reply-cache id window.
    #[must_use]
    pub fn reply_window(&self) -> u64 {
        self.reply_window
    }

    /// The topic, if it has ever been produced to.
    #[must_use]
    pub fn topic(&self, topic: &str) -> Option<&Topic> {
        self.topics.get(topic)
    }

    /// Iterate topics in name order.
    pub fn topics(&self) -> impl Iterator<Item = (&str, &Topic)> {
        self.topics.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// A group's committed position on one partition.
    #[must_use]
    pub fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> Option<u64> {
        self.group_offsets
            .get(&(group.to_string(), topic.to_string(), partition))
            .copied()
    }

    /// Cached reply for a producer request, if it was already applied.
    #[must_use]
    pub fn cached_reply(&self, origin: ReqOrigin) -> Option<&BrokerResponse> {
        self.sessions.get(&origin.client)?.get(&origin.req_id)
    }

    /// Rough in-memory size of the snapshot this broker would produce
    /// (records + offsets + reply cache — everything `InstallSnapshot`
    /// ships, charged by the size-aware cost model).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        const PER_OFFSET: usize = 48;
        let records: usize = self.topics.values().map(Topic::bytes).sum();
        let offsets = self.group_offsets.len() * PER_OFFSET;
        let replies: usize = self
            .sessions
            .values()
            .map(|w| w.len() * CACHED_REPLY_BYTES)
            .sum();
        records + offsets + replies
    }

    /// The log-free read entry point: serve a fetch from applied state
    /// (`None` for mutating commands). Callers hold a read grant whose
    /// `read_index` this state machine has applied through. Responses
    /// never enter (or come from) the reply cache.
    #[must_use]
    pub fn read(&self, command: &BrokerCommand) -> Option<BrokerResponse> {
        match command {
            BrokerCommand::Fetch {
                topic,
                partition,
                offset,
                max_records,
            } => {
                let result = self
                    .topics
                    .get(topic)
                    .and_then(|t| t.partition(*partition))
                    .map_or(
                        FetchResult {
                            records: Vec::new(),
                            high_watermark: 0,
                        },
                        |p| p.fetch(*offset, *max_records),
                    );
                Some(BrokerResponse::Records(result))
            }
            BrokerCommand::FetchCommitted {
                group,
                topic,
                partition,
            } => Some(BrokerResponse::CommittedOffset {
                offset: self.committed_offset(group, topic, *partition),
            }),
            BrokerCommand::Produce { .. } | BrokerCommand::CommitOffset { .. } => None,
        }
    }

    /// Execute one mutating command against the data structures (no
    /// dedup — `apply` handles that).
    fn execute(&mut self, cmd: &BrokerCommand) -> BrokerResponse {
        match cmd {
            BrokerCommand::Produce {
                topic,
                partition,
                records,
            } => {
                let log = self
                    .topics
                    .entry(topic.clone())
                    .or_default()
                    .partition_mut(*partition, self.partition_config);
                let base_offset = log.append_batch(records.iter().cloned());
                BrokerResponse::Produced {
                    base_offset,
                    count: records.len() as u64,
                }
            }
            BrokerCommand::CommitOffset {
                group,
                topic,
                partition,
                offset,
            } => {
                // Last-write-wins, like Kafka's __consumer_offsets: the
                // group coordinator (our closed-loop consumer) only ever
                // commits forward.
                self.group_offsets
                    .insert((group.clone(), topic.clone(), *partition), *offset);
                BrokerResponse::OffsetCommitted { offset: *offset }
            }
            // Reads reaching the replicated path (ReadStrategy::Log
            // baseline) execute like any other command, minus caching.
            read => match self.read(read) {
                Some(resp) => resp,
                None => invariant_violated!(
                    "execute fell through to the read arm on a write command \
                     {read:?} — the match above must cover every write variant"
                ),
            },
        }
    }
}

impl StateMachine for BrokerSm {
    type Command = BrokerRequest;
    type Response = BrokerResponse;
    type Snapshot = BrokerSm;

    fn command_bytes(request: &BrokerRequest) -> usize {
        const ORIGIN: usize = 16; // (client, req_id)
        ORIGIN + request.cmd.payload_bytes()
    }

    fn apply(&mut self, _index: LogIndex, request: &BrokerRequest) -> BrokerResponse {
        match request.origin {
            Some(origin) if needs_dedup(&request.cmd) => {
                if let Some(cached) = self.cached_reply(origin) {
                    // A retried produce that already committed: replay the
                    // original ack — the records are NOT appended again.
                    return cached.clone();
                }
                let resp = self.execute(&request.cmd);
                let replies = self.sessions.entry(origin.client).or_default();
                replies.insert(origin.req_id, resp.clone());
                // Slide the window: drop replies no live retry can ask for.
                'slide: {
                    let Some(newest) = replies.keys().next_back().copied() else {
                        break 'slide; // unreachable: `insert` above made the map non-empty
                    };
                    let window = self.reply_window;
                    while let Some((&oldest, _)) = replies.iter().next() {
                        if oldest + window <= newest {
                            replies.remove(&oldest);
                        } else {
                            break;
                        }
                    }
                }
                resp
            }
            _ => self.execute(&request.cmd),
        }
    }

    fn snapshot(&self) -> BrokerSm {
        self.clone()
    }

    fn restore(&mut self, snapshot: &BrokerSm) {
        *self = snapshot.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn rec(v: &str) -> Record {
        Record::new(Bytes::new(), Bytes::copy_from_slice(v.as_bytes()))
    }

    fn produce(topic: &str, partition: u32, vals: &[&str]) -> BrokerCommand {
        BrokerCommand::Produce {
            topic: topic.into(),
            partition,
            records: vals.iter().map(|v| rec(v)).collect(),
        }
    }

    #[test]
    fn produce_assigns_dense_offsets_and_fetch_reads_them_back() {
        let mut sm = BrokerSm::new();
        let r1 = sm.apply(1, &BrokerRequest::bare(produce("t", 0, &["a", "b"])));
        assert_eq!(
            r1,
            BrokerResponse::Produced {
                base_offset: 0,
                count: 2
            }
        );
        let r2 = sm.apply(2, &BrokerRequest::bare(produce("t", 0, &["c"])));
        assert_eq!(
            r2,
            BrokerResponse::Produced {
                base_offset: 2,
                count: 1
            }
        );
        let fetch = BrokerCommand::Fetch {
            topic: "t".into(),
            partition: 0,
            offset: 1,
            max_records: 10,
        };
        let Some(BrokerResponse::Records(fx)) = sm.read(&fetch) else {
            panic!("fetch answers");
        };
        assert_eq!(fx.high_watermark, 3);
        assert_eq!(fx.records.len(), 2);
        assert_eq!(fx.records[0].0, 1);
        assert_eq!(fx.records[0].1.value, Bytes::from_static(b"b"));
    }

    #[test]
    fn fetch_on_unknown_topic_or_partition_is_empty_not_a_panic() {
        let sm = BrokerSm::new();
        let fetch = BrokerCommand::Fetch {
            topic: "nope".into(),
            partition: 7,
            offset: 0,
            max_records: 10,
        };
        let Some(BrokerResponse::Records(fx)) = sm.read(&fetch) else {
            panic!("fetch answers");
        };
        assert!(fx.records.is_empty());
        assert_eq!(fx.high_watermark, 0);
    }

    #[test]
    fn retried_produce_applies_once_and_replays_the_ack() {
        let mut sm = BrokerSm::new();
        let req = BrokerRequest::from_client(9, 1, produce("t", 0, &["a", "b"]));
        let first = sm.apply(1, &req);
        // Same origin, retried (e.g. ack lost to a failover): both entries
        // committed, but the records appended once.
        let second = sm.apply(2, &req);
        assert_eq!(first, second, "retry replays the original ack");
        let fx = sm.topic("t").unwrap().partition(0).unwrap().fetch(0, 10);
        assert_eq!(fx.high_watermark, 2, "no duplicate append");
    }

    #[test]
    fn commit_offset_is_durable_and_readable() {
        let mut sm = BrokerSm::new();
        let commit = BrokerCommand::CommitOffset {
            group: "g".into(),
            topic: "t".into(),
            partition: 3,
            offset: 17,
        };
        assert_eq!(
            sm.apply(1, &BrokerRequest::from_client(1, 1, commit)),
            BrokerResponse::OffsetCommitted { offset: 17 }
        );
        assert_eq!(sm.committed_offset("g", "t", 3), Some(17));
        assert_eq!(sm.committed_offset("other", "t", 3), None);
        let read = BrokerCommand::FetchCommitted {
            group: "g".into(),
            topic: "t".into(),
            partition: 3,
        };
        assert_eq!(
            sm.read(&read),
            Some(BrokerResponse::CommittedOffset { offset: Some(17) })
        );
    }

    #[test]
    fn reads_bypass_the_reply_cache_both_ways() {
        let mut sm = BrokerSm::new();
        sm.apply(1, &BrokerRequest::bare(produce("t", 0, &["a"])));
        let fetch = BrokerCommand::Fetch {
            topic: "t".into(),
            partition: 0,
            offset: 0,
            max_records: 10,
        };
        let req = BrokerRequest::from_client(5, 1, fetch);
        let _ = sm.apply(2, &req);
        assert!(
            sm.cached_reply(ReqOrigin {
                client: 5,
                req_id: 1
            })
            .is_none(),
            "fetch responses must not bloat replicated state"
        );
    }

    #[test]
    fn reply_window_slides_per_origin() {
        let mut sm = BrokerSm::with_reply_window(8);
        for req_id in 0..20 {
            let req = BrokerRequest::from_client(1, req_id, produce("t", 0, &["x"]));
            sm.apply(req_id + 1, &req);
        }
        assert!(sm
            .cached_reply(ReqOrigin {
                client: 1,
                req_id: 0
            })
            .is_none());
        assert!(sm
            .cached_reply(ReqOrigin {
                client: 1,
                req_id: 19
            })
            .is_some());
        assert_eq!(sm.sessions[&1].len(), 8);
    }

    #[test]
    fn snapshot_restore_round_trips_everything() {
        let mut sm = BrokerSm::with_reply_window(64).with_partition_config(PartitionConfig {
            segment_bytes: 64,
            index_interval: 32,
        });
        for i in 0..10 {
            let req = BrokerRequest::from_client(2, i, produce("t", 1, &["v", "w"]));
            sm.apply(i + 1, &req);
        }
        sm.apply(
            11,
            &BrokerRequest::from_client(
                3,
                0,
                BrokerCommand::CommitOffset {
                    group: "g".into(),
                    topic: "t".into(),
                    partition: 1,
                    offset: 5,
                },
            ),
        );
        let snap = sm.snapshot();
        let mut restored = BrokerSm::new();
        restored.restore(&snap);
        assert_eq!(restored, sm);
        // A duplicate of an applied produce still dedupes after restore.
        let dup = BrokerRequest::from_client(2, 9, produce("t", 1, &["v", "w"]));
        let before = restored.topic("t").unwrap().partition(1).unwrap().len();
        restored.apply(12, &dup);
        let after = restored.topic("t").unwrap().partition(1).unwrap().len();
        assert_eq!(before, after, "dedupe state travels in the snapshot");
    }

    #[test]
    fn command_bytes_scale_with_record_payload() {
        let small = BrokerRequest::bare(produce("t", 0, &["x"]));
        let big = BrokerRequest::bare(produce("t", 0, &["xxxxxxxxxxxxxxxxxxxxxxxx"]));
        assert!(BrokerSm::command_bytes(&big) > BrokerSm::command_bytes(&small));
        assert!(BrokerSm::command_bytes(&small) > 0);
    }

    #[test]
    fn approx_bytes_counts_records_offsets_and_replies() {
        let mut sm = BrokerSm::new();
        let empty = sm.approx_bytes();
        sm.apply(
            1,
            &BrokerRequest::from_client(1, 1, produce("t", 0, &["abcdef"])),
        );
        assert!(sm.approx_bytes() > empty);
    }

    mod props {
        use super::*;
        use crate::partition::PartitionConfig;
        use proptest::prelude::*;

        /// One generated mutating command: a produce (with an origin, so
        /// the reply cache fills) or an offset commit.
        fn command() -> impl Strategy<Value = (u64, u64, BrokerCommand)> {
            let produce = (
                1u64..4,
                1u64..200,
                0u32..3,
                proptest::collection::vec(1usize..24, 1..4),
            )
                .prop_map(|(client, req_id, partition, sizes)| {
                    let records = sizes
                        .iter()
                        .map(|&n| rec(&"x".repeat(n)))
                        .collect::<Vec<_>>();
                    (
                        client,
                        req_id,
                        BrokerCommand::Produce {
                            topic: "t".into(),
                            partition,
                            records,
                        },
                    )
                });
            let commit = (1u64..4, 1u64..200, 0u32..3, 0u64..100).prop_map(
                |(client, req_id, partition, offset)| {
                    (
                        client,
                        req_id,
                        BrokerCommand::CommitOffset {
                            group: "g".into(),
                            topic: "t".into(),
                            partition,
                            offset,
                        },
                    )
                },
            );
            prop_oneof![3 => produce, 1 => commit]
        }

        proptest! {
            /// Snapshot → restore is lossless: the restored machine is
            /// equal, serves identical fetches, keeps the producer reply
            /// cache (a retried origin replays its ack, no re-append), and
            /// appends after restore continue at the same dense offsets as
            /// the original.
            #[test]
            fn prop_snapshot_round_trip(
                cmds in proptest::collection::vec(command(), 1..40),
                segment_bytes in 32usize..256,
            ) {
                let config = PartitionConfig { segment_bytes, index_interval: 32 };
                let mut sm = BrokerSm::new().with_partition_config(config);
                for (i, (client, req_id, cmd)) in cmds.iter().enumerate() {
                    sm.apply(
                        i as u64 + 1,
                        &BrokerRequest::from_client(*client, *req_id, cmd.clone()),
                    );
                }

                let snap = sm.snapshot();
                let mut restored = BrokerSm::new();
                restored.restore(&snap);
                prop_assert_eq!(&restored, &sm);

                // Fetches read identically through the rebuilt machine.
                for partition in 0..3 {
                    let fetch = BrokerCommand::Fetch {
                        topic: "t".into(),
                        partition,
                        offset: 0,
                        max_records: 1000,
                    };
                    prop_assert_eq!(restored.read(&fetch), sm.read(&fetch));
                }

                // A retried produce replays its cached ack on both sides
                // without growing the partition.
                if let Some((client, req_id, cmd)) = cmds
                    .iter()
                    .rev()
                    .find(|(_, _, c)| matches!(c, BrokerCommand::Produce { .. }))
                    .cloned()
                {
                    let req = BrokerRequest::from_client(client, req_id, cmd);
                    let before = restored.approx_bytes();
                    let a = sm.apply(1000, &req);
                    let b = restored.apply(1000, &req);
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(restored.approx_bytes(), before,
                        "retry must not re-append");
                }

                // Fresh appends after restore continue the same offsets.
                let next = BrokerRequest::from_client(9, 1, produce("t", 0, &["tail"]));
                prop_assert_eq!(sm.apply(1001, &next), restored.apply(1001, &next));
                prop_assert_eq!(&restored, &sm);
            }
        }
    }
}
