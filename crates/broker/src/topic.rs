//! One topic: a set of partitions, plus the topic/partition → shard route.

use crate::partition::{PartitionConfig, PartitionLog};
use std::collections::BTreeMap;

/// The partitions of one topic. Partition logs are created on first use
/// (deterministic across replicas: creation happens inside the replicated
/// apply path, in identical order everywhere).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Topic {
    partitions: BTreeMap<u32, PartitionLog>,
}

impl Topic {
    /// Empty topic.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The partition log, if it has ever been produced to.
    #[must_use]
    pub fn partition(&self, partition: u32) -> Option<&PartitionLog> {
        self.partitions.get(&partition)
    }

    /// The partition log, created empty on first use.
    pub fn partition_mut(&mut self, partition: u32, config: PartitionConfig) -> &mut PartitionLog {
        self.partitions
            .entry(partition)
            .or_insert_with(|| PartitionLog::new(config))
    }

    /// Iterate partitions in id order.
    pub fn partitions(&self) -> impl Iterator<Item = (u32, &PartitionLog)> {
        self.partitions.iter().map(|(&p, log)| (p, log))
    }

    /// Number of materialized partitions.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total stored bytes across partitions.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.partitions.values().map(PartitionLog::bytes).sum()
    }
}

/// Route a topic/partition to one of `shards` Raft groups — the broker's
/// analogue of the KV `ShardRouter`, and the same FNV-1a construction, so
/// a multi-topic broker spreads partitions across every group a
/// `ShardMap` provides. Every producer, consumer and scenario must agree
/// on this function; it is pure so they trivially do.
#[must_use]
pub fn shard_of_partition(topic: &str, partition: u32, shards: usize) -> usize {
    assert!(shards > 0, "zero shards");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in topic.as_bytes().iter().chain(&partition.to_le_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_materialize_on_first_use() {
        let mut t = Topic::new();
        assert!(t.partition(0).is_none());
        assert_eq!(t.partition_count(), 0);
        t.partition_mut(3, PartitionConfig::default())
            .append(crate::Record::new(&b""[..], &b"v"[..]));
        assert_eq!(t.partition_count(), 1);
        assert_eq!(t.partition(3).unwrap().len(), 1);
        assert_eq!(t.partitions().count(), 1);
        assert!(t.bytes() > 0);
    }

    #[test]
    fn shard_route_is_stable_and_spreads() {
        assert_eq!(
            shard_of_partition("orders", 0, 8),
            shard_of_partition("orders", 0, 8)
        );
        // 32 partitions over 8 shards: every shard gets at least one.
        let mut hit = [false; 8];
        for p in 0..32 {
            hit[shard_of_partition("orders", p, 8)] = true;
        }
        assert!(hit.iter().all(|&h| h), "partitions spread over shards");
        // Different topics route differently somewhere.
        assert!((0..32).any(|p| shard_of_partition("a", p, 8) != shard_of_partition("b", p, 8)));
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn zero_shards_panics() {
        let _ = shard_of_partition("t", 0, 0);
    }
}
