//! The application boundary of the serving layer.
//!
//! [`ServerHost`](crate::ServerHost) wires a Raft node, a CPU meter and the
//! read path to the simulated network, but nothing in that plumbing is
//! KV-specific: it needs to build a fresh state machine on (re)start, wrap
//! a client command with its retry origin, tell reads from writes, answer
//! log-free reads from applied state, and price snapshots for the cost
//! model. [`App`] names exactly those five seams, so the same server (and
//! the same message enum) serves the KV store and the broker — or any
//! future state machine — without duplicating the serving core.

use dynatune_broker::{BrokerCommand, BrokerRequest, BrokerResponse, BrokerSm};
use dynatune_kv::{KvCommand, KvRequest, KvResponse, Store};
use dynatune_raft::{RaftConfig, StateMachine};
use std::fmt::Debug;

/// One application served by the cluster layer: a replicated state machine
/// plus the client-facing command vocabulary around it.
///
/// The associated types tie the client side to the Raft side:
/// [`App::Command`] is what clients send (no origin attached yet);
/// [`App::Request`] is the replicated form carrying the retry origin the
/// reply cache dedupes on. The equality constraints on [`App::Sm`] keep
/// every bound in the serving layer expressible as `A: App`.
pub trait App: Sized + 'static {
    /// Client-facing command (what travels in `ClientReq`/`ClientBatch`).
    type Command: Clone + Debug;
    /// Replicated command: the client command wrapped with its origin.
    type Request: Clone + Debug;
    /// Response returned to clients.
    type Response: Clone + Debug;
    /// Snapshot payload shipped by `InstallSnapshot`.
    type SnapshotData: Clone + Debug;
    /// The replicated state machine itself.
    type Sm: StateMachine<
        Command = Self::Request,
        Response = Self::Response,
        Snapshot = Self::SnapshotData,
    >;

    /// Build a fresh (empty) state machine for a node with this config —
    /// called at construction and on crash-restart, before snapshot/log
    /// replay. Reads the shared knobs (e.g. `reply_window`) off the config
    /// so every replica dedupes identically.
    fn fresh_sm(config: &RaftConfig) -> Self::Sm;

    /// Wrap a client command with its retry origin for replication.
    fn request(client: u64, req_id: u64, cmd: Self::Command) -> Self::Request;

    /// True when the command is a read (eligible for the log-free path).
    fn is_read(cmd: &Self::Command) -> bool;

    /// Answer a read from applied state (`None` for mutating commands).
    /// Callers hold a read grant whose index the state machine has applied
    /// through; responses never enter the reply cache.
    fn read(sm: &Self::Sm, cmd: &Self::Command) -> Option<Self::Response>;

    /// Rough wire size of a snapshot, for the size-aware cost model.
    fn snapshot_bytes(snapshot: &Self::SnapshotData) -> usize;
}

/// The KV application: [`Store`] plus the `Get`/`Put`/`Delete`/`Cas`/
/// `Range` vocabulary. The default `App` everywhere, so single-app call
/// sites (`ServerHost`, `ClusterMsg`) keep compiling unparameterized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvApp;

impl App for KvApp {
    type Command = KvCommand;
    type Request = KvRequest;
    type Response = KvResponse;
    type SnapshotData = Store;
    type Sm = Store;

    fn fresh_sm(config: &RaftConfig) -> Store {
        Store::with_reply_window(config.reply_window)
    }

    fn request(client: u64, req_id: u64, cmd: KvCommand) -> KvRequest {
        KvRequest::from_client(client, req_id, cmd)
    }

    fn is_read(cmd: &KvCommand) -> bool {
        cmd.is_read()
    }

    fn read(sm: &Store, cmd: &KvCommand) -> Option<KvResponse> {
        sm.read(cmd)
    }

    fn snapshot_bytes(snapshot: &Store) -> usize {
        snapshot.approx_bytes()
    }
}

/// The broker application: [`BrokerSm`] plus the produce/fetch/offset
/// vocabulary. Served by the exact same `ServerHost` plumbing as the KV
/// app — fetches ride the log-free read path, produces the replicated
/// propose path with origin dedupe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerApp;

impl App for BrokerApp {
    type Command = BrokerCommand;
    type Request = BrokerRequest;
    type Response = BrokerResponse;
    type SnapshotData = BrokerSm;
    type Sm = BrokerSm;

    fn fresh_sm(config: &RaftConfig) -> BrokerSm {
        BrokerSm::with_reply_window(config.reply_window)
    }

    fn request(client: u64, req_id: u64, cmd: BrokerCommand) -> BrokerRequest {
        BrokerRequest::from_client(client, req_id, cmd)
    }

    fn is_read(cmd: &BrokerCommand) -> bool {
        cmd.is_read()
    }

    fn read(sm: &BrokerSm, cmd: &BrokerCommand) -> Option<BrokerResponse> {
        sm.read(cmd)
    }

    fn snapshot_bytes(snapshot: &BrokerSm) -> usize {
        snapshot.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_core::TuningConfig;

    #[test]
    fn kv_app_round_trips_the_store_seams() {
        let cfg = RaftConfig::new(0, 1, TuningConfig::raft_default());
        let sm = KvApp::fresh_sm(&cfg);
        assert_eq!(sm.reply_window(), cfg.reply_window);
        let get = KvCommand::Get {
            key: bytes::Bytes::from_static(b"k"),
        };
        assert!(KvApp::is_read(&get));
        assert!(matches!(
            KvApp::read(&sm, &get),
            Some(KvResponse::Get { value: None })
        ));
        let req = KvApp::request(3, 7, get);
        assert_eq!(
            req.origin,
            Some(dynatune_kv::ReqOrigin {
                client: 3,
                req_id: 7
            })
        );
    }

    #[test]
    fn broker_app_reads_config_reply_window() {
        let mut cfg = RaftConfig::new(0, 1, TuningConfig::raft_default());
        cfg.reply_window = 128;
        let sm = BrokerApp::fresh_sm(&cfg);
        assert_eq!(sm.reply_window(), 128);
    }
}
