//! Broker cluster assembly: the replicated topic/partition broker served
//! by the generic cluster layer.
//!
//! The KV side pairs [`ShardedClusterSim`](crate::sharded::ShardedClusterSim)
//! with a [`ShardClient`](crate::shard_client::ShardClient); this module is
//! the broker analogue. Topics are split into partitions, every partition
//! is routed to one Raft group by [`shard_of_partition`] (the broker's
//! `ShardRouter`), and one [`BrokerClient`] host drives producers and
//! consumer groups against the same [`ServerHost`] plumbing the KV app
//! uses — produces replicate with origin dedupe, fetches ride the log-free
//! read path.
//!
//! Client discipline, chosen for the exactly-once guarantee the
//! `consumer_lag_failover` scenario asserts:
//!
//! - **One in-flight produce per partition.** Two overlapping produce
//!   requests could commit in either order after a failover retry, breaking
//!   offset order; a closed loop per partition makes offsets follow arrival
//!   order by construction. Records still batch: everything that arrives
//!   during the in-flight request's round trip rides the next request.
//! - **Retries never give up and reuse the request id.** Abandoning a
//!   produce that may have committed is indistinguishable from losing it;
//!   retrying forever with the same `(client, req_id)` origin lets the
//!   replicated reply cache collapse duplicates, so at-least-once delivery
//!   plus dedupe yields exactly-once.
//! - **Record values embed a per-partition sequence number**, so a consumer
//!   can assert `seq == offset` for every record it fetches: a gap means a
//!   lost produce, a repeat means a duplicated one. The failover scenario
//!   hard-asserts both counters stay zero.

use crate::app::BrokerApp;
use crate::cpu::CostModel;
use crate::msg::ClusterMsg;
use crate::server::{CompactionPolicy, ReadCounters, ReadStrategy, ServerHost};
use bytes::Bytes;
use dynatune_broker::{shard_of_partition, BrokerCommand, BrokerResponse, FetchResult, Record};
use dynatune_core::{invariant_violated, TuningConfig};
use dynatune_kv::{ShardId, ShardMap};
use dynatune_raft::{NodeId, RaftConfig, RaftEvent, Role, TimerQuantization};
use dynatune_simnet::{
    Channel, CongestionConfig, Host, HostCtx, LinkSchedule, NetParams, Network, Rng, SimTime,
    Topology, World,
};
use dynatune_stats::OnlineStats;
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// The broker wire vocabulary: the shared cluster message enum instantiated
/// for the broker app.
pub type BrokerMsg = ClusterMsg<BrokerApp>;

/// How long a caught-up consumer waits before polling its partition again.
const POLL_IDLE: Duration = Duration::from_millis(10);

/// Broker client workload: which topics exist, how fast producers emit,
/// and how many consumer groups follow every partition.
#[derive(Debug, Clone)]
pub struct BrokerWorkload {
    /// Topics as `(name, partition_count)`.
    pub topics: Vec<(String, u32)>,
    /// Aggregate record arrival rate across all partitions (records/s);
    /// each partition produces at `produce_rps / total_partitions`, on a
    /// fixed deterministic interval.
    pub produce_rps: f64,
    /// Value bytes per record (min 8: the sequence number lives there).
    pub record_bytes: usize,
    /// Max records one produce batch may carry.
    pub batch_max: usize,
    /// Consumer groups following every partition (0: producers only).
    pub groups: usize,
    /// Max records per fetch.
    pub fetch_max: usize,
    /// Commit the group offset every this many consumed records.
    pub commit_every: u64,
    /// Consumers fetch from a fixed per-(group, partition) replica
    /// (follower fan-out) instead of chasing the partition leader.
    pub fanout_fetch: bool,
    /// Delay before the first arrival/fetch (lets leaders emerge).
    pub start_offset: Duration,
    /// Stop producing this long after the start (`None`: never). Failover
    /// scenarios use the quiet tail to drain in-flight produces and then
    /// assert zero loss.
    pub produce_for: Option<Duration>,
    /// Per-request silence timeout before a retry.
    pub request_timeout: Duration,
}

impl BrokerWorkload {
    /// A steady workload over `topics` at `produce_rps` records/s total,
    /// with one consumer group, 128-byte records and a 2 s warm-up.
    #[must_use]
    pub fn steady(topics: Vec<(String, u32)>, produce_rps: f64) -> Self {
        Self {
            topics,
            produce_rps,
            record_bytes: 128,
            batch_max: 512,
            groups: 1,
            fetch_max: 256,
            commit_every: 100,
            fanout_fetch: false,
            start_offset: Duration::from_secs(2),
            produce_for: None,
            request_timeout: Duration::from_secs(1),
        }
    }

    /// Builder: number of consumer groups.
    #[must_use]
    pub fn groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// Builder: record value size in bytes (min 8).
    #[must_use]
    pub fn record_bytes(mut self, bytes: usize) -> Self {
        self.record_bytes = bytes;
        self
    }

    /// Builder: consumers fetch from fixed per-group replicas.
    #[must_use]
    pub fn fanout(mut self, fanout: bool) -> Self {
        self.fanout_fetch = fanout;
        self
    }

    /// Builder: stop producing after `d` (drain phase follows).
    #[must_use]
    pub fn produce_for(mut self, d: Duration) -> Self {
        self.produce_for = Some(d);
        self
    }

    /// Builder: delay the first arrival.
    #[must_use]
    pub fn starting_at(mut self, offset: Duration) -> Self {
        self.start_offset = offset;
        self
    }

    /// Total partitions across all topics.
    #[must_use]
    pub fn total_partitions(&self) -> usize {
        self.topics.iter().map(|(_, n)| *n as usize).sum()
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics when a knob is zero/empty where that cannot work.
    pub fn validate(&self) {
        assert!(self.total_partitions() > 0, "workload needs partitions");
        assert!(self.produce_rps > 0.0, "zero produce rate");
        assert!(self.batch_max > 0, "zero produce batch cap");
        assert!(self.fetch_max > 0, "zero fetch cap");
        assert!(self.commit_every > 0, "zero commit interval");
    }
}

/// Cumulative producer-side counters (plus request-level totals).
#[derive(Debug, Clone, Default)]
pub struct BrokerStats {
    /// Records generated by producer arrivals.
    pub produced: u64,
    /// Records acknowledged by the broker.
    pub acked_records: u64,
    /// Record bytes acknowledged (throughput numerator).
    pub acked_bytes: u64,
    /// Produce requests sent (each carries a batch).
    pub produce_batches: u64,
    /// Requests re-sent after a timeout or failure response.
    pub retries: u64,
    /// Redirects followed.
    pub redirects: u64,
    /// Produce batch latency, send → ack, in milliseconds.
    pub produce_latency_ms: OnlineStats,
    /// Fetch requests completed.
    pub fetches: u64,
    /// Offset commits acknowledged.
    pub commits: u64,
}

/// Per-consumer-group counters, including the exactly-once checker.
#[derive(Debug, Clone, Default)]
pub struct ConsumerStats {
    /// Records consumed across the group's partitions.
    pub consumed: u64,
    /// Records whose embedded sequence was ahead of their offset — a
    /// produce was lost. Must stay 0.
    pub lost: u64,
    /// Records whose embedded sequence lagged their offset — a produce was
    /// applied twice. Must stay 0.
    pub duplicated: u64,
    /// Records returned out of cursor order. Must stay 0.
    pub out_of_order: u64,
    /// Worst lag (high watermark − cursor) observed on any partition.
    pub max_lag: u64,
    /// Current lag summed over the group's partitions.
    pub current_lag: u64,
    /// Offset commits acknowledged for this group.
    pub commits: u64,
}

/// One (topic, partition) and the Raft group that replicates it.
#[derive(Debug, Clone)]
struct PartitionRef {
    topic: String,
    partition: u32,
    shard: ShardId,
}

#[derive(Debug)]
struct ProducerState {
    next_arrival: SimTime,
    next_seq: u64,
    pending: VecDeque<Record>,
    /// Flush deadline for the first pending record (idle path only; under
    /// load the previous ack triggers the next batch immediately).
    flush_at: Option<SimTime>,
    inflight: Option<u64>,
}

#[derive(Debug)]
struct ConsumerState {
    cursor: u64,
    next_poll: SimTime,
    inflight: Option<u64>,
    commit_inflight: Option<u64>,
    since_commit: u64,
    /// Fixed fan-out replica (used when `fanout_fetch`).
    fetch_target: NodeId,
}

#[derive(Debug, Clone)]
enum ReqKind {
    Produce {
        pidx: usize,
        records: u64,
        bytes: u64,
    },
    Fetch {
        cidx: usize,
    },
    Commit {
        cidx: usize,
    },
}

#[derive(Debug, Clone)]
struct Pending {
    attempt: u64,
    born_at: SimTime,
    shard: ShardId,
    target: NodeId,
    cmd: BrokerCommand,
    kind: ReqKind,
}

/// The broker benchmark client: deterministic fixed-interval producers and
/// closed-loop consumer groups over every partition, routed per shard.
pub struct BrokerClient {
    map: ShardMap,
    parts: Vec<PartitionRef>,
    /// Per-shard leader guess (global host id).
    leader_guess: Vec<NodeId>,
    producers: Vec<ProducerState>,
    /// Indexed `group * parts.len() + pidx`.
    consumers: Vec<ConsumerState>,
    interval: Duration,
    produce_until: Option<SimTime>,
    record_bytes: usize,
    batch_max: usize,
    batch_window: Duration,
    fetch_max: usize,
    commit_every: u64,
    fanout_fetch: bool,
    request_timeout: Duration,
    next_req_id: u64,
    outstanding: BTreeMap<u64, Pending>,
    /// `(deadline, req_id, attempt)`; constant timeout keeps it ordered.
    /// Stale attempts are skipped on expiry.
    timeout_queue: VecDeque<(SimTime, u64, u64)>,
    stats: BrokerStats,
    group_stats: Vec<ConsumerStats>,
    /// Last observed lag per consumer index.
    last_lag: Vec<u64>,
}

impl BrokerClient {
    /// Build the client for `workload` over the placement in `map`.
    ///
    /// # Panics
    /// Panics when the workload fails validation.
    #[must_use]
    pub fn new(workload: &BrokerWorkload, map: ShardMap) -> Self {
        workload.validate();
        let shards = map.shards();
        let mut parts = Vec::new();
        for (topic, n) in &workload.topics {
            for p in 0..*n {
                parts.push(PartitionRef {
                    topic: topic.clone(),
                    partition: p,
                    shard: shard_of_partition(topic, p, shards),
                });
            }
        }
        let n_parts = parts.len();
        let interval = Duration::from_secs_f64(n_parts as f64 / workload.produce_rps);
        let start = SimTime::ZERO + workload.start_offset;
        let producers = (0..n_parts)
            .map(|i| ProducerState {
                // Phase-stagger partitions so arrivals spread over the
                // interval instead of landing on one instant.
                next_arrival: start + interval.mul_f64((i + 1) as f64 / n_parts as f64),
                next_seq: 0,
                pending: VecDeque::new(),
                flush_at: None,
                inflight: None,
            })
            .collect();
        let mut consumers = Vec::new();
        for g in 0..workload.groups {
            for (pidx, part) in parts.iter().enumerate() {
                consumers.push(ConsumerState {
                    cursor: 0,
                    next_poll: start,
                    inflight: None,
                    commit_inflight: None,
                    since_commit: 0,
                    fetch_target: map.group_base(part.shard) + (g + pidx) % map.replicas(),
                });
            }
        }
        Self {
            map,
            parts,
            leader_guess: (0..shards).map(|s| map.server(s, 0)).collect(),
            producers,
            consumers,
            interval,
            produce_until: workload.produce_for.map(|d| start + d),
            record_bytes: workload.record_bytes.max(8),
            batch_max: workload.batch_max,
            batch_window: crate::shard_client::DEFAULT_BATCH_WINDOW,
            fetch_max: workload.fetch_max,
            commit_every: workload.commit_every,
            fanout_fetch: workload.fanout_fetch,
            request_timeout: workload.request_timeout,
            next_req_id: 0,
            outstanding: BTreeMap::new(),
            timeout_queue: VecDeque::new(),
            stats: BrokerStats::default(),
            group_stats: vec![ConsumerStats::default(); workload.groups],
            last_lag: vec![0; workload.groups * n_parts],
        }
    }

    /// Producer-side counters.
    #[must_use]
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Per-group consumer counters, with current lag filled in.
    #[must_use]
    pub fn consumer_stats(&self) -> Vec<ConsumerStats> {
        let n_parts = self.parts.len();
        self.group_stats
            .iter()
            .enumerate()
            .map(|(g, gs)| {
                let mut s = gs.clone();
                s.current_lag = (0..n_parts).map(|p| self.last_lag[g * n_parts + p]).sum();
                s
            })
            .collect()
    }

    /// Requests currently in flight.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Records generated but not yet acknowledged (pending + in flight).
    #[must_use]
    pub fn unacked_records(&self) -> u64 {
        self.stats.produced - self.stats.acked_records
    }

    /// Arrival still due for partition `pidx`, if production continues.
    fn peek_arrival(&self, pidx: usize) -> Option<SimTime> {
        let at = self.producers[pidx].next_arrival;
        match self.produce_until {
            Some(until) if at >= until => None,
            _ => Some(at),
        }
    }

    fn rotate_in_group(&self, shard: ShardId, current: NodeId) -> NodeId {
        let base = self.map.group_base(shard);
        base + (current - base + 1) % self.map.replicas()
    }

    fn rotate_guess(&mut self, shard: ShardId) {
        self.leader_guess[shard] = self.rotate_in_group(shard, self.leader_guess[shard]);
    }

    /// Assign a fresh request id, register it and send the first attempt.
    fn dispatch(
        &mut self,
        ctx: &mut HostCtx<'_, BrokerMsg>,
        shard: ShardId,
        target: NodeId,
        cmd: BrokerCommand,
        kind: ReqKind,
    ) -> u64 {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.outstanding.insert(
            req_id,
            Pending {
                attempt: 0,
                born_at: ctx.now,
                shard,
                target,
                cmd: cmd.clone(),
                kind,
            },
        );
        self.timeout_queue
            .push_back((ctx.now + self.request_timeout, req_id, 0));
        ctx.send(target, Channel::Tcp, ClusterMsg::ClientReq { req_id, cmd });
        req_id
    }

    /// Re-send a live request to `target`, bumping its attempt counter so
    /// timeouts armed for older attempts become inert.
    fn resend(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>, req_id: u64, target: NodeId) {
        let Some(p) = self.outstanding.get_mut(&req_id) else {
            return; // the ack raced the rotation: nothing left to resend
        };
        p.attempt += 1;
        p.target = target;
        let cmd = p.cmd.clone();
        let attempt = p.attempt;
        self.timeout_queue
            .push_back((ctx.now + self.request_timeout, req_id, attempt));
        ctx.send(target, Channel::Tcp, ClusterMsg::ClientReq { req_id, cmd });
    }

    /// Retry a request after a timeout or failure response. Retries are
    /// unbounded by design: a produce abandoned after it may have committed
    /// is indistinguishable from loss, and the same `req_id` keeps the
    /// reply cache collapsing duplicates, so retrying until acked is what
    /// makes delivery exactly-once.
    fn retry(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>, req_id: u64, rotated: &mut [bool]) {
        let Some(p) = self.outstanding.get(&req_id) else {
            return;
        };
        let shard = p.shard;
        let kind = p.kind.clone();
        let target = match kind {
            ReqKind::Fetch { cidx } if self.fanout_fetch => {
                let t = self.rotate_in_group(shard, self.consumers[cidx].fetch_target);
                self.consumers[cidx].fetch_target = t;
                t
            }
            _ => {
                // Rotate the shared guess at most once per expiry wave, so
                // several partitions of one shard don't skip past the
                // actual leader together.
                if !rotated[shard] {
                    self.rotate_guess(shard);
                    rotated[shard] = true;
                }
                self.leader_guess[shard]
            }
        };
        self.stats.retries += 1;
        self.resend(ctx, req_id, target);
    }

    fn expire_timeouts(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>) {
        let mut rotated = vec![false; self.map.shards()];
        while let Some(&(deadline, req_id, attempt)) = self.timeout_queue.front() {
            if deadline > ctx.now {
                break;
            }
            self.timeout_queue.pop_front();
            let live = self
                .outstanding
                .get(&req_id)
                .is_some_and(|p| p.attempt == attempt);
            if live {
                self.retry(ctx, req_id, &mut rotated);
            }
        }
    }

    /// Send the next produce batch for a partition, if one can go.
    fn flush_partition(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>, pidx: usize) {
        if self.producers[pidx].inflight.is_some() || self.producers[pidx].pending.is_empty() {
            return;
        }
        let n_take = self.batch_max.min(self.producers[pidx].pending.len());
        let p = &mut self.producers[pidx];
        let records: Vec<Record> = p.pending.drain(..n_take).collect();
        p.flush_at = None;
        let bytes: u64 = records.iter().map(|r| r.bytes() as u64).sum();
        let part = self.parts[pidx].clone();
        let cmd = BrokerCommand::Produce {
            topic: part.topic,
            partition: part.partition,
            records,
        };
        let target = self.leader_guess[part.shard];
        self.stats.produce_batches += 1;
        let req_id = self.dispatch(
            ctx,
            part.shard,
            target,
            cmd,
            ReqKind::Produce {
                pidx,
                records: n_take as u64,
                bytes,
            },
        );
        self.producers[pidx].inflight = Some(req_id);
    }

    fn issue_fetch(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>, cidx: usize) {
        let pidx = cidx % self.parts.len();
        let part = self.parts[pidx].clone();
        let cmd = BrokerCommand::Fetch {
            topic: part.topic,
            partition: part.partition,
            offset: self.consumers[cidx].cursor,
            max_records: self.fetch_max,
        };
        let target = if self.fanout_fetch {
            self.consumers[cidx].fetch_target
        } else {
            self.leader_guess[part.shard]
        };
        let req_id = self.dispatch(ctx, part.shard, target, cmd, ReqKind::Fetch { cidx });
        self.consumers[cidx].inflight = Some(req_id);
    }

    fn issue_commit(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>, cidx: usize) {
        if self.consumers[cidx].commit_inflight.is_some() {
            return;
        }
        let pidx = cidx % self.parts.len();
        let g = cidx / self.parts.len();
        let part = self.parts[pidx].clone();
        let cmd = BrokerCommand::CommitOffset {
            group: format!("g{g}"),
            topic: part.topic,
            partition: part.partition,
            offset: self.consumers[cidx].cursor,
        };
        let target = self.leader_guess[part.shard];
        let req_id = self.dispatch(ctx, part.shard, target, cmd, ReqKind::Commit { cidx });
        self.consumers[cidx].commit_inflight = Some(req_id);
        self.consumers[cidx].since_commit = 0;
    }

    fn on_fetch(
        &mut self,
        ctx: &mut HostCtx<'_, BrokerMsg>,
        req_id: u64,
        cidx: usize,
        fx: &FetchResult,
    ) {
        self.outstanding.remove(&req_id);
        let g = cidx / self.parts.len();
        let got = !fx.records.is_empty();
        let lag;
        {
            let c = &mut self.consumers[cidx];
            c.inflight = None;
            let gs = &mut self.group_stats[g];
            for (off, rec) in &fx.records {
                if *off != c.cursor {
                    gs.out_of_order += 1;
                }
                let Some(seq) = rec.value.get(..8).map(|h| {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(h);
                    u64::from_le_bytes(buf)
                }) else {
                    invariant_violated!(
                        "record at offset {off} lacks the 8-byte seq header \
                         every produced value starts with"
                    );
                };
                // seq == offset iff every produce applied exactly once in
                // arrival order; see the module docs.
                if seq > *off {
                    gs.lost += 1;
                } else if seq < *off {
                    gs.duplicated += 1;
                }
                gs.consumed += 1;
                c.cursor = off + 1;
                c.since_commit += 1;
            }
            lag = fx.high_watermark.saturating_sub(c.cursor);
            gs.max_lag = gs.max_lag.max(lag);
        }
        self.last_lag[cidx] = lag;
        self.stats.fetches += 1;
        if self.consumers[cidx].since_commit >= self.commit_every {
            self.issue_commit(ctx, cidx);
        }
        if got {
            // More may be waiting: chase the log immediately.
            self.issue_fetch(ctx, cidx);
        } else {
            self.consumers[cidx].next_poll = ctx.now + POLL_IDLE;
        }
    }

    fn on_response(
        &mut self,
        ctx: &mut HostCtx<'_, BrokerMsg>,
        req_id: u64,
        result: Option<BrokerResponse>,
    ) {
        let Some(p) = self.outstanding.get(&req_id) else {
            return; // late duplicate of an already-answered request
        };
        let kind = p.kind.clone();
        let born_at = p.born_at;
        let Some(resp) = result else {
            // The server failed the request (leadership change mid-flight):
            // retry, same id.
            let mut rotated = vec![false; self.map.shards()];
            self.retry(ctx, req_id, &mut rotated);
            return;
        };
        match (kind, resp) {
            (
                ReqKind::Produce {
                    pidx,
                    records,
                    bytes,
                },
                BrokerResponse::Produced { .. },
            ) => {
                self.outstanding.remove(&req_id);
                self.producers[pidx].inflight = None;
                self.stats.acked_records += records;
                self.stats.acked_bytes += bytes;
                self.stats
                    .produce_latency_ms
                    .push((ctx.now - born_at).as_secs_f64() * 1e3);
                // Everything that arrived during the round trip forms the
                // next batch right away.
                self.flush_partition(ctx, pidx);
            }
            (ReqKind::Fetch { cidx }, BrokerResponse::Records(fx)) => {
                self.on_fetch(ctx, req_id, cidx, &fx);
            }
            (ReqKind::Commit { cidx }, BrokerResponse::OffsetCommitted { .. }) => {
                self.outstanding.remove(&req_id);
                self.consumers[cidx].commit_inflight = None;
                self.group_stats[cidx / self.parts.len()].commits += 1;
                self.stats.commits += 1;
            }
            _ => {} // variant mismatch cannot happen; drop defensively
        }
    }

    fn on_redirect(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>, req_id: u64, hint: Option<NodeId>) {
        let Some(p) = self.outstanding.get(&req_id) else {
            return;
        };
        let shard = p.shard;
        let kind = p.kind.clone();
        let current = p.target;
        self.stats.redirects += 1;
        let target = match hint {
            // Hints are global host ids; trust only in-group ones.
            Some(h) if self.map.shard_of_server(h) == Some(shard) => h,
            _ => self.rotate_in_group(shard, current),
        };
        match kind {
            ReqKind::Fetch { cidx } if self.fanout_fetch => {
                self.consumers[cidx].fetch_target = target;
            }
            _ => self.leader_guess[shard] = target,
        }
        self.resend(ctx, req_id, target);
    }

    /// Generate due arrivals, flush due batches, poll due consumers and
    /// expire overdue requests.
    pub fn handle_wake(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>) {
        self.expire_timeouts(ctx);
        for pidx in 0..self.parts.len() {
            while let Some(at) = self.peek_arrival(pidx) {
                if at > ctx.now {
                    break;
                }
                let record_bytes = self.record_bytes;
                let p = &mut self.producers[pidx];
                let mut value = vec![0u8; record_bytes];
                value[..8].copy_from_slice(&p.next_seq.to_le_bytes());
                p.next_seq += 1;
                p.next_arrival = at + self.interval;
                p.pending.push_back(Record::new(Bytes::new(), value));
                if p.inflight.is_none() && p.flush_at.is_none() {
                    p.flush_at = Some(at + self.batch_window);
                }
                self.stats.produced += 1;
            }
            if self.producers[pidx].flush_at.is_some_and(|t| t <= ctx.now) {
                self.flush_partition(ctx, pidx);
            }
        }
        for cidx in 0..self.consumers.len() {
            let c = &self.consumers[cidx];
            if c.inflight.is_none() && c.next_poll <= ctx.now {
                self.issue_fetch(ctx, cidx);
            }
        }
    }

    /// Process a server response.
    pub fn handle_message(
        &mut self,
        ctx: &mut HostCtx<'_, BrokerMsg>,
        _from: NodeId,
        msg: BrokerMsg,
    ) {
        match msg {
            ClusterMsg::ClientResp { req_id, result } => self.on_response(ctx, req_id, result),
            ClusterMsg::ClientRedirect { req_id, hint, .. } => self.on_redirect(ctx, req_id, hint),
            // Clients ignore protocol traffic.
            _ => {}
        }
    }

    /// Next arrival, batch flush, idle poll or timeout, whichever is
    /// sooner.
    #[must_use]
    pub fn wake_deadline(&self) -> Option<SimTime> {
        let arrival = (0..self.parts.len())
            .filter_map(|i| self.peek_arrival(i))
            .min();
        let flush = self.producers.iter().filter_map(|p| p.flush_at).min();
        let timeout = self.timeout_queue.front().map(|&(d, _, _)| d);
        let poll = self
            .consumers
            .iter()
            .filter(|c| c.inflight.is_none())
            .map(|c| c.next_poll)
            .min();
        [arrival, flush, timeout, poll].into_iter().flatten().min()
    }
}

/// A node in a broker world: server or benchmark client.
pub enum BrokerHost {
    /// A Raft/broker server.
    Server(Box<ServerHost<BrokerApp>>),
    /// The producer/consumer benchmark client.
    Client(Box<BrokerClient>),
}

impl Host for BrokerHost {
    type Msg = BrokerMsg;

    fn on_message(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>, from: usize, msg: BrokerMsg) {
        match self {
            BrokerHost::Server(s) => s.handle_message(ctx, from, msg),
            BrokerHost::Client(c) => c.handle_message(ctx, from, msg),
        }
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_, BrokerMsg>) {
        match self {
            BrokerHost::Server(s) => s.handle_wake(ctx),
            BrokerHost::Client(c) => c.handle_wake(ctx),
        }
    }

    fn next_wake(&self) -> Option<SimTime> {
        match self {
            BrokerHost::Server(s) => s.wake_deadline(),
            BrokerHost::Client(c) => c.wake_deadline(),
        }
    }
}

/// Full description of one broker cluster run. Mirrors
/// [`ShardedConfig`](crate::sharded::ShardedConfig) — same placement, net,
/// cost and replication knobs — with the broker workload in place of the
/// KV one.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Raft-group count and replicas per group (the placement).
    pub map: ShardMap,
    /// Tuning mode, applied to every group independently.
    pub tuning: TuningConfig,
    /// Server-to-server topology over all `map.n_servers()` hosts.
    pub topology: Topology,
    /// Congestion-burst model applied per egress.
    pub congestion: CongestionConfig,
    /// Election-timer quantization.
    pub quantization: TimerQuantization,
    /// Heartbeats over UDP (paper hybrid transport) or TCP.
    pub udp_heartbeats: bool,
    /// Pre-vote enabled.
    pub pre_vote: bool,
    /// Check-quorum enabled.
    pub check_quorum: bool,
    /// CPU cost model (per server).
    pub cost: CostModel,
    /// Log-compaction policy (threshold + retained tail).
    pub compaction: CompactionPolicy,
    /// How servers serve linearizable reads (log vs lease/ReadIndex).
    pub read_strategy: ReadStrategy,
    /// Followers answer forwarded reads locally (log-free strategies).
    pub follower_reads: bool,
    /// Max unacked appends in flight per follower (1 = ping-pong).
    pub pipeline_window: usize,
    /// Group-commit byte cap per leader.
    pub max_batch_bytes: usize,
    /// Group-commit latency cap per leader.
    pub max_batch_delay: Duration,
    /// Hard cap on entries carried by a single `AppendEntries`.
    pub max_entries_per_append: usize,
    /// Cores per server.
    pub cores: usize,
    /// Utilization sampling window.
    pub cpu_window: Duration,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Optional producer/consumer workload.
    pub workload: Option<BrokerWorkload>,
    /// Network parameters of client↔server links.
    pub client_link: NetParams,
}

/// A running broker cluster.
pub struct BrokerClusterSim {
    world: World<BrokerHost>,
    map: ShardMap,
}

impl BrokerClusterSim {
    /// Build the broker cluster. The assembly (seed streams, topology
    /// extension, per-node configs) matches the sharded KV sim exactly, so
    /// broker scenarios inherit its determinism story.
    ///
    /// # Panics
    /// Panics when the topology size does not match `map.n_servers()`.
    #[must_use]
    pub fn new(config: &BrokerConfig) -> Self {
        let map = config.map;
        let n_servers = map.n_servers();
        assert_eq!(
            config.topology.len(),
            n_servers,
            "topology must cover exactly the servers"
        );
        let master = Rng::new(config.seed);
        let n_total = n_servers + usize::from(config.workload.is_some());
        let topology = if config.workload.is_some() {
            config
                .topology
                .extend_with(1, LinkSchedule::constant(config.client_link))
        } else {
            config.topology.clone()
        };
        let net = Network::new(n_total, &master.child(1), config.congestion, |f, t| {
            topology.schedule(f, t)
        });
        let node_seed_root = master.child(2);
        let mut hosts: Vec<BrokerHost> = Vec::with_capacity(n_total);
        for shard in 0..map.shards() {
            for replica in 0..map.replicas() {
                let mut rc = RaftConfig::new(replica, map.replicas(), config.tuning);
                rc.pre_vote = config.pre_vote;
                rc.check_quorum = config.check_quorum;
                rc.quantization = config.quantization;
                rc.udp_heartbeats = config.udp_heartbeats;
                rc.lease_reads = config.read_strategy == ReadStrategy::Lease;
                rc.pipeline_window = config.pipeline_window;
                rc.max_batch_bytes = config.max_batch_bytes;
                rc.max_batch_delay = config.max_batch_delay;
                rc.max_entries_per_append = config.max_entries_per_append;
                let mut stream = node_seed_root.child(map.server(shard, replica) as u64);
                rc.seed = stream.next_u64();
                hosts.push(BrokerHost::Server(Box::new(
                    ServerHost::new(rc, config.cost, config.cores, config.cpu_window)
                        .with_peer_base(map.group_base(shard))
                        .with_compaction(config.compaction)
                        .with_reads(config.read_strategy, config.follower_reads),
                )));
            }
        }
        if let Some(wl) = &config.workload {
            hosts.push(BrokerHost::Client(Box::new(BrokerClient::new(wl, map))));
        }
        Self {
            world: World::new(hosts, net),
            map,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The replica placement.
    #[must_use]
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of Raft groups.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// Number of server hosts (the client excluded).
    #[must_use]
    pub fn n_servers(&self) -> usize {
        self.map.n_servers()
    }

    /// Advance the simulation to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.world.run_until(deadline);
    }

    /// Advance by `delta`.
    pub fn run_for(&mut self, delta: Duration) {
        let target = self.world.now() + delta;
        self.world.run_until(target);
    }

    fn server(&self, id: NodeId) -> &ServerHost<BrokerApp> {
        match self.world.host(id) {
            BrokerHost::Server(s) => s,
            BrokerHost::Client(_) => invariant_violated!(
                "host {id} is not a server — group bases map shards onto the \
                 leading server slots"
            ),
        }
    }

    /// Run a closure against a server (by global host id).
    pub fn with_server<T>(&self, id: NodeId, f: impl FnOnce(&ServerHost<BrokerApp>) -> T) -> T {
        f(self.server(id))
    }

    /// The live leader of one group (global host id), if exactly one
    /// exists at the group's highest leading term.
    #[must_use]
    pub fn leader_of(&self, shard: ShardId) -> Option<NodeId> {
        let mut best: Option<(u64, NodeId)> = None;
        for id in self.map.servers_of(shard) {
            if self.world.is_paused(id) {
                continue;
            }
            let node = self.server(id).node();
            if node.role() == Role::Leader {
                let term = node.term();
                if best.is_none_or(|(t, _)| term > t) {
                    best = Some((term, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Leaders of all groups, indexed by shard id.
    #[must_use]
    pub fn leaders(&self) -> Vec<Option<NodeId>> {
        (0..self.map.shards()).map(|s| self.leader_of(s)).collect()
    }

    /// Pause a server (global host id).
    pub fn pause(&mut self, id: NodeId) {
        self.world.pause(id);
    }

    /// Resume a paused server.
    pub fn resume(&mut self, id: NodeId) {
        self.world.resume(id);
    }

    /// Crash a server: buffered traffic and volatile state dropped,
    /// persistent log kept — the same sequence as the KV sims.
    pub fn crash(&mut self, id: NodeId) {
        self.world.clear_pause_buffer(id);
        let now = self.world.now();
        match self.world.host_mut(id) {
            BrokerHost::Server(s) => s.crash_restart(now),
            BrokerHost::Client(_) => invariant_violated!(
                "host {id} is not a server — fault schedules only target server ids"
            ),
        }
        self.world.reschedule_wake(id);
    }

    /// Recorded events of one group, with group-local node ids.
    #[must_use]
    pub fn shard_events(&self, shard: ShardId) -> Vec<(SimTime, NodeId, RaftEvent)> {
        let base = self.map.group_base(shard);
        let mut out = Vec::new();
        for id in self.map.servers_of(shard) {
            for &(t, e) in self.server(id).events() {
                out.push((t, id - base, e));
            }
        }
        out.sort_by_key(|&(t, id, _)| (t, id));
        out
    }

    fn client(&self) -> Option<&BrokerClient> {
        match self.world.host(self.world.len() - 1) {
            BrokerHost::Client(c) => Some(c),
            BrokerHost::Server(_) => None,
        }
    }

    /// Producer-side counters (`None` without a workload).
    #[must_use]
    pub fn stats(&self) -> Option<BrokerStats> {
        self.client().map(|c| c.stats().clone())
    }

    /// Per-group consumer counters (`None` without a workload).
    #[must_use]
    pub fn consumer_stats(&self) -> Option<Vec<ConsumerStats>> {
        self.client().map(BrokerClient::consumer_stats)
    }

    /// Records generated but not yet acknowledged (0 without a workload).
    #[must_use]
    pub fn unacked_records(&self) -> u64 {
        self.client().map_or(0, BrokerClient::unacked_records)
    }

    /// Network counters (sent/delivered/dropped).
    #[must_use]
    pub fn net_counters(&self) -> dynatune_simnet::NetCounters {
        self.world.counters()
    }

    /// Served-read counters aggregated over all servers (by path).
    #[must_use]
    pub fn read_counters(&self) -> ReadCounters {
        (0..self.n_servers())
            .map(|id| self.server(id).reads_served())
            .fold(ReadCounters::default(), ReadCounters::merged)
    }

    /// Largest live log across all servers.
    #[must_use]
    pub fn max_log_len(&self) -> usize {
        (0..self.n_servers())
            .map(|id| self.server(id).log_len())
            .max()
            .unwrap_or(0)
    }

    /// Total `InstallSnapshot` transfers started across all servers.
    #[must_use]
    pub fn total_snapshots_sent(&self) -> u64 {
        (0..self.n_servers())
            .map(|id| self.server(id).snapshots_sent())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builder::{NetPlan, ScenarioBuilder};

    fn broker_sim(groups: usize, fanout: bool, seed: u64) -> BrokerClusterSim {
        let wl = BrokerWorkload::steady(vec![("orders".into(), 4)], 400.0)
            .groups(groups)
            .fanout(fanout);
        ScenarioBuilder::cluster(3)
            .shards(2)
            .net(NetPlan::stable(Duration::from_millis(20)))
            .seed(seed)
            .build_broker_sim(wl)
    }

    #[test]
    fn produces_and_consumes_with_zero_loss() {
        let mut sim = broker_sim(1, false, 1);
        sim.run_until(SimTime::from_secs(12));
        let stats = sim.stats().expect("client attached");
        assert!(stats.produced > 2000, "produced {}", stats.produced);
        assert!(
            stats.acked_records > stats.produced / 2,
            "acked {} of {}",
            stats.acked_records,
            stats.produced
        );
        assert!(
            stats.produce_batches < stats.acked_records,
            "batching must coalesce"
        );
        let groups = sim.consumer_stats().expect("client attached");
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert!(g.consumed > 1000, "consumed {}", g.consumed);
        assert_eq!(g.lost, 0);
        assert_eq!(g.duplicated, 0);
        assert_eq!(g.out_of_order, 0);
        assert!(g.commits > 0, "offsets must commit durably");
    }

    #[test]
    fn drain_phase_acks_every_record() {
        let wl = BrokerWorkload::steady(vec![("t".into(), 2)], 300.0)
            .produce_for(Duration::from_secs(6));
        let mut sim = ScenarioBuilder::cluster(3)
            .shards(2)
            .net(NetPlan::stable(Duration::from_millis(20)))
            .seed(3)
            .build_broker_sim(wl);
        sim.run_until(SimTime::from_secs(15));
        let stats = sim.stats().expect("client attached");
        assert!(stats.produced > 1000);
        assert_eq!(
            stats.acked_records, stats.produced,
            "drain must ack every record"
        );
        assert_eq!(sim.unacked_records(), 0);
    }

    #[test]
    fn leader_crash_loses_and_duplicates_nothing() {
        let wl = BrokerWorkload::steady(vec![("t".into(), 2)], 300.0)
            .produce_for(Duration::from_secs(10));
        let mut sim = ScenarioBuilder::cluster(3)
            .shards(1)
            .net(NetPlan::stable(Duration::from_millis(20)))
            .seed(5)
            .build_broker_sim(wl);
        sim.run_until(SimTime::from_secs(6));
        let victim = sim.leader_of(0).expect("group 0 leader");
        sim.crash(victim);
        sim.run_until(SimTime::from_secs(25));
        let stats = sim.stats().expect("client attached");
        assert_eq!(
            stats.acked_records, stats.produced,
            "failover must not strand produces"
        );
        let g = &sim.consumer_stats().unwrap()[0];
        assert_eq!(g.consumed, stats.produced, "consumer reads everything");
        assert_eq!(g.lost, 0, "no record lost across failover");
        assert_eq!(g.duplicated, 0, "no record duplicated across failover");
        assert_eq!(g.out_of_order, 0);
        assert_eq!(g.current_lag, 0, "lag fully recovered");
    }

    #[test]
    fn fanout_spreads_fetches_off_the_leader() {
        let mut sim = broker_sim(4, true, 7);
        sim.run_until(SimTime::from_secs(12));
        let reads = sim.read_counters();
        assert!(
            reads.follower > 0,
            "fan-out consumers must fetch from followers: {reads:?}"
        );
        for g in sim.consumer_stats().unwrap() {
            assert_eq!(g.lost, 0);
            assert_eq!(g.duplicated, 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = broker_sim(2, false, seed);
            sim.run_until(SimTime::from_secs(8));
            let stats = sim.stats().unwrap();
            (
                stats.produced,
                stats.acked_records,
                stats.fetches,
                sim.net_counters(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).3, run(12).3);
    }
}
