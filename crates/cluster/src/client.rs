//! Open-loop benchmark client host (§IV-B2 methodology).

use crate::msg::ClusterMsg;
use bytes::Bytes;
use dynatune_kv::{KvCommand, KvResponse, WorkloadGen};
use dynatune_raft::NodeId;
use dynatune_simnet::{Channel, HostCtx, SimTime};
use dynatune_stats::OnlineStats;
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// One completed operation in the client's linearizability trace:
/// invocation/response instants plus the revision the operation observed
/// (reads: the value's `mod_revision`, 0 for a miss) or produced (puts:
/// the write's own revision). The stale-read checker
/// ([`stale_read_violations`](crate::observers::stale_read_violations))
/// compares these against real-time order per key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The key the operation touched.
    pub key: Bytes,
    /// True for writes (`Put`), false for reads (`Get`).
    pub write: bool,
    /// First send instant (retries keep it — it is the invocation time).
    pub invoked: SimTime,
    /// Response arrival instant.
    pub completed: SimTime,
    /// Observed / produced revision.
    pub revision: u64,
}

/// Outcome aggregation for one offered-load level.
#[derive(Debug, Clone, Default)]
pub struct StepRecord {
    /// Offered rate of the step (req/s).
    pub offered_rps: f64,
    /// Duration of the step in seconds.
    pub hold_secs: f64,
    /// Requests sent during the step.
    pub sent: u64,
    /// Requests completed successfully (whenever the response arrived).
    pub completed: u64,
    /// Requests that failed (leadership change, retry exhausted).
    pub failed: u64,
    /// Latency of completed requests in milliseconds.
    pub latency_ms: OnlineStats,
}

impl StepRecord {
    /// Completed throughput in req/s, attributing completions to the step
    /// in which their request was sent.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.hold_secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.hold_secs
        }
    }
}

#[derive(Debug, Clone)]
struct Outstanding {
    sent_at: SimTime,
    send_step: usize,
    retries: u8,
    cmd: dynatune_kv::KvCommand,
}

/// Maximum redirect/timeout-driven retries per request.
const MAX_RETRIES: u8 = 3;

/// An open-loop client: sends according to the workload schedule regardless
/// of completions, follows leader redirects, records per-step latency.
///
/// Completions are bucketed by *completion* time, matching how an open-loop
/// benchmark measures throughput per offered-load level: work that spills
/// past a level's window must not be credited to it, otherwise a saturated
/// server that eventually drains its backlog would appear to keep up.
pub struct ClientHost {
    workload: WorkloadGen,
    leader_guess: NodeId,
    n_servers: usize,
    next_req_id: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    steps: Vec<StepRecord>,
    /// End instant of each step's window.
    step_ends: Vec<SimTime>,
    /// Completions after the last window closed.
    late: u64,
    /// Per-request response timeout; expired requests retry on the next
    /// server (round robin). `None` disables timeouts.
    request_timeout: Option<Duration>,
    /// FIFO of `(deadline, req_id)` for timeout checks (constant timeout ⇒
    /// deadlines are naturally ordered).
    timeout_queue: VecDeque<(SimTime, u64)>,
    /// Requests that exhausted their retry budget via timeouts.
    timed_out: u64,
    /// Spread reads round-robin over all servers instead of sending them
    /// to the leader guess (follower-read offload). Writes always chase
    /// the leader.
    read_fanout: bool,
    /// Round-robin cursor for `read_fanout`.
    read_rr: usize,
    /// Record completed `Get`/`Put` operations for linearizability checks.
    record_trace: bool,
    /// The recorded trace (empty unless `record_trace`).
    trace: Vec<OpRecord>,
}

impl ClientHost {
    /// Create a client that initially guesses server 0 as leader; the
    /// workload's schedule starts at `start`.
    #[must_use]
    pub fn new(workload: WorkloadGen, n_servers: usize, start: SimTime) -> Self {
        let steps: Vec<StepRecord> = workload
            .steps()
            .iter()
            .map(|s| StepRecord {
                offered_rps: s.rps,
                hold_secs: s.hold.as_secs_f64(),
                ..StepRecord::default()
            })
            .collect();
        let mut step_ends = Vec::with_capacity(steps.len());
        let mut t = start;
        for s in workload.steps() {
            t += s.hold;
            step_ends.push(t);
        }
        Self {
            workload,
            leader_guess: 0,
            n_servers,
            next_req_id: 0,
            outstanding: BTreeMap::new(),
            steps,
            step_ends,
            late: 0,
            request_timeout: Some(Duration::from_secs(1)),
            timeout_queue: VecDeque::new(),
            timed_out: 0,
            read_fanout: false,
            read_rr: 0,
            record_trace: false,
            trace: Vec::new(),
        }
    }

    /// Override (or disable) the per-request response timeout.
    #[must_use]
    pub fn with_request_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Spread reads round-robin across every server (writes still chase
    /// the leader). Pointless under [`ReadStrategy::Log`]
    /// (non-leaders redirect) — pair with follower reads.
    ///
    /// [`ReadStrategy::Log`]: crate::server::ReadStrategy::Log
    #[must_use]
    pub fn with_read_fanout(mut self, fanout: bool) -> Self {
        self.read_fanout = fanout;
        self
    }

    /// Record completed `Get`/`Put` operations for linearizability checks.
    #[must_use]
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// The recorded operation trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace(&self) -> &[OpRecord] {
        &self.trace
    }

    /// Requests abandoned after exhausting timeout retries.
    #[must_use]
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Per-step results (valid after the run).
    #[must_use]
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Requests still in flight (unanswered at the end of a run).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Completions that landed after the schedule's last window.
    #[must_use]
    pub fn late_completions(&self) -> u64 {
        self.late
    }

    /// The step whose window covers `now`, if any.
    fn step_of(&self, now: SimTime) -> Option<usize> {
        let idx = self.step_ends.partition_point(|&end| end <= now);
        (idx < self.step_ends.len()).then_some(idx)
    }

    fn arm_timeout(&mut self, now: SimTime, req_id: u64) {
        if let Some(t) = self.request_timeout {
            self.timeout_queue.push_back((now + t, req_id));
        }
    }

    /// Retry (or abandon) requests whose responses are overdue. A paused
    /// leader never answers, so without this a client would keep feeding a
    /// dead node for the entire outage.
    fn expire_timeouts(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        // The silent server may be dead: rotate the guess once per expiry
        // wave (not per request, or a burst would spray across the cluster).
        let mut rotated = false;
        while let Some(&(deadline, req_id)) = self.timeout_queue.front() {
            if deadline > ctx.now {
                break;
            }
            self.timeout_queue.pop_front();
            let Some(o) = self.outstanding.get_mut(&req_id) else {
                continue; // already answered
            };
            if o.retries >= MAX_RETRIES {
                let step = o.send_step;
                self.outstanding.remove(&req_id);
                self.steps[step].failed += 1;
                self.timed_out += 1;
                continue;
            }
            o.retries += 1;
            if !rotated {
                self.leader_guess = (self.leader_guess + 1) % self.n_servers;
                rotated = true;
            }
            let cmd = o.cmd.clone();
            let target = self.leader_guess;
            ctx.send(target, Channel::Tcp, ClusterMsg::ClientReq { req_id, cmd });
            self.arm_timeout(ctx.now, req_id);
        }
    }

    /// Send every arrival whose time has come and expire overdue requests.
    pub fn handle_wake(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        self.expire_timeouts(ctx);
        while let Some(at) = self.workload.peek_next() {
            if at > ctx.now {
                break;
            }
            let step = self.workload.step_index();
            let Some((_, cmd)) = self.workload.next_request() else {
                break;
            };
            let req_id = self.next_req_id;
            self.next_req_id += 1;
            self.outstanding.insert(
                req_id,
                Outstanding {
                    sent_at: ctx.now,
                    send_step: step,
                    retries: 0,
                    cmd: cmd.clone(),
                },
            );
            self.steps[step].sent += 1;
            self.arm_timeout(ctx.now, req_id);
            let target = if self.read_fanout && cmd.is_read() {
                self.read_rr = (self.read_rr + 1) % self.n_servers;
                self.read_rr
            } else {
                self.leader_guess
            };
            ctx.send(target, Channel::Tcp, ClusterMsg::ClientReq { req_id, cmd });
        }
    }

    /// Process a server response.
    pub fn handle_message(
        &mut self,
        ctx: &mut HostCtx<'_, ClusterMsg>,
        _from: NodeId,
        msg: ClusterMsg,
    ) {
        match msg {
            ClusterMsg::ClientResp { req_id, result } => {
                if let Some(o) = self.outstanding.remove(&req_id) {
                    if self.record_trace {
                        if let Some(resp) = &result {
                            if let Some(rec) = op_record(&o.cmd, resp, o.sent_at, ctx.now) {
                                self.trace.push(rec);
                            }
                        }
                    }
                    // Bucket by completion time; spill-over past the last
                    // window is recorded separately.
                    match (result.is_some(), self.step_of(ctx.now)) {
                        (true, Some(step)) => {
                            let rec = &mut self.steps[step];
                            rec.completed += 1;
                            let ms = (ctx.now - o.sent_at).as_secs_f64() * 1e3;
                            rec.latency_ms.push(ms);
                        }
                        (true, None) => self.late += 1,
                        (false, _) => self.steps[o.send_step].failed += 1,
                    }
                }
            }
            ClusterMsg::ClientRedirect { req_id, hint, cmd } => {
                let Some(o) = self.outstanding.get_mut(&req_id) else {
                    return;
                };
                // Adopt the hint, or probe round-robin when there is none.
                self.leader_guess = match hint {
                    Some(h) => h,
                    None => (self.leader_guess + 1) % self.n_servers,
                };
                if o.retries >= MAX_RETRIES {
                    let step = o.send_step;
                    self.outstanding.remove(&req_id);
                    self.steps[step].failed += 1;
                    return;
                }
                o.retries += 1;
                let target = self.leader_guess;
                ctx.send(target, Channel::Tcp, ClusterMsg::ClientReq { req_id, cmd });
                self.arm_timeout(ctx.now, req_id);
            }
            // Clients ignore protocol traffic.
            ClusterMsg::Raft(_)
            | ClusterMsg::ClientReq { .. }
            | ClusterMsg::ClientBatch { .. }
            | ClusterMsg::ReadIndexReq { .. }
            | ClusterMsg::ReadIndexResp { .. } => {}
        }
    }

    /// Next workload arrival or timeout check, whichever is sooner.
    #[must_use]
    pub fn wake_deadline(&self) -> Option<SimTime> {
        let arrival = self.workload.peek_next();
        let timeout = self.timeout_queue.front().map(|&(d, _)| d);
        match (arrival, timeout) {
            (Some(a), Some(t)) => Some(a.min(t)),
            (a, t) => a.or(t),
        }
    }
}

/// Build a trace record for a completed operation; only `Get` and `Put`
/// participate in the linearizability check (they carry revisions —
/// which is also why checked workloads must be delete-free: an
/// unrecorded `Delete` would make a later legitimate miss look stale).
fn op_record(
    cmd: &KvCommand,
    resp: &KvResponse,
    invoked: SimTime,
    completed: SimTime,
) -> Option<OpRecord> {
    match (cmd, resp) {
        (KvCommand::Get { key }, KvResponse::Get { value }) => Some(OpRecord {
            key: key.clone(),
            write: false,
            invoked,
            completed,
            revision: value.as_ref().map_or(0, |v| v.mod_revision),
        }),
        (KvCommand::Put { key, .. }, KvResponse::Put { revision, .. }) => Some(OpRecord {
            key: key.clone(),
            write: true,
            invoked,
            completed,
            revision: *revision,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_kv::{KvCommand, KvResponse, OpMix, RateStep};
    use dynatune_simnet::rng::Rng;
    use std::time::Duration;

    fn client(rps: f64, secs: u64) -> ClientHost {
        let wl = WorkloadGen::new(
            vec![RateStep {
                rps,
                hold: Duration::from_secs(secs),
            }],
            OpMix::write_heavy(),
            100,
            0.99,
            16,
            Rng::new(5),
            SimTime::ZERO,
        );
        ClientHost::new(wl, 3, SimTime::ZERO)
    }

    #[test]
    fn sends_requests_on_schedule() {
        let mut c = client(100.0, 1);
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_secs(1), 0, &mut out);
        c.handle_wake(&mut ctx);
        // All arrivals in [0, 1s) fire at once when woken late.
        assert!(out.len() > 50, "sent {}", out.len());
        assert_eq!(c.outstanding(), out.len());
        assert!(out.iter().all(|(to, _, _)| *to == 0), "initial guess is 0");
        assert_eq!(c.steps()[0].sent, out.len() as u64);
    }

    #[test]
    fn completion_records_latency() {
        let mut c = client(100.0, 1);
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(100), 0, &mut out);
        c.handle_wake(&mut ctx);
        let (_, _, first) = &out[0];
        let req_id = match first {
            ClusterMsg::ClientReq { req_id, .. } => *req_id,
            other => panic!("unexpected {other:?}"),
        };
        let mut out2 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(150), 0, &mut out2);
        c.handle_message(
            &mut ctx,
            0,
            ClusterMsg::ClientResp {
                req_id,
                result: Some(KvResponse::Put {
                    prev: None,
                    revision: 1,
                }),
            },
        );
        assert_eq!(c.steps()[0].completed, 1);
        assert!(c.steps()[0].latency_ms.mean() > 0.0);
        assert!(c.steps()[0].latency_ms.mean() <= 150.0);
    }

    #[test]
    fn redirect_retries_with_hint() {
        let mut c = client(50.0, 1);
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(100), 0, &mut out);
        c.handle_wake(&mut ctx);
        let req_id = match &out[0].2 {
            ClusterMsg::ClientReq { req_id, .. } => *req_id,
            other => panic!("unexpected {other:?}"),
        };
        let mut out2 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(110), 0, &mut out2);
        c.handle_message(
            &mut ctx,
            0,
            ClusterMsg::ClientRedirect {
                req_id,
                hint: Some(2),
                cmd: KvCommand::Get {
                    key: bytes::Bytes::from_static(b"k"),
                },
            },
        );
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].0, 2, "resent to the hinted leader");
        // Subsequent requests go to the new guess too.
        let mut out3 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(500), 0, &mut out3);
        c.handle_wake(&mut ctx);
        assert!(out3.iter().all(|(to, _, _)| *to == 2));
    }

    #[test]
    fn silent_server_triggers_timeout_retry() {
        let mut c = client(100.0, 1).with_request_timeout(Some(Duration::from_millis(200)));
        let mut out = Vec::new();
        // Deliver all arrivals of the first 100ms in one late wake.
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(100), 0, &mut out);
        c.handle_wake(&mut ctx);
        let sent_initially = out.len();
        assert!(
            sent_initially > 0,
            "100ms at 100rps should produce arrivals"
        );
        // Next wake must include the timeout deadline (t=300ms).
        let wake = c.wake_deadline().unwrap();
        assert!(wake <= SimTime::from_millis(300), "wake {wake}");
        // Nothing answered; by 350ms those requests retry on server 1.
        let mut out2 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(350), 0, &mut out2);
        c.handle_wake(&mut ctx);
        let retries = out2
            .iter()
            .filter(|(to, _, m)| matches!(m, ClusterMsg::ClientReq { .. }) && *to == 1)
            .count();
        assert!(
            retries >= sent_initially,
            "timed-out requests retry on the next server: {retries} < {sent_initially}"
        );
    }

    #[test]
    fn timeout_budget_exhausts_to_failure() {
        let mut c = client(100.0, 1).with_request_timeout(Some(Duration::from_millis(100)));
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(100), 0, &mut out);
        c.handle_wake(&mut ctx);
        assert!(c.outstanding() > 0);
        // Walk time forward through all retry budgets without any response.
        for secs in 1..=10u64 {
            let mut o = Vec::new();
            let mut ctx = HostCtx::test_ctx(SimTime::from_millis(100 + secs * 200), 0, &mut o);
            c.expire_timeouts(&mut ctx);
        }
        assert!(c.timed_out() > 0, "requests should give up eventually");
        assert_eq!(c.outstanding(), 0);
        assert_eq!(c.steps()[0].failed, c.timed_out());
    }

    #[test]
    fn retry_budget_exhausts_to_failure() {
        let mut c = client(50.0, 1);
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(100), 0, &mut out);
        c.handle_wake(&mut ctx);
        let req_id = match &out[0].2 {
            ClusterMsg::ClientReq { req_id, .. } => *req_id,
            other => panic!("unexpected {other:?}"),
        };
        for i in 0..=u64::from(MAX_RETRIES) {
            let mut o = Vec::new();
            let mut ctx = HostCtx::test_ctx(SimTime::from_millis(110 + i), 0, &mut o);
            c.handle_message(
                &mut ctx,
                0,
                ClusterMsg::ClientRedirect {
                    req_id,
                    hint: None,
                    cmd: KvCommand::Get {
                        key: bytes::Bytes::from_static(b"k"),
                    },
                },
            );
        }
        assert_eq!(c.steps()[0].failed, 1);
        assert!(!c.outstanding.contains_key(&req_id));
    }
}
