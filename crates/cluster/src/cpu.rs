//! CPU cost model and utilization metering.
//!
//! The paper measures container CPU utilization with `docker stats` in 5 s
//! windows, capped at 200 % for the 2-core allocation (Fig. 7b), and finds
//! peak request throughput limited by the leader's processing power
//! (Fig. 5). The simulator reproduces both with a simple cost model: every
//! simulated action charges busy time onto one of `cores` virtual cores;
//! request admission is *delayed* until a core is free, which is what makes
//! offered load beyond capacity queue up (latency) and saturate
//! (throughput), exactly the Fig. 5 hockey stick.
//!
//! Cost calibration (documented in DESIGN.md): per-message costs are sized
//! so that a 2-core leader pushing 64 followers at Fix-K cadence pegs near
//! 100 %+ (paper Fig. 7b) and a 4-core leader saturates near the paper's
//! ~13.7 k req/s peak (Fig. 5). The `tuning_per_request` tax encodes the
//! paper's measured 6.4 % peak-throughput overhead of the tuning machinery,
//! which the paper reports but does not decompose.

use dynatune_core::invariant_violated;
use dynatune_simnet::SimTime;
use dynatune_stats::TimeSeries;
use std::collections::BTreeMap;
use std::time::Duration;

/// Per-action busy-time costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Handling one received protocol message.
    pub per_message_recv: Duration,
    /// Serializing/sending one protocol message.
    pub per_message_send: Duration,
    /// Full client-request handling on the leader (parse, propose, respond).
    pub per_request: Duration,
    /// Handling one log-free read (lease/ReadIndex path): parse, grant
    /// check, one ordered-map lookup, respond. Charged instead of
    /// `per_request` + `per_apply` + replication — a read that skips the
    /// log costs heartbeat-weight work, not append-weight work, which is
    /// exactly the throughput lever the read path exists to pull.
    pub per_read: Duration,
    /// Serializing one KiB of log-entry payload into an outgoing
    /// `AppendEntries` (rounded up per message). Charging replication by
    /// payload bytes rather than per entry is what lets group commit pay
    /// off honestly in the sim: coalescing many small proposals into one
    /// append costs the same bytes but saves the per-message overhead,
    /// exactly as on real hardware.
    pub per_append_kib: Duration,
    /// Applying one committed entry to the state machine.
    pub per_apply: Duration,
    /// Extra per protocol message when tuning is active (measurement
    /// bookkeeping in the hot path).
    pub tuning_per_message: Duration,
    /// Extra per client request when tuning is active (per-follower timer
    /// and tuning-state bookkeeping; calibrated to the paper's 6.4 % peak
    /// throughput overhead).
    pub tuning_per_request: Duration,
    /// Cost of servicing one timer wake-up (scheduler churn). Zero by
    /// default; the §IV-E consolidated-timer extension study sets it to
    /// expose the n−1-timers overhead the paper attributes to Dynatune.
    pub per_timer_wake: Duration,
    /// Serializing (sender) or installing (receiver) one KiB of snapshot
    /// state during an `InstallSnapshot` transfer — the size-aware part of
    /// the cost model: shipping a big store visibly occupies the CPU and
    /// delays request admission, unlike ordinary fixed-cost messages.
    pub per_snapshot_kib: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            per_message_recv: Duration::from_micros(150),
            per_message_send: Duration::from_micros(150),
            per_request: Duration::from_micros(250),
            per_read: Duration::from_micros(60),
            per_apply: Duration::from_micros(30),
            // ~30µs/KiB ≈ the retired 5µs-per-entry charge at the workload's
            // ~170-byte mean entry, keeping the Fig. 5 peak calibration.
            per_append_kib: Duration::from_micros(30),
            tuning_per_message: Duration::from_micros(15),
            tuning_per_request: Duration::from_micros(18),
            per_timer_wake: Duration::ZERO,
            per_snapshot_kib: Duration::from_micros(2),
        }
    }
}

impl CostModel {
    /// A zero-cost model (infinitely fast servers) for experiments where
    /// CPU effects are irrelevant (e.g. pure election timing studies).
    #[must_use]
    pub fn free() -> Self {
        Self {
            per_message_recv: Duration::ZERO,
            per_message_send: Duration::ZERO,
            per_request: Duration::ZERO,
            per_read: Duration::ZERO,
            per_apply: Duration::ZERO,
            per_append_kib: Duration::ZERO,
            tuning_per_message: Duration::ZERO,
            tuning_per_request: Duration::ZERO,
            per_timer_wake: Duration::ZERO,
            per_snapshot_kib: Duration::ZERO,
        }
    }

    /// Busy time to serialize or install a snapshot of `bytes` (size-aware
    /// transfer modeling; rounds up to whole KiB).
    #[must_use]
    pub fn snapshot_cost(&self, bytes: usize) -> Duration {
        self.per_snapshot_kib * kib_factor(bytes)
    }

    /// Busy time to serialize `bytes` of entry payload into one outgoing
    /// `AppendEntries` (rounds up to whole KiB; an empty append charges
    /// nothing beyond `per_message_send`).
    #[must_use]
    pub fn append_cost(&self, bytes: usize) -> Duration {
        self.per_append_kib * kib_factor(bytes)
    }
}

/// Whole-KiB multiplier for byte-sized costs. `Duration * u32` is the only
/// multiply std offers, so saturate rather than silently truncate a
/// (physically impossible) 4 TiB payload.
fn kib_factor(bytes: usize) -> u32 {
    u32::try_from(bytes.div_ceil(1024)).unwrap_or(u32::MAX)
}

/// Multi-core busy-time meter with windowed utilization reporting.
#[derive(Debug, Clone)]
pub struct CpuMeter {
    /// Next-free instant per virtual core.
    cores: Vec<SimTime>,
    window: Duration,
    /// Busy seconds per window index.
    window_busy: BTreeMap<u64, f64>,
    total_busy: Duration,
}

impl CpuMeter {
    /// Create a meter with `cores` virtual cores and the given utilization
    /// sampling window (the paper samples every 5 s).
    #[must_use]
    pub fn new(cores: usize, window: Duration) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(window > Duration::ZERO, "zero sampling window");
        Self {
            cores: vec![SimTime::ZERO; cores],
            window,
            window_busy: BTreeMap::new(),
            total_busy: Duration::ZERO,
        }
    }

    /// Charge `cost` of busy time starting no earlier than `now` on the
    /// least-loaded core. Returns the completion instant (used to delay
    /// request admission under load).
    pub fn charge(&mut self, now: SimTime, cost: Duration) -> SimTime {
        if cost.is_zero() {
            return now;
        }
        // Pick the earliest-free core.
        let earliest = self.cores.iter().enumerate().min_by_key(|(_, &t)| t);
        let Some((idx, &free_at)) = earliest else {
            invariant_violated!("CpuMeter has no cores — `new` asserts at least one");
        };
        let start = free_at.max(now);
        let end = start + cost;
        self.cores[idx] = end;
        self.total_busy += cost;
        self.attribute(start, end);
        end
    }

    /// Spread the busy interval across utilization windows.
    fn attribute(&mut self, start: SimTime, end: SimTime) {
        let w = self.window.as_secs_f64();
        let mut t = start.as_secs_f64();
        let end_s = end.as_secs_f64();
        while t < end_s {
            let widx = (t / w) as u64;
            let wend = (widx + 1) as f64 * w;
            let slice = end_s.min(wend) - t;
            *self.window_busy.entry(widx).or_insert(0.0) += slice;
            t = wend;
        }
    }

    /// The instant the least-loaded core becomes free.
    #[must_use]
    pub fn earliest_free(&self) -> SimTime {
        // `new` asserts at least one core; an (impossible) empty meter is
        // never busy, so "free immediately" is the graceful answer.
        self.cores.iter().min().copied().unwrap_or(SimTime::ZERO)
    }

    /// Cumulative busy time.
    #[must_use]
    pub fn total_busy(&self) -> Duration {
        self.total_busy
    }

    /// Utilization time series in percent of one core (docker-stats style:
    /// up to `cores * 100`). One point per window, at the window start, in
    /// seconds.
    #[must_use]
    pub fn utilization_series(&self) -> TimeSeries {
        let mut ts = TimeSeries::new();
        let w = self.window.as_secs_f64();
        for (&widx, &busy) in &self.window_busy {
            ts.push(widx as f64 * w, busy / w * 100.0);
        }
        ts
    }

    /// Mean utilization (percent of one core) over `[from, to)`.
    #[must_use]
    pub fn mean_utilization(&self, from: SimTime, to: SimTime) -> f64 {
        let w = self.window.as_secs_f64();
        let lo = (from.as_secs_f64() / w) as u64;
        let hi = (to.as_secs_f64() / w).ceil() as u64;
        if hi <= lo {
            return 0.0;
        }
        let busy: f64 = (lo..hi)
            .map(|i| self.window_busy.get(&i).copied().unwrap_or(0.0))
            .sum();
        busy / ((hi - lo) as f64 * w) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn zero_cost_is_instant() {
        let mut m = CpuMeter::new(2, Duration::from_secs(5));
        assert_eq!(m.charge(ms(10), Duration::ZERO), ms(10));
        assert_eq!(m.total_busy(), Duration::ZERO);
    }

    #[test]
    fn idle_core_completes_after_cost() {
        let mut m = CpuMeter::new(1, Duration::from_secs(5));
        let end = m.charge(ms(100), Duration::from_millis(10));
        assert_eq!(end, ms(110));
    }

    #[test]
    fn saturated_core_queues() {
        let mut m = CpuMeter::new(1, Duration::from_secs(5));
        let a = m.charge(ms(0), Duration::from_millis(30));
        let b = m.charge(ms(0), Duration::from_millis(30));
        assert_eq!(a, ms(30));
        assert_eq!(b, ms(60), "second job waits for the first");
    }

    #[test]
    fn two_cores_run_in_parallel() {
        let mut m = CpuMeter::new(2, Duration::from_secs(5));
        let a = m.charge(ms(0), Duration::from_millis(30));
        let b = m.charge(ms(0), Duration::from_millis(30));
        let c = m.charge(ms(0), Duration::from_millis(30));
        assert_eq!(a, ms(30));
        assert_eq!(b, ms(30), "second core absorbs the second job");
        assert_eq!(c, ms(60), "third job queues behind the first");
    }

    #[test]
    fn utilization_window_accounting() {
        let mut m = CpuMeter::new(2, Duration::from_secs(5));
        // 2 seconds of busy inside window 0 (two cores, 1s each).
        m.charge(ms(0), Duration::from_secs(1));
        m.charge(ms(0), Duration::from_secs(1));
        let ts = m.utilization_series();
        assert_eq!(ts.points().len(), 1);
        let (t, pct) = ts.points()[0];
        assert_eq!(t, 0.0);
        assert!((pct - 40.0).abs() < 1e-9, "2 busy-sec / 5s = 40%: {pct}");
    }

    #[test]
    fn busy_interval_spans_windows() {
        let mut m = CpuMeter::new(1, Duration::from_secs(5));
        // 4s of work starting at t=3s: 2s in window 0, 2s in window 1.
        m.charge(SimTime::from_secs(3), Duration::from_secs(4));
        let ts = m.utilization_series();
        let pts = ts.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 40.0).abs() < 1e-9);
        assert!((pts[1].1 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_capped_by_core_count() {
        let mut m = CpuMeter::new(2, Duration::from_secs(5));
        // Offer far more work than 2 cores can do in the first window.
        for _ in 0..100 {
            m.charge(ms(0), Duration::from_millis(500));
        }
        let ts = m.utilization_series();
        // Every window's utilization is at most 200%.
        for &(_, pct) in ts.points() {
            assert!(pct <= 200.0 + 1e-9, "window exceeded 2 cores: {pct}");
        }
        // And the first windows are fully saturated.
        assert!((ts.points()[0].1 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn mean_utilization_over_range() {
        let mut m = CpuMeter::new(1, Duration::from_secs(5));
        m.charge(ms(0), Duration::from_secs(5)); // window 0 fully busy
        assert!((m.mean_utilization(SimTime::ZERO, SimTime::from_secs(5)) - 100.0).abs() < 1e-9);
        assert!((m.mean_utilization(SimTime::ZERO, SimTime::from_secs(10)) - 50.0).abs() < 1e-9);
        assert_eq!(
            m.mean_utilization(SimTime::from_secs(5), SimTime::from_secs(5)),
            0.0
        );
    }

    #[test]
    fn default_cost_model_scale_check() {
        // Sanity-check the calibration story: 64 followers at 20ms cadence
        // (Fix-K at Et=200ms) cost the leader ~96% of one core per second.
        let c = CostModel::default();
        let msgs_per_sec = 64.0 * 50.0 * 2.0; // sends + receipts
        let busy = msgs_per_sec
            * (c.per_message_send.as_secs_f64() + c.per_message_recv.as_secs_f64())
            / 2.0;
        assert!(busy > 0.8 && busy < 1.2, "Fix-K N=65 leader busy {busy}/s");
        // And a request costs ~300µs all-in, so 4 cores peak near 13k req/s.
        // Replication is charged by payload bytes: a ~176-byte workload
        // entry serialized to 4 followers.
        let entry_bytes = 176.0;
        let per_req = c.per_request.as_secs_f64()
            + c.per_apply.as_secs_f64()
            + 4.0 * (entry_bytes / 1024.0) * c.per_append_kib.as_secs_f64();
        let peak = 4.0 / per_req;
        assert!(peak > 10_000.0 && peak < 16_000.0, "peak {peak}");
    }

    #[test]
    fn append_cost_rounds_up_per_message_and_rewards_batching() {
        let c = CostModel::default();
        assert_eq!(c.append_cost(0), Duration::ZERO, "empty append is free");
        assert_eq!(c.append_cost(1), c.per_append_kib);
        assert_eq!(c.append_cost(4096), c.per_append_kib * 4);
        // One 64-entry group commit costs far less than 64 lone appends of
        // the same payload (the per-message KiB round-up amortizes).
        assert!(c.append_cost(64 * 176) < c.append_cost(176) * 64);
    }
}
