//! Ablation studies over Dynatune's design knobs (our additions beyond the
//! paper's figures; DESIGN.md lists them as the "design choices" index).
//!
//! * [`quantization`] — etcd tick-quantized timers vs. continuous timers:
//!   how much of the measured detection time is quantization.
//! * [`safety_factor`] — sweep `s` in `Et = µ + s·σ`: detection time vs.
//!   false-timeout rate under jitter (the paper fixes s = 2).
//! * [`arrival_probability`] — sweep `x`: resulting K/h under a fixed loss
//!   rate (paper fixes x = 0.999).
//! * [`min_list_size`] — warm-up latency until tuned parameters engage.
//! * [`transport`] — UDP vs. TCP heartbeats under loss: measured loss rate
//!   visibility (the paper's §III-E motivation for the hybrid transport).

use crate::experiments::failover::{run_trials, FailoverConfig};
use crate::scenario::{Horizon, NetPlan, ScenarioBuilder, ScenarioDriver};
use dynatune_core::{required_heartbeats, TuningConfig};
use dynatune_raft::TimerQuantization;
use dynatune_simnet::{NetParams, SimTime};
use std::time::Duration;

/// One row of the quantization ablation.
#[derive(Debug, Clone, Copy)]
pub struct QuantizationRow {
    /// Which quantization was used.
    pub quantization: TimerQuantization,
    /// Mean detection time (ms).
    pub detection_ms: f64,
    /// Mean OTS time (ms).
    pub ots_ms: f64,
}

/// Compare tick-quantized vs. continuous election timers for Dynatune.
#[must_use]
pub fn quantization(trials: usize, seed: u64) -> Vec<QuantizationRow> {
    [TimerQuantization::Tick, TimerQuantization::Continuous]
        .into_iter()
        .map(|q| {
            let cluster = ScenarioBuilder::cluster(5)
                .tuning(TuningConfig::dynatune())
                .quantization(q)
                .seed(seed)
                .build();
            let res = run_trials(&FailoverConfig::new(cluster, trials));
            QuantizationRow {
                quantization: q,
                detection_ms: res.detection_stats().mean(),
                ots_ms: res.ots_stats().mean(),
            }
        })
        .collect()
}

/// One row of the safety-factor sweep.
#[derive(Debug, Clone, Copy)]
pub struct SafetyFactorRow {
    /// The safety factor `s`.
    pub s: f64,
    /// Mean detection time under failure (ms).
    pub detection_ms: f64,
    /// False election-timer expiries per minute in failure-free operation
    /// under jitter.
    pub false_timeouts_per_min: f64,
}

/// Sweep `s`: smaller s detects faster but risks false timeouts under
/// jitter — the trade-off §III-D1 describes. Both measurements run on a
/// jittery network (cv = 0.2), where σ_RTT is large enough that `s·σ`
/// actually moves Et: on a jitter-free link every `s` collapses to
/// `Et ≈ µ` and the sweep is flat.
#[must_use]
pub fn safety_factor(values: &[f64], trials: usize, seed: u64) -> Vec<SafetyFactorRow> {
    let jitter_net =
        || NetPlan::uniform(NetParams::clean(Duration::from_millis(100)).with_jitter(0.2));
    values
        .iter()
        .map(|&s| {
            let tuning = TuningConfig {
                safety_factor: s,
                ..TuningConfig::dynatune()
            };
            // Detection under failure, jittery network.
            let cluster = ScenarioBuilder::cluster(5)
                .tuning(tuning)
                .net(jitter_net())
                .seed(seed)
                .build();
            let res = run_trials(&FailoverConfig::new(cluster, trials));
            // False-timeout rate without failures under the same jitter.
            let jitter_cfg = ScenarioBuilder::cluster(5)
                .tuning(tuning)
                .net(jitter_net())
                .seed(seed ^ 0x1177)
                .build();
            let horizon = SimTime::from_secs(300);
            let run = ScenarioDriver::new(jitter_cfg)
                .horizon(Horizon::At(Duration::from_secs(300)))
                .run();
            let events = run.sim.events();
            let false_timeouts =
                crate::observers::count_events(&events, SimTime::from_secs(10), horizon, |e| {
                    matches!(e, dynatune_raft::RaftEvent::ElectionTimeout { .. })
                });
            SafetyFactorRow {
                s,
                detection_ms: res.detection_stats().mean(),
                false_timeouts_per_min: false_timeouts as f64 / ((300.0 - 10.0) / 60.0),
            }
        })
        .collect()
}

/// One row of the arrival-probability sweep (pure formula, no simulation —
/// the mapping x → K → h is deterministic).
#[derive(Debug, Clone, Copy)]
pub struct ArrivalProbabilityRow {
    /// Target arrival probability x.
    pub x: f64,
    /// Required heartbeats K at the given loss rate.
    pub k: u32,
    /// Resulting h for Et = 200 ms (ms).
    pub h_ms: f64,
}

/// Sweep `x` at a fixed loss rate.
#[must_use]
pub fn arrival_probability(values: &[f64], loss: f64) -> Vec<ArrivalProbabilityRow> {
    values
        .iter()
        .map(|&x| {
            let k = required_heartbeats(loss, x, 100);
            ArrivalProbabilityRow {
                x,
                k,
                h_ms: 200.0 / f64::from(k),
            }
        })
        .collect()
}

/// One row of the warm-up sweep.
#[derive(Debug, Clone, Copy)]
pub struct WarmupRow {
    /// minListSize under test.
    pub min_list_size: usize,
    /// Seconds from leader election until the follower tuners engaged.
    pub warmup_secs: f64,
}

/// Sweep `minListSize`: how long after a leader change Dynatune runs on
/// conservative defaults.
#[must_use]
pub fn min_list_size(values: &[usize], seed: u64) -> Vec<WarmupRow> {
    values
        .iter()
        .map(|&m| {
            let tuning = TuningConfig {
                min_list_size: m,
                max_list_size: 1000.max(m),
                ..TuningConfig::dynatune()
            };
            // Custom convergence predicate (first time all followers are
            // warmed), so this one keeps its own polling loop instead of
            // the driver's fixed-cadence sampler.
            let mut sim = ScenarioBuilder::cluster(5)
                .tuning(tuning)
                .seed(seed)
                .build_sim();
            // Find when the first leader appears, then when all followers
            // are warmed.
            let mut leader_at = None;
            let mut warmed_at = None;
            let horizon = SimTime::from_secs(600);
            let mut t = SimTime::ZERO;
            while t < horizon && warmed_at.is_none() {
                t += Duration::from_millis(500);
                sim.run_until(t);
                if let Some(leader) = sim.leader() {
                    leader_at.get_or_insert(t);
                    let all_warmed = (0..5)
                        .filter(|&i| i != leader)
                        .all(|i| sim.tuning_snapshot(i).warmed);
                    if all_warmed {
                        warmed_at = Some(t);
                    }
                }
            }
            let warmup_secs = match (leader_at, warmed_at) {
                (Some(l), Some(w)) => (w - l).as_secs_f64(),
                _ => f64::NAN,
            };
            WarmupRow {
                min_list_size: m,
                warmup_secs,
            }
        })
        .collect()
}

/// One row of the pre-vote ablation.
#[derive(Debug, Clone, Copy)]
pub struct PreVoteRow {
    /// Whether pre-vote ran.
    pub pre_vote: bool,
    /// Out-of-service seconds during the radical RTT step.
    pub total_ots_secs: f64,
    /// Election-timer expiries (false detections at the step).
    pub timeouts: usize,
    /// Completed leader changes (disruptions).
    pub leader_changes: usize,
}

/// Dynatune with and without the pre-vote phase under the Fig. 6b radical
/// RTT step. The paper's "false detection without OTS" behaviour depends on
/// pre-candidates aborting on leader contact *before* bumping the term;
/// without pre-vote, every false detection becomes a real term bump that
/// deposes the healthy leader.
#[must_use]
pub fn pre_vote(seed: u64) -> Vec<PreVoteRow> {
    use crate::experiments::rtt_fluctuation::{self, RttFlucConfig, RttPattern};
    [true, false]
        .into_iter()
        .map(|pv| {
            let mut cfg = RttFlucConfig::new(TuningConfig::dynatune(), RttPattern::Radical, seed);
            cfg.pre_vote = pv;
            let s = rtt_fluctuation::run(&cfg);
            PreVoteRow {
                pre_vote: pv,
                total_ots_secs: s.total_ots_secs,
                timeouts: s.timeouts_observed,
                leader_changes: s.leader_changes,
            }
        })
        .collect()
}

/// One row of the transport ablation.
#[derive(Debug, Clone, Copy)]
pub struct TransportRow {
    /// True when heartbeats ride UDP (the paper's hybrid transport).
    pub udp_heartbeats: bool,
    /// Loss rate the followers' estimators measured.
    pub measured_loss: f64,
    /// Mean tuned heartbeat interval (ms).
    pub h_ms: f64,
}

/// UDP vs. TCP heartbeats under 15 % loss: over TCP, losses are hidden by
/// retransmission, so the follower's loss estimator sees ~0 and the tuned
/// h stays large — the measurement motivation for §III-E.
#[must_use]
pub fn transport(seed: u64) -> Vec<TransportRow> {
    [true, false]
        .into_iter()
        .map(|udp| {
            let cluster = ScenarioBuilder::cluster(5)
                .tuning(TuningConfig::dynatune())
                .net(NetPlan::uniform(
                    NetParams::clean(Duration::from_millis(100)).with_loss(0.15),
                ))
                .udp_heartbeats(udp)
                .seed(seed)
                .build();
            let run = ScenarioDriver::new(cluster)
                .horizon(Horizon::At(Duration::from_secs(120)))
                .run();
            let sim = run.sim;
            let leader = sim.leader().unwrap_or(0);
            let mut loss_sum = 0.0;
            let mut n = 0.0;
            for id in 0..5 {
                if id != leader {
                    loss_sum += sim.tuning_snapshot(id).loss_rate;
                    n += 1.0;
                }
            }
            let h = sim
                .leader_mean_heartbeat_interval()
                .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
            TransportRow {
                udp_heartbeats: udp,
                measured_loss: loss_sum / n,
                h_ms: h,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_probability_rows_are_monotone() {
        let rows = arrival_probability(&[0.9, 0.99, 0.999, 0.9999], 0.2);
        assert_eq!(rows.len(), 4);
        for pair in rows.windows(2) {
            assert!(pair[1].k >= pair[0].k, "stricter x needs more heartbeats");
            assert!(pair[1].h_ms <= pair[0].h_ms);
        }
        // x=0.999, p=0.2: K = ceil(ln(0.001)/ln(0.2)) = ceil(4.29) = 5.
        assert_eq!(rows[2].k, 5);
    }

    #[test]
    fn transport_ablation_shows_tcp_hiding_loss() {
        let rows = transport(77);
        let udp = rows.iter().find(|r| r.udp_heartbeats).unwrap();
        let tcp = rows.iter().find(|r| !r.udp_heartbeats).unwrap();
        // UDP heartbeats expose the true ~15% loss; TCP hides it.
        assert!(
            udp.measured_loss > 0.08,
            "udp measured {}",
            udp.measured_loss
        );
        assert!(
            tcp.measured_loss < 0.05,
            "tcp measured {}",
            tcp.measured_loss
        );
        // Hence UDP tunes a smaller h (more heartbeats) than TCP.
        assert!(udp.h_ms < tcp.h_ms, "udp {} vs tcp {}", udp.h_ms, tcp.h_ms);
    }

    #[test]
    fn min_list_size_warmup_grows() {
        let rows = min_list_size(&[10, 100], 5);
        assert!(rows[0].warmup_secs.is_finite());
        assert!(rows[1].warmup_secs > rows[0].warmup_secs);
    }

    #[test]
    fn pre_vote_prevents_step_disruption() {
        let rows = pre_vote(9);
        let on = rows.iter().find(|r| r.pre_vote).unwrap();
        let off = rows.iter().find(|r| !r.pre_vote).unwrap();
        assert_eq!(on.leader_changes, 0, "pre-vote absorbs false detections");
        assert_eq!(on.total_ots_secs, 0.0);
        assert!(
            off.leader_changes > 0 || off.total_ots_secs > 0.0,
            "without pre-vote the step should disrupt: {off:?}"
        );
    }
}
