//! Repeated leader-failure trials: detection and OTS time distributions
//! (paper Fig. 4 on a uniform mesh, Fig. 8 on the geo topology).
//!
//! Each trial builds a fresh cluster with a derived seed, lets it elect a
//! leader and (for tuning modes) warm up the estimators, pauses the leader
//! at a random phase within the heartbeat cycle, and extracts detection and
//! OTS times from the event log — exactly the paper's §IV-B1 procedure
//! (1000 intentional leader failures, means and CDFs reported). The
//! injection itself is a one-event declarative [`FaultPlan`] (pause the
//! leader after warm-up, phase-jittered) executed by the
//! [scenario driver](crate::scenario::ScenarioDriver). Trials run in
//! parallel with rayon — capped by any installed thread pool, see
//! [`RunCtx::run`](crate::scenario::RunCtx::run) — and every trial is
//! deterministic in its seed, so any `--jobs` value merges to identical
//! results.

use crate::observers::extract_failover;
use crate::scenario::{FaultPlan, Horizon, ScenarioDriver};
use crate::sim::ClusterConfig;
use dynatune_simnet::rng::splitmix64;
use dynatune_stats::{EmpiricalCdf, OnlineStats};
use rayon::prelude::*;
use std::time::Duration;

/// Configuration of a failover study.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// The cluster to study (workload-free).
    pub cluster: ClusterConfig,
    /// Settle/warm-up time before injecting the failure.
    pub warmup: Duration,
    /// Number of independent trials.
    pub trials: usize,
    /// Observation window after the failure.
    pub observe: Duration,
}

impl FailoverConfig {
    /// Paper defaults: 30 s warm-up, 30 s observation.
    #[must_use]
    pub fn new(cluster: ClusterConfig, trials: usize) -> Self {
        Self {
            cluster,
            warmup: Duration::from_secs(30),
            trials,
            observe: Duration::from_secs(30),
        }
    }
}

/// Outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// Trial index.
    pub trial: usize,
    /// Failure → first election-timer expiry (ms).
    pub detection_ms: f64,
    /// Failure → new leader (ms). The paper's OTS time.
    pub ots_ms: f64,
    /// randomizedTimeout that expired at detection (ms).
    pub rto_at_detection_ms: f64,
    /// Mean randomizedTimeout across live followers just before failure
    /// (the paper's "mean randomizedTimeout at the time of detection").
    pub mean_rto_before_ms: f64,
}

/// Aggregated study result.
#[derive(Debug, Clone)]
pub struct FailoverResult {
    /// Per-trial outcomes (successful trials only).
    pub outcomes: Vec<TrialOutcome>,
    /// Trials that failed to produce a failover within the window.
    pub incomplete: usize,
}

impl FailoverResult {
    /// Detection-time statistics (ms).
    #[must_use]
    pub fn detection_stats(&self) -> OnlineStats {
        OnlineStats::from_slice(
            &self
                .outcomes
                .iter()
                .map(|o| o.detection_ms)
                .collect::<Vec<_>>(),
        )
    }

    /// OTS-time statistics (ms).
    #[must_use]
    pub fn ots_stats(&self) -> OnlineStats {
        OnlineStats::from_slice(&self.outcomes.iter().map(|o| o.ots_ms).collect::<Vec<_>>())
    }

    /// Mean randomizedTimeout before failure (ms).
    #[must_use]
    pub fn mean_rto_ms(&self) -> f64 {
        OnlineStats::from_slice(
            &self
                .outcomes
                .iter()
                .map(|o| o.mean_rto_before_ms)
                .collect::<Vec<_>>(),
        )
        .mean()
    }

    /// Election time = OTS − detection (ms), the §IV-E decomposition.
    #[must_use]
    pub fn election_time_ms(&self) -> f64 {
        self.ots_stats().mean() - self.detection_stats().mean()
    }

    /// CDF of detection times.
    #[must_use]
    pub fn detection_cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf::new(self.outcomes.iter().map(|o| o.detection_ms).collect())
    }

    /// CDF of OTS times.
    #[must_use]
    pub fn ots_cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf::new(self.outcomes.iter().map(|o| o.ots_ms).collect())
    }
}

/// Derive the cluster config of one trial: an independent seed per trial
/// index, everything else shared.
#[must_use]
pub fn trial_config(cfg: &FailoverConfig, trial: usize) -> ClusterConfig {
    let mut cluster_cfg = cfg.cluster.clone();
    let mut seed = cfg.cluster.seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    cluster_cfg.seed = splitmix64(&mut seed);
    cluster_cfg
}

/// Run one trial; `None` when no leader emerged or no failover completed.
#[must_use]
pub fn run_single_trial(cfg: &FailoverConfig, trial: usize) -> Option<TrialOutcome> {
    // One declarative event: pause the leader after warm-up, at a random
    // phase within ~1 heartbeat cycle, so the paper's phase-averaging over
    // 1000 failures is reproduced; observe for `cfg.observe` afterwards.
    let plan = FaultPlan::new().pause_leader(cfg.warmup, Duration::from_secs(1));
    let run = ScenarioDriver::new(trial_config(cfg, trial))
        .plan(plan)
        .horizon(Horizon::AfterLastFault(cfg.observe))
        .run();
    let fault = run.first_fault()?;
    let leader = fault.targets[0];
    let times = extract_failover(&run.sim.events(), fault.at, leader);
    let (detection, ots) = (times.detection?, times.ots?);
    Some(TrialOutcome {
        trial,
        detection_ms: detection.as_secs_f64() * 1e3,
        ots_ms: ots.as_secs_f64() * 1e3,
        rto_at_detection_ms: times.detection_rto_ms.unwrap_or(f64::NAN),
        mean_rto_before_ms: fault.mean_rto_before_ms(Some(leader)),
    })
}

/// Run the full study, trials in parallel.
#[must_use]
pub fn run_trials(cfg: &FailoverConfig) -> FailoverResult {
    let results: Vec<Option<TrialOutcome>> = (0..cfg.trials)
        .into_par_iter()
        .map(|trial| run_single_trial(cfg, trial))
        .collect();
    let incomplete = results.iter().filter(|r| r.is_none()).count();
    FailoverResult {
        outcomes: results.into_iter().flatten().collect(),
        incomplete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_core::TuningConfig;

    fn quick_cfg(tuning: TuningConfig, trials: usize) -> FailoverConfig {
        let cluster = ClusterConfig::stable(5, tuning, Duration::from_millis(100), 99);
        FailoverConfig {
            cluster,
            warmup: Duration::from_secs(20),
            trials,
            observe: Duration::from_secs(20),
        }
    }

    #[test]
    fn raft_failover_times_match_paper_scale() {
        let res = run_trials(&quick_cfg(TuningConfig::raft_default(), 12));
        assert!(res.outcomes.len() >= 10, "incomplete: {}", res.incomplete);
        let det = res.detection_stats().mean();
        let ots = res.ots_stats().mean();
        // Paper: detection ≈ 1205 ms, OTS ≈ 1449 ms. Shape check: detection
        // within [900, 1700], OTS above detection.
        assert!((900.0..1700.0).contains(&det), "raft detection {det}ms");
        assert!(ots > det, "ots {ots} > detection {det}");
        // Mean randomizedTimeout ~1.5 Et = 1500ms (paper: 1454 ms).
        let rto = res.mean_rto_ms();
        assert!((1300.0..1700.0).contains(&rto), "raft rto {rto}ms");
    }

    #[test]
    fn dynatune_detects_much_faster_than_raft() {
        let raft = run_trials(&quick_cfg(TuningConfig::raft_default(), 12));
        let dt = run_trials(&quick_cfg(TuningConfig::dynatune(), 12));
        assert!(dt.outcomes.len() >= 10, "incomplete: {}", dt.incomplete);
        let raft_det = raft.detection_stats().mean();
        let dt_det = dt.detection_stats().mean();
        // Paper: 80% reduction. Accept anything beyond 50% for a smoke test.
        assert!(
            dt_det < raft_det * 0.5,
            "dynatune {dt_det}ms vs raft {raft_det}ms"
        );
        // Dynatune OTS also improves (paper: 45%).
        assert!(dt.ots_stats().mean() < raft.ots_stats().mean());
        // Dynatune's randomizedTimeout reflects the tuned Et (~100-200ms).
        let rto = dt.mean_rto_ms();
        assert!((100.0..350.0).contains(&rto), "dynatune rto {rto}ms");
    }

    #[test]
    fn trials_are_deterministic() {
        let cfg = quick_cfg(TuningConfig::dynatune(), 3);
        let a = run_single_trial(&cfg, 1);
        let b = run_single_trial(&cfg, 1);
        assert_eq!(a, b);
    }
}
