//! Packet-loss adaptivity of the heartbeat interval (paper Fig. 7, §IV-C2).
//!
//! RTT fixed at 200 ms; the loss rate climbs 0→30 % in 5-point steps and
//! back down, each level held (paper: 3 minutes). Dynatune (h = Et/K(p,x))
//! is compared against Fix-K (K = 10). We record the leader's mean applied
//! heartbeat interval and the CPU utilization of the leader and one
//! follower in 5 s windows (docker-stats style, 2-core cap → 200 %).

use crate::scenario::{Horizon, NetPlan, ScenarioBuilder, ScenarioDriver};
use dynatune_core::TuningConfig;
use dynatune_simnet::{LinkSchedule, NetParams, SimTime};
use dynatune_stats::TimeSeries;
use std::time::Duration;

/// Configuration of a loss-fluctuation run.
#[derive(Debug, Clone)]
pub struct LossFlucConfig {
    /// Cluster size (paper: 5, 17, 65).
    pub n: usize,
    /// The system under test (Dynatune or Fix-K; both tune Et).
    pub tuning: TuningConfig,
    /// Loss levels on the way up (mirrored down, peak not repeated).
    pub levels: Vec<f64>,
    /// Hold per level (paper: 180 s).
    pub hold: Duration,
    /// Fixed base RTT (paper: 200 ms).
    pub rtt: Duration,
    /// Cores per server (paper: 2 for this experiment).
    pub cores: usize,
    /// Sampling interval for h (paper samples performance every 5 s).
    pub sample_every: Duration,
    /// Master seed.
    pub seed: u64,
}

impl LossFlucConfig {
    /// Paper defaults for the given size and system.
    #[must_use]
    pub fn new(n: usize, tuning: TuningConfig, seed: u64) -> Self {
        Self {
            n,
            tuning,
            levels: vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30],
            hold: Duration::from_secs(180),
            rtt: Duration::from_millis(200),
            cores: 2,
            sample_every: Duration::from_secs(5),
            seed,
        }
    }

    /// Total experiment duration.
    #[must_use]
    pub fn duration(&self) -> Duration {
        LinkSchedule::staircase_duration(self.levels.len(), self.hold)
    }
}

/// Output series of one run.
#[derive(Debug, Clone)]
pub struct LossFlucSeries {
    /// `(t_secs, leader mean heartbeat interval ms)` samples.
    pub h_ms: Vec<(f64, f64)>,
    /// `(t_secs, loss rate)` of the schedule at each sample.
    pub loss: Vec<(f64, f64)>,
    /// Leader CPU utilization series (percent of one core, 5 s windows).
    pub leader_cpu: TimeSeries,
    /// One follower's CPU utilization series.
    pub follower_cpu: TimeSeries,
    /// Elections (BecameLeader) after warm-up — the paper reports zero
    /// unnecessary elections for both systems.
    pub elections_after_warmup: usize,
    /// The node that led during the run.
    pub leader: usize,
}

/// Run one loss-fluctuation experiment.
#[must_use]
pub fn run(cfg: &LossFlucConfig) -> LossFlucSeries {
    let base = NetParams::clean(cfg.rtt).with_jitter(0.03);
    let schedule = LinkSchedule::loss_staircase(base, &cfg.levels, cfg.hold);
    let cluster_cfg = ScenarioBuilder::cluster(cfg.n)
        .tuning(cfg.tuning)
        .net(NetPlan::uniform_schedule(schedule))
        .cores(cfg.cores)
        .seed(cfg.seed)
        .build();
    let run = ScenarioDriver::new(cluster_cfg)
        .sample_every(cfg.sample_every)
        .horizon(Horizon::At(cfg.duration()))
        .run();

    let horizon = run.horizon;
    let mut h_ms = Vec::new();
    let mut loss = Vec::new();
    for s in &run.samples {
        if let Some(h) = s.leader_mean_h_ms {
            h_ms.push((s.t.as_secs_f64(), h));
        }
        loss.push((s.t.as_secs_f64(), s.loss));
    }
    let sim = run.sim;
    let leader = sim.leader().unwrap_or(0);
    let follower = (0..cfg.n).find(|&i| i != leader).unwrap_or(0);
    let leader_cpu = sim.with_server(leader, |s| s.cpu().utilization_series());
    let follower_cpu = sim.with_server(follower, |s| s.cpu().utilization_series());
    let events = sim.events();
    let elections_after_warmup =
        crate::observers::count_events(&events, SimTime::from_secs(10), horizon, |e| {
            matches!(e, dynatune_raft::RaftEvent::BecameLeader { .. })
        });
    LossFlucSeries {
        h_ms,
        loss,
        leader_cpu,
        follower_cpu,
        elections_after_warmup,
        leader,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n: usize, mut tuning: TuningConfig, seed: u64) -> LossFlucSeries {
        // Shrink holds for test speed; shrink the id window accordingly so
        // the loss estimate's recovery lag (window × h) fits the shrunk
        // schedule, preserving the paper-scale dynamics.
        tuning.max_list_size = 200;
        let mut cfg = LossFlucConfig::new(n, tuning, seed);
        cfg.hold = Duration::from_secs(20);
        run(&cfg)
    }

    #[test]
    fn dynatune_shrinks_h_under_loss_and_recovers() {
        let s = quick(5, TuningConfig::dynatune(), 31);
        assert!(!s.h_ms.is_empty());
        // Partition samples into the clean head, the lossy middle and the
        // clean tail.
        let dur = 20.0 * 13.0;
        let head: Vec<f64> = s
            .h_ms
            .iter()
            .filter(|(t, _)| *t > 10.0 && *t < 20.0)
            .map(|&(_, h)| h)
            .collect();
        let mid: Vec<f64> = s
            .h_ms
            .iter()
            .filter(|(t, _)| *t > dur / 2.0 - 10.0 && *t < dur / 2.0 + 10.0)
            .map(|&(_, h)| h)
            .collect();
        let tail: Vec<f64> = s
            .h_ms
            .iter()
            .filter(|(t, _)| *t > dur - 15.0)
            .map(|&(_, h)| h)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        // Clean network: K=1 ⇒ h ≈ Et ≈ 200ms.
        assert!(mean(&head) > 120.0, "head h {}", mean(&head));
        // 30% loss: K=6 ⇒ h ≈ Et/6 ≈ 35ms.
        assert!(
            mean(&mid) < mean(&head) / 3.0,
            "mid {} vs head {}",
            mean(&mid),
            mean(&head)
        );
        // Recovery at the end.
        assert!(
            mean(&tail) > mean(&mid) * 2.0,
            "tail {} vs mid {}",
            mean(&tail),
            mean(&mid)
        );
    }

    #[test]
    fn fix_k_holds_the_ratio() {
        let s = quick(5, TuningConfig::fix_k(10), 32);
        // Fix-K: h = Et/10 ≈ 20ms regardless of loss.
        let hs: Vec<f64> = s.h_ms.iter().skip(5).map(|&(_, h)| h).collect();
        let mean = hs.iter().sum::<f64>() / hs.len() as f64;
        assert!((10.0..40.0).contains(&mean), "fix-k mean h {mean}");
        // Flat: no sample deviates wildly from the mean.
        let max = hs.iter().copied().fold(0.0, f64::max);
        assert!(max < mean * 2.5, "fix-k h spiked to {max}");
    }

    #[test]
    fn fix_k_leader_burns_more_cpu_than_dynatune() {
        let dt = quick(9, TuningConfig::dynatune(), 33);
        let fk = quick(9, TuningConfig::fix_k(10), 33);
        let mean_cpu = |ts: &TimeSeries| {
            let pts = ts.points();
            pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len().max(1) as f64
        };
        let dt_cpu = mean_cpu(&dt.leader_cpu);
        let fk_cpu = mean_cpu(&fk.leader_cpu);
        assert!(
            fk_cpu > dt_cpu * 1.5,
            "fix-k leader {fk_cpu}% vs dynatune {dt_cpu}%"
        );
        // Followers are cheap for both.
        let dt_f = mean_cpu(&dt.follower_cpu);
        assert!(dt_f < dt_cpu + 5.0, "follower {dt_f}% leader {dt_cpu}%");
    }

    #[test]
    fn no_unnecessary_elections() {
        let s = quick(5, TuningConfig::dynatune(), 34);
        assert_eq!(
            s.elections_after_warmup, 0,
            "loss adaptation must not trigger elections"
        );
    }
}
