//! The paper's experiments (§IV), one module per figure.
//!
//! | Module | Paper | What it regenerates |
//! |--------|-------|---------------------|
//! | [`failover`] | Fig. 4, Fig. 8 | detection/OTS CDFs over repeated leader pauses |
//! | [`throughput`] | Fig. 5 | latency-vs-throughput curve, peak throughput |
//! | [`rtt_fluctuation`] | Fig. 6a/6b | randomizedTimeout / RTT / OTS time series |
//! | [`loss_fluctuation`] | Fig. 7a/7b | heartbeat interval + CPU series under loss ramps |
//! | [`ablation`] | (ours) | quantization, safety factor, arrival probability, list sizes, transport |

pub mod ablation;
pub mod failover;
pub mod loss_fluctuation;
pub mod rtt_fluctuation;
pub mod throughput;
