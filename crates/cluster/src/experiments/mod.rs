//! The paper's experiments (§IV), one module per figure.
//!
//! | Module | Paper | What it regenerates |
//! |--------|-------|---------------------|
//! | [`failover`] | Fig. 4, Fig. 8 | detection/OTS CDFs over repeated leader pauses |
//! | [`throughput`] | Fig. 5 | latency-vs-throughput curve, peak throughput |
//! | [`rtt_fluctuation`] | Fig. 6a/6b | randomizedTimeout / RTT / OTS time series |
//! | [`loss_fluctuation`] | Fig. 7a/7b | heartbeat interval + CPU series under loss ramps |
//! | [`ablation`] | (ours) | quantization, safety factor, arrival probability, list sizes, transport |
//!
//! These modules hold the *measurement* logic (what to record and how to
//! aggregate it). Cluster assembly and failure injection go through the
//! declarative [`scenario`](crate::scenario) layer: fault schedules are
//! [`FaultPlan`](crate::scenario::FaultPlan) data executed by the generic
//! [`ScenarioDriver`](crate::scenario::ScenarioDriver), and each study is
//! registered as a named [`Experiment`](crate::scenario::Experiment) in
//! [`scenario::catalog`](crate::scenario::catalog).

pub mod ablation;
pub mod failover;
pub mod loss_fluctuation;
pub mod rtt_fluctuation;
pub mod throughput;
