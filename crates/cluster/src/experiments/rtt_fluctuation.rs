//! RTT-fluctuation adaptivity (paper Fig. 6, §IV-C1).
//!
//! No failures, no client load; the link RTT follows the paper's gradual
//! (50→200→50 ms in 10 ms steps) or radical (50→500→50 ms) schedule while
//! we sample, once per second, the third-smallest randomizedTimeout across
//! the five servers (the majority representative, since pre-vote requires
//! f+1 expiries to depose a leader) plus the scheduled RTT. Out-of-service
//! shading comes from the leaderless intervals of the event log.

use crate::observers::{leaderless_intervals, total_leaderless_secs};
use crate::scenario::{Horizon, NetPlan, ScenarioBuilder, ScenarioDriver};
use dynatune_core::TuningConfig;
use dynatune_simnet::{CongestionConfig, LinkSchedule, NetParams, SimTime};
use std::time::Duration;

/// Which fluctuation pattern to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RttPattern {
    /// 50 → 200 → 50 ms in 10 ms steps, each held `hold` (paper: 60 s).
    Gradual,
    /// 50 ms for `hold`, then 500 ms for `hold`, then back (paper: 60 s).
    Radical,
}

/// Configuration of an RTT-fluctuation run.
#[derive(Debug, Clone)]
pub struct RttFlucConfig {
    /// The system under test (Raft / Raft-Low / Dynatune).
    pub tuning: TuningConfig,
    /// Fluctuation pattern.
    pub pattern: RttPattern,
    /// Hold time per RTT level.
    pub hold: Duration,
    /// Per-packet jitter coefficient of variation (WAN realism; see
    /// DESIGN.md on why gaps must scale with RTT).
    pub jitter_cv: f64,
    /// Congestion-burst model.
    pub congestion: CongestionConfig,
    /// Number of servers (paper: 5).
    pub n: usize,
    /// Sampling interval (paper: 1 s).
    pub sample_every: Duration,
    /// Master seed.
    pub seed: u64,
    /// Run the pre-vote phase (etcd default). Disabling it shows how much
    /// of Dynatune's no-OTS-on-false-detection story rests on pre-vote.
    pub pre_vote: bool,
}

impl RttFlucConfig {
    /// Paper-like defaults for the given system and pattern.
    #[must_use]
    pub fn new(tuning: TuningConfig, pattern: RttPattern, seed: u64) -> Self {
        Self {
            tuning,
            pattern,
            hold: Duration::from_secs(60),
            jitter_cv: 0.10,
            congestion: CongestionConfig {
                mean_interval: Some(Duration::from_secs(20)),
                duration: (Duration::from_millis(100), Duration::from_millis(400)),
                scale: 0.6,
            },
            n: 5,
            sample_every: Duration::from_secs(1),
            seed,
            pre_vote: true,
        }
    }

    fn schedule(&self) -> LinkSchedule {
        let base = NetParams::clean(Duration::from_millis(50)).with_jitter(self.jitter_cv);
        match self.pattern {
            RttPattern::Gradual => LinkSchedule::gradual_rtt_ramp(
                base,
                Duration::from_millis(50),
                Duration::from_millis(200),
                Duration::from_millis(10),
                self.hold,
            ),
            RttPattern::Radical => LinkSchedule::radical_rtt_step(
                base,
                Duration::from_millis(50),
                Duration::from_millis(500),
                self.hold,
            ),
        }
    }

    /// Total experiment duration.
    #[must_use]
    pub fn duration(&self) -> Duration {
        match self.pattern {
            RttPattern::Gradual => self.hold * 31, // 16 up + 15 down levels
            RttPattern::Radical => self.hold * 3,
        }
    }
}

/// Time series output of one run.
#[derive(Debug, Clone)]
pub struct RttFlucSeries {
    /// Sample times (seconds).
    pub t: Vec<f64>,
    /// Third-smallest randomizedTimeout at each sample (ms).
    pub third_smallest_rto_ms: Vec<f64>,
    /// Scheduled RTT at each sample (ms).
    pub rtt_ms: Vec<f64>,
    /// Leaderless (OTS) intervals, in seconds.
    pub ots_intervals: Vec<(f64, f64)>,
    /// Total OTS seconds.
    pub total_ots_secs: f64,
    /// Number of election-timer expiries observed after warm-up.
    pub timeouts_observed: usize,
    /// Number of *completed* term changes (real elections with a winner).
    pub leader_changes: usize,
}

/// Run one RTT-fluctuation experiment.
#[must_use]
pub fn run(cfg: &RttFlucConfig) -> RttFlucSeries {
    // The schedule starts at t=0, so sampling starts immediately and the
    // figure shows the warm-up, as the paper's plots do.
    let cluster_cfg = ScenarioBuilder::cluster(cfg.n)
        .tuning(cfg.tuning)
        .net(NetPlan::uniform_schedule(cfg.schedule()))
        .congestion(cfg.congestion)
        .pre_vote(cfg.pre_vote)
        .seed(cfg.seed)
        .build();
    let run = ScenarioDriver::new(cluster_cfg)
        .sample_every(cfg.sample_every)
        .horizon(Horizon::At(cfg.duration()))
        .run();

    let horizon = run.horizon;
    let mut out_t = Vec::new();
    let mut out_rto = Vec::new();
    let mut out_rtt = Vec::new();
    for s in &run.samples {
        // The majority-representative (third-smallest of five) timeout.
        if let Some(rto) = s.majority_rto_ms {
            out_rto.push(rto);
            out_t.push(s.t.as_secs_f64());
            out_rtt.push(s.rtt_ms);
        }
    }
    let events = run.sim.events();
    let gaps = leaderless_intervals(&events, horizon);
    // Skip the initial election when counting: warm-up ends once the first
    // leader exists (~2 s in).
    let warm = SimTime::from_secs(5);
    let timeouts_observed = crate::observers::count_events(&events, warm, horizon, |e| {
        matches!(e, dynatune_raft::RaftEvent::ElectionTimeout { .. })
    });
    let leader_changes = crate::observers::count_events(&events, warm, horizon, |e| {
        matches!(e, dynatune_raft::RaftEvent::BecameLeader { .. })
    });
    RttFlucSeries {
        t: out_t,
        third_smallest_rto_ms: out_rto,
        rtt_ms: out_rtt,
        total_ots_secs: total_leaderless_secs(&gaps),
        ots_intervals: gaps,
        timeouts_observed,
        leader_changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(tuning: TuningConfig, pattern: RttPattern, seed: u64) -> RttFlucSeries {
        let mut cfg = RttFlucConfig::new(tuning, pattern, seed);
        cfg.hold = Duration::from_secs(10); // shrink for test speed
        run(&cfg)
    }

    #[test]
    fn dynatune_tracks_gradual_rtt() {
        let s = quick(TuningConfig::dynatune(), RttPattern::Gradual, 21);
        assert!(!s.t.is_empty());
        // At the peak (middle of the run) the RTT is 200ms and Dynatune's
        // randomizedTimeout should sit in the few-hundred-ms range, far
        // below the 1000-2000ms default band.
        let mid = s.t.len() / 2;
        let rto_mid = s.third_smallest_rto_ms[mid];
        assert!((200.0..800.0).contains(&rto_mid), "mid rto {rto_mid}ms");
        assert!(
            (150.0..250.0).contains(&s.rtt_ms[mid]),
            "mid rtt {}",
            s.rtt_ms[mid]
        );
        // Early samples (once warmed, RTT 50ms) are smaller than mid ones.
        let early = s.third_smallest_rto_ms[5].min(s.third_smallest_rto_ms[6]);
        assert!(early < rto_mid, "early {early} < mid {rto_mid}");
        // Dynatune stays available throughout (paper Fig. 6a).
        assert_eq!(s.total_ots_secs, 0.0, "ots: {:?}", s.ots_intervals);
    }

    #[test]
    fn raft_stays_high_and_available() {
        let s = quick(TuningConfig::raft_default(), RttPattern::Gradual, 22);
        // Raft's randomizedTimeout stays in the default 1000-2000ms band.
        let avg: f64 =
            s.third_smallest_rto_ms.iter().sum::<f64>() / s.third_smallest_rto_ms.len() as f64;
        assert!((1000.0..2000.0).contains(&avg), "raft rto avg {avg}");
        assert_eq!(s.total_ots_secs, 0.0);
    }

    #[test]
    fn raft_low_suffers_ots_under_radical_step() {
        // Raft-Low: Et=100ms. The 50→500ms step exceeds its timeout band,
        // so the paper observes sustained OTS during the high-RTT minute.
        let s = quick(TuningConfig::raft_low(), RttPattern::Radical, 23);
        assert!(
            s.total_ots_secs > 2.0,
            "raft-low should lose availability: {:?}",
            s.ots_intervals
        );
    }

    #[test]
    fn dynatune_survives_radical_step_without_ots() {
        let s = quick(TuningConfig::dynatune(), RttPattern::Radical, 24);
        // False detections may occur at the step, but pre-vote absorbs them
        // (paper Fig. 6b): no leadership gap.
        assert_eq!(
            s.total_ots_secs, 0.0,
            "dynatune OTS: {:?} (timeouts {})",
            s.ots_intervals, s.timeouts_observed
        );
    }
}
