//! Peak throughput under open-loop load (paper Fig. 5, §IV-B2).
//!
//! Clients ramp the offered rate in fixed increments, holding each level;
//! for every level we record the completed throughput and the mean latency
//! of requests sent in that level. The paper repeats the ramp 10 times and
//! reports average latency vs. average throughput with throughput standard
//! deviation; peak throughput is the highest completed rate.

use crate::scenario::{Horizon, ScenarioDriver};
use crate::sim::{ClusterConfig, WorkloadSpec};
use dynatune_core::invariant_violated;
use dynatune_kv::{OpMix, WorkloadGen};
use dynatune_simnet::rng::splitmix64;
use dynatune_stats::OnlineStats;
use rayon::prelude::*;
use std::time::Duration;

/// Configuration of a throughput study.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Base cluster (workload attached internally).
    pub cluster: ClusterConfig,
    /// Peak offered rate of the ramp (req/s).
    pub peak_rps: f64,
    /// Ramp increment (paper: 1000 req/s).
    pub increment: f64,
    /// Hold per level (paper: 10 s).
    pub hold: Duration,
    /// Number of ramp repetitions (paper: 10).
    pub repeats: usize,
    /// Leader-settle time before the ramp starts.
    pub settle: Duration,
}

impl ThroughputConfig {
    /// Paper-like defaults scaled by a peak estimate.
    #[must_use]
    pub fn new(cluster: ClusterConfig, peak_rps: f64) -> Self {
        Self {
            cluster,
            peak_rps,
            increment: 1000.0,
            hold: Duration::from_secs(10),
            repeats: 10,
            settle: Duration::from_secs(5),
        }
    }
}

/// Aggregated per-level result.
#[derive(Debug, Clone)]
pub struct LevelResult {
    /// Offered rate (req/s).
    pub offered_rps: f64,
    /// Completed throughput across repeats (req/s).
    pub throughput: OnlineStats,
    /// Mean latency across repeats (ms).
    pub latency_ms: OnlineStats,
}

/// Full study result.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// One entry per offered-load level.
    pub levels: Vec<LevelResult>,
}

impl ThroughputResult {
    /// Peak completed throughput (req/s): the paper's headline number.
    #[must_use]
    pub fn peak_throughput(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.throughput.mean())
            .fold(0.0, f64::max)
    }

    /// `(throughput, latency)` points for the Fig. 5 curve.
    #[must_use]
    pub fn curve(&self) -> Vec<(f64, f64)> {
        self.levels
            .iter()
            .map(|l| (l.throughput.mean(), l.latency_ms.mean()))
            .collect()
    }
}

/// Run one ramp repetition; returns per-level `(offered, completed/s,
/// mean latency ms)`.
#[must_use]
pub fn run_single_ramp(cfg: &ThroughputConfig, repeat: usize) -> Vec<(f64, f64, f64)> {
    let mut cluster_cfg = cfg.cluster.clone();
    let mut seed = cfg.cluster.seed ^ (repeat as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    cluster_cfg.seed = splitmix64(&mut seed);
    let steps = WorkloadGen::paper_ramp(cfg.peak_rps, cfg.increment, cfg.hold);
    let levels = u32::try_from(steps.len()).unwrap_or(u32::MAX);
    let total: Duration = cfg.settle + cfg.hold * levels;
    cluster_cfg.workload = Some(WorkloadSpec {
        steps,
        mix: OpMix::write_heavy(),
        key_space: 100_000,
        zipf_theta: 0.99,
        value_size: 128,
        start_offset: cfg.settle,
        // No failures in this experiment; timeouts would only duplicate
        // requests under saturation and distort the measured throughput.
        request_timeout: None,
        read_fanout: false,
        record_trace: false,
    });
    // Run through the whole ramp plus a drain period for in-flight requests
    // (no faults: an empty plan on the scenario driver).
    let run = ScenarioDriver::new(cluster_cfg)
        .horizon(Horizon::At(total + Duration::from_secs(5)))
        .run();
    let Some(steps) = run.sim.client_steps() else {
        invariant_violated!(
            "throughput run has no client host — the config above always \
             attaches a workload"
        );
    };
    steps
        .iter()
        .map(|s| (s.offered_rps, s.throughput(), s.latency_ms.mean()))
        .collect()
}

/// Run the full study (repeats in parallel).
#[must_use]
pub fn run(cfg: &ThroughputConfig) -> ThroughputResult {
    let runs: Vec<Vec<(f64, f64, f64)>> = (0..cfg.repeats)
        .into_par_iter()
        .map(|r| run_single_ramp(cfg, r))
        .collect();
    let n_levels = runs.first().map_or(0, Vec::len);
    let mut levels = Vec::with_capacity(n_levels);
    for level in 0..n_levels {
        let mut throughput = OnlineStats::new();
        let mut latency = OnlineStats::new();
        let mut offered = 0.0;
        for run in &runs {
            let (o, tput, lat) = run[level];
            offered = o;
            throughput.push(tput);
            if lat.is_finite() && lat > 0.0 {
                latency.push(lat);
            }
        }
        levels.push(LevelResult {
            offered_rps: offered,
            throughput,
            latency_ms: latency,
        });
    }
    ThroughputResult { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_core::TuningConfig;

    #[test]
    fn small_ramp_saturates() {
        // A miniature version of Fig. 5: 3 servers, ramp to 20k in 5k steps,
        // 2s holds, single repeat. The default cost model saturates around
        // 13-14k req/s, so the last levels must stop tracking offered load.
        let cluster = ClusterConfig::stable(
            3,
            TuningConfig::raft_default(),
            Duration::from_millis(10),
            11,
        );
        let cfg = ThroughputConfig {
            cluster,
            peak_rps: 20_000.0,
            increment: 5_000.0,
            hold: Duration::from_secs(2),
            repeats: 1,
            settle: Duration::from_secs(5),
        };
        let res = run(&cfg);
        assert_eq!(res.levels.len(), 4);
        // Low levels keep up with offered load.
        let l0 = &res.levels[0];
        assert!(
            l0.throughput.mean() > l0.offered_rps * 0.85,
            "level 0: offered {} got {}",
            l0.offered_rps,
            l0.throughput.mean()
        );
        // The top level is far beyond capacity.
        let top = res.levels.last().unwrap();
        assert!(
            top.throughput.mean() < top.offered_rps * 0.9,
            "top level should saturate: offered {} got {}",
            top.offered_rps,
            top.throughput.mean()
        );
        let peak = res.peak_throughput();
        assert!(
            (8_000.0..18_000.0).contains(&peak),
            "peak should be near the CPU-model capacity: {peak}"
        );
        // Latency grows with saturation.
        let lat_low = res.levels[0].latency_ms.mean();
        let lat_high = res.levels[3].latency_ms.mean();
        assert!(lat_high > lat_low, "latency {lat_low} -> {lat_high}");
    }
}
