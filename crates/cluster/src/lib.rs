//! Simulation harness for the Dynatune reproduction.
//!
//! Assembles clusters of Raft/KV servers (plus optional open-loop clients)
//! on the `dynatune-simnet` fabric, injects the paper's failure modes
//! (container pause, crash), observes elections and tuning state, models
//! CPU cost, and implements every experiment of the paper's evaluation
//! (§IV): see [`experiments`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cpu;
pub mod experiments;
pub mod msg;
pub mod observers;
pub mod server;
pub mod sim;

pub use client::{ClientHost, StepRecord};
pub use cpu::{CostModel, CpuMeter};
pub use msg::ClusterMsg;
pub use observers::{
    count_events, extract_failover, kth_smallest_timeout_ms, leaderless_intervals,
    total_leaderless_secs, FailoverTimes,
};
pub use server::ServerHost;
pub use sim::{ClusterConfig, ClusterHost, ClusterSim, WorkloadSpec};
