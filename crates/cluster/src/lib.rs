//! Simulation harness for the Dynatune reproduction.
//!
//! Assembles clusters of Raft/KV servers (plus optional open-loop clients)
//! on the `dynatune-simnet` fabric, injects the paper's failure modes
//! (container pause, crash), observes elections and tuning state, models
//! CPU cost, and implements every experiment of the paper's evaluation
//! (§IV): see [`experiments`] for the measurement procedures and
//! [`scenario`] for the declarative layer (builders, fault plans, the
//! generic driver, and the registry of runnable experiments). The
//! [`sharded`] module scales the single group out horizontally: N
//! independent Raft groups (one per hash partition of the keyspace) in one
//! world, served through a per-shard batching client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod broker;
pub mod client;
pub mod cpu;
pub mod experiments;
pub mod msg;
pub mod observers;
pub mod rebalance;
pub mod scenario;
pub mod server;
pub mod shard_client;
pub mod sharded;
pub mod sim;

pub use app::{App, BrokerApp, KvApp};
pub use broker::{
    BrokerClient, BrokerClusterSim, BrokerConfig, BrokerStats, BrokerWorkload, ConsumerStats,
};
pub use client::{ClientHost, OpRecord, StepRecord};
pub use cpu::{CostModel, CpuMeter};
pub use msg::ClusterMsg;
pub use observers::{
    count_events, election_safety_violations, extract_failover, kth_smallest_timeout_ms,
    leaderless_intervals, stale_read_violations, total_leaderless_secs, FailoverTimes,
};
pub use rebalance::{RebalancePhase, Rebalancer, CATCH_UP_SLACK};
pub use scenario::{
    Experiment, FaultAction, FaultEvent, FaultPlan, Horizon, NetPlan, PartitionSpec, Report,
    RunCtx, ScenarioBuilder, ScenarioDriver, Target,
};
pub use server::{CompactionPolicy, ReadCounters, ReadStrategy, ServerHost};
pub use shard_client::{ShardClient, ShardStats};
pub use sharded::{ShardedClusterSim, ShardedConfig};
pub use sim::{ClusterConfig, ClusterHost, ClusterSim, WorkloadSpec};
