//! Simulation harness for the Dynatune reproduction.
//!
//! Assembles clusters of Raft/KV servers (plus optional open-loop clients)
//! on the `dynatune-simnet` fabric, injects the paper's failure modes
//! (container pause, crash), observes elections and tuning state, models
//! CPU cost, and implements every experiment of the paper's evaluation
//! (§IV): see [`experiments`] for the measurement procedures and
//! [`scenario`] for the declarative layer (builders, fault plans, the
//! generic driver, and the registry of runnable experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cpu;
pub mod experiments;
pub mod msg;
pub mod observers;
pub mod scenario;
pub mod server;
pub mod sim;

pub use client::{ClientHost, StepRecord};
pub use cpu::{CostModel, CpuMeter};
pub use msg::ClusterMsg;
pub use observers::{
    count_events, election_safety_violations, extract_failover, kth_smallest_timeout_ms,
    leaderless_intervals, total_leaderless_secs, FailoverTimes,
};
pub use scenario::{
    Experiment, FaultAction, FaultEvent, FaultPlan, Horizon, NetPlan, PartitionSpec, Report,
    RunCtx, ScenarioBuilder, ScenarioDriver, Target,
};
pub use server::ServerHost;
pub use sim::{ClusterConfig, ClusterHost, ClusterSim, WorkloadSpec};
