//! Messages exchanged inside a simulated cluster (servers + clients).
//!
//! Generic over the [`App`] being served: the KV cluster speaks
//! `ClusterMsg` (the `KvApp` default), the broker cluster speaks
//! `ClusterMsg<BrokerApp>`. The wire vocabulary — Raft traffic, client
//! requests/batches, responses, redirects, forwarded-read waves — is
//! identical either way; only the command/response payloads differ.

use crate::app::{App, KvApp};
use dynatune_raft::{NodeId, Payload};

/// The Raft payload type of the cluster: commands carry their client
/// origin (for retry deduplication) and snapshots ship the app's full
/// state-machine snapshot.
pub type RaftPayload<A = KvApp> = Payload<<A as App>::Request, <A as App>::SnapshotData>;

/// Everything that can travel over the simulated network.
pub enum ClusterMsg<A: App = KvApp> {
    /// Raft protocol traffic between servers.
    Raft(RaftPayload<A>),
    /// Client → server request.
    ClientReq {
        /// Client-chosen request id (unique per client).
        req_id: u64,
        /// The command to execute.
        cmd: A::Command,
    },
    /// Client → server batch: several requests for the *same* Raft group,
    /// sent as one message. Batching clients coalesce the arrivals of a
    /// wake per group; the server admits each item as if it arrived alone
    /// (same per-request CPU cost) and answers per request.
    ClientBatch {
        /// `(req_id, command)` items, in client send order.
        reqs: Vec<(u64, A::Command)>,
    },
    /// Server → client completion.
    ClientResp {
        /// Echoed request id.
        req_id: u64,
        /// The result, if the command committed and applied; `None` when the
        /// proposal was lost to a leadership change.
        result: Option<A::Response>,
    },
    /// Server → client redirect: the contacted server is not the leader.
    /// Carries the command back so the client can retry elsewhere.
    ClientRedirect {
        /// Echoed request id.
        req_id: u64,
        /// The server's current leader hint, if it has one.
        hint: Option<NodeId>,
        /// The original command, returned for retry.
        cmd: A::Command,
    },
    /// Follower → leader: forwarded ReadIndex request. The follower keeps
    /// the client command; the leader only confirms leadership and names
    /// the index the read is linearizable at.
    ReadIndexReq {
        /// The follower's local id for the forwarded read.
        read_id: u64,
    },
    /// Leader → follower: answer to a [`ClusterMsg::ReadIndexReq`].
    ReadIndexResp {
        /// Echoed read id.
        read_id: u64,
        /// The granted read index, or `None` when the contacted server
        /// cannot confirm leadership (the follower redirects its client).
        read_index: Option<u64>,
    },
}

// Manual impls: deriving would bound `A: Clone`/`A: Debug` even though only
// the associated payloads appear in fields, and the simulator's `Host::Msg`
// needs `Clone` for any app marker.
impl<A: App> Clone for ClusterMsg<A> {
    fn clone(&self) -> Self {
        match self {
            ClusterMsg::Raft(p) => ClusterMsg::Raft(p.clone()),
            ClusterMsg::ClientReq { req_id, cmd } => ClusterMsg::ClientReq {
                req_id: *req_id,
                cmd: cmd.clone(),
            },
            ClusterMsg::ClientBatch { reqs } => ClusterMsg::ClientBatch { reqs: reqs.clone() },
            ClusterMsg::ClientResp { req_id, result } => ClusterMsg::ClientResp {
                req_id: *req_id,
                result: result.clone(),
            },
            ClusterMsg::ClientRedirect { req_id, hint, cmd } => ClusterMsg::ClientRedirect {
                req_id: *req_id,
                hint: *hint,
                cmd: cmd.clone(),
            },
            ClusterMsg::ReadIndexReq { read_id } => ClusterMsg::ReadIndexReq { read_id: *read_id },
            ClusterMsg::ReadIndexResp {
                read_id,
                read_index,
            } => ClusterMsg::ReadIndexResp {
                read_id: *read_id,
                read_index: *read_index,
            },
        }
    }
}

impl<A: App> std::fmt::Debug for ClusterMsg<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterMsg::Raft(p) => f.debug_tuple("Raft").field(p).finish(),
            ClusterMsg::ClientReq { req_id, cmd } => f
                .debug_struct("ClientReq")
                .field("req_id", req_id)
                .field("cmd", cmd)
                .finish(),
            ClusterMsg::ClientBatch { reqs } => {
                f.debug_struct("ClientBatch").field("reqs", reqs).finish()
            }
            ClusterMsg::ClientResp { req_id, result } => f
                .debug_struct("ClientResp")
                .field("req_id", req_id)
                .field("result", result)
                .finish(),
            ClusterMsg::ClientRedirect { req_id, hint, cmd } => f
                .debug_struct("ClientRedirect")
                .field("req_id", req_id)
                .field("hint", hint)
                .field("cmd", cmd)
                .finish(),
            ClusterMsg::ReadIndexReq { read_id } => f
                .debug_struct("ReadIndexReq")
                .field("read_id", read_id)
                .finish(),
            ClusterMsg::ReadIndexResp {
                read_id,
                read_index,
            } => f
                .debug_struct("ReadIndexResp")
                .field("read_id", read_id)
                .field("read_index", read_index)
                .finish(),
        }
    }
}

impl<A: App> ClusterMsg<A> {
    /// Short tag for tracing.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ClusterMsg::Raft(p) => p.kind(),
            ClusterMsg::ClientReq { .. } => "client_req",
            ClusterMsg::ClientBatch { .. } => "client_batch",
            ClusterMsg::ClientResp { .. } => "client_resp",
            ClusterMsg::ClientRedirect { .. } => "client_redirect",
            ClusterMsg::ReadIndexReq { .. } => "read_index_req",
            ClusterMsg::ReadIndexResp { .. } => "read_index_resp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dynatune_kv::KvCommand;

    #[test]
    fn kinds() {
        let m: ClusterMsg = ClusterMsg::ClientReq {
            req_id: 1,
            cmd: KvCommand::Get {
                key: Bytes::from_static(b"k"),
            },
        };
        assert_eq!(m.kind(), "client_req");
        let r = ClusterMsg::<KvApp>::Raft(RaftPayload::<KvApp>::AppendResp(
            dynatune_raft::AppendResp {
                term: 1,
                success: true,
                match_or_hint: 3,
                read_ctx: None,
            },
        ));
        assert_eq!(r.kind(), "append_resp");
    }

    #[test]
    fn broker_messages_share_the_wire_vocabulary() {
        use crate::app::BrokerApp;
        let m: ClusterMsg<BrokerApp> = ClusterMsg::ClientReq {
            req_id: 1,
            cmd: dynatune_broker::BrokerCommand::Fetch {
                topic: "t".into(),
                partition: 0,
                offset: 0,
                max_records: 8,
            },
        };
        assert_eq!(m.kind(), "client_req");
        assert_eq!(m.clone().kind(), "client_req");
        assert!(format!("{m:?}").contains("ClientReq"));
    }
}
