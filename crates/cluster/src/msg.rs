//! Messages exchanged inside a simulated cluster (servers + clients).

use dynatune_kv::{KvCommand, KvRequest, KvResponse, Store};
use dynatune_raft::{NodeId, Payload};

/// The Raft payload type of the cluster: commands carry their client
/// origin (for retry deduplication) and snapshots ship the full [`Store`].
pub type RaftPayload = Payload<KvRequest, Store>;

/// Everything that can travel over the simulated network.
#[derive(Debug, Clone)]
pub enum ClusterMsg {
    /// Raft protocol traffic between servers.
    Raft(RaftPayload),
    /// Client → server request.
    ClientReq {
        /// Client-chosen request id (unique per client).
        req_id: u64,
        /// The command to execute.
        cmd: KvCommand,
    },
    /// Client → server batch: several requests for the *same* Raft group,
    /// sent as one message. The sharded client coalesces the arrivals of a
    /// wake per shard; the server admits each item as if it arrived alone
    /// (same per-request CPU cost) and answers per request.
    ClientBatch {
        /// `(req_id, command)` items, in client send order.
        reqs: Vec<(u64, KvCommand)>,
    },
    /// Server → client completion.
    ClientResp {
        /// Echoed request id.
        req_id: u64,
        /// The result, if the command committed and applied; `None` when the
        /// proposal was lost to a leadership change.
        result: Option<KvResponse>,
    },
    /// Server → client redirect: the contacted server is not the leader.
    /// Carries the command back so the client can retry elsewhere.
    ClientRedirect {
        /// Echoed request id.
        req_id: u64,
        /// The server's current leader hint, if it has one.
        hint: Option<NodeId>,
        /// The original command, returned for retry.
        cmd: KvCommand,
    },
    /// Follower → leader: forwarded ReadIndex request. The follower keeps
    /// the client command; the leader only confirms leadership and names
    /// the index the read is linearizable at.
    ReadIndexReq {
        /// The follower's local id for the forwarded read.
        read_id: u64,
    },
    /// Leader → follower: answer to a [`ClusterMsg::ReadIndexReq`].
    ReadIndexResp {
        /// Echoed read id.
        read_id: u64,
        /// The granted read index, or `None` when the contacted server
        /// cannot confirm leadership (the follower redirects its client).
        read_index: Option<u64>,
    },
}

impl ClusterMsg {
    /// Short tag for tracing.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ClusterMsg::Raft(p) => p.kind(),
            ClusterMsg::ClientReq { .. } => "client_req",
            ClusterMsg::ClientBatch { .. } => "client_batch",
            ClusterMsg::ClientResp { .. } => "client_resp",
            ClusterMsg::ClientRedirect { .. } => "client_redirect",
            ClusterMsg::ReadIndexReq { .. } => "read_index_req",
            ClusterMsg::ReadIndexResp { .. } => "read_index_resp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn kinds() {
        let m = ClusterMsg::ClientReq {
            req_id: 1,
            cmd: KvCommand::Get {
                key: Bytes::from_static(b"k"),
            },
        };
        assert_eq!(m.kind(), "client_req");
        let r = ClusterMsg::Raft(RaftPayload::AppendResp(dynatune_raft::AppendResp {
            term: 1,
            success: true,
            match_or_hint: 3,
            read_ctx: None,
        }));
        assert_eq!(r.kind(), "append_resp");
    }
}
