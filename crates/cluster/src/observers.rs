//! Event-log analysis: the measurements the paper extracts from server logs.
//!
//! §IV-A: "we measured the time of the leader's failure, the time when the
//! failure was detected, and the time when a new leader was elected from
//! each server's log files in order to calculate the detection and OTS
//! times." These functions are the structured equivalent over the
//! simulator's event log.

use dynatune_raft::{NodeId, RaftEvent};
use dynatune_simnet::SimTime;
use std::time::Duration;

/// Timing extracted from one leader-failure trial.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FailoverTimes {
    /// Failure → first election-timer expiry on a live server.
    pub detection: Option<Duration>,
    /// Failure → new leader elected (the paper's out-of-service time).
    pub ots: Option<Duration>,
    /// The randomized timeout that expired at detection (ms).
    pub detection_rto_ms: Option<f64>,
    /// The server that detected first.
    pub detector: Option<NodeId>,
    /// The new leader.
    pub new_leader: Option<NodeId>,
}

/// Extract detection and OTS times for a failure injected at `t_fail` on
/// `failed` from the merged event log.
#[must_use]
pub fn extract_failover(
    events: &[(SimTime, NodeId, RaftEvent)],
    t_fail: SimTime,
    failed: NodeId,
) -> FailoverTimes {
    let mut out = FailoverTimes::default();
    for &(t, node, ev) in events {
        if t < t_fail || node == failed {
            continue;
        }
        match ev {
            RaftEvent::ElectionTimeout {
                randomized_timeout, ..
            } if out.detection.is_none() => {
                out.detection = Some(t - t_fail);
                out.detection_rto_ms = Some(randomized_timeout.as_secs_f64() * 1e3);
                out.detector = Some(node);
            }
            RaftEvent::BecameLeader { .. } if out.ots.is_none() => {
                out.ots = Some(t - t_fail);
                out.new_leader = Some(node);
            }
            _ => {}
        }
        if out.detection.is_some() && out.ots.is_some() {
            break;
        }
    }
    out
}

/// Compute the intervals (in seconds since simulation start) during which
/// no server held leadership — the paper's OTS shading in Fig. 6.
///
/// A node's leadership starts at `BecameLeader` and ends at its next
/// `SteppedDown` or `BecameFollower` (or `horizon`). The cluster is
/// leaderless wherever no node's leadership interval covers the instant.
/// The initial interval before the first-ever leader is *not* reported
/// (startup is not an outage).
#[must_use]
pub fn leaderless_intervals(
    events: &[(SimTime, NodeId, RaftEvent)],
    horizon: SimTime,
) -> Vec<(f64, f64)> {
    // Build per-node leadership intervals.
    let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
    let max_node = events.iter().map(|&(_, n, _)| n).max().unwrap_or(0);
    let mut open: Vec<Option<SimTime>> = vec![None; max_node + 1];
    for &(t, node, ev) in events {
        match ev {
            RaftEvent::BecameLeader { .. } => {
                open[node] = Some(t);
            }
            RaftEvent::SteppedDown { .. } | RaftEvent::BecameFollower { .. } => {
                if let Some(start) = open[node].take() {
                    intervals.push((start, t));
                }
            }
            _ => {}
        }
    }
    for slot in open.iter_mut() {
        if let Some(start) = slot.take() {
            intervals.push((start, horizon));
        }
    }
    if intervals.is_empty() {
        return Vec::new();
    }
    intervals.sort_by_key(|&(s, _)| s);
    // Merge the led intervals, then take gaps between them.
    let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
    for (s, e) in intervals {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let mut gaps = Vec::new();
    for pair in merged.windows(2) {
        let (_, end_a) = pair[0];
        let (start_b, _) = pair[1];
        if start_b > end_a {
            gaps.push((end_a.as_secs_f64(), start_b.as_secs_f64()));
        }
    }
    // Tail gap: leadership ended before the horizon.
    if let Some(&(_, last_end)) = merged.last() {
        if last_end < horizon {
            gaps.push((last_end.as_secs_f64(), horizon.as_secs_f64()));
        }
    }
    gaps
}

/// Total leaderless seconds from [`leaderless_intervals`].
#[must_use]
pub fn total_leaderless_secs(gaps: &[(f64, f64)]) -> f64 {
    // fold instead of sum: `Iterator::sum` over an empty f64 iterator
    // yields -0.0, which leaks into reports as "-0.0 s".
    gaps.iter().fold(0.0, |acc, &(s, e)| acc + (e - s).max(0.0))
}

/// Election Safety (Raft §5.2) over an event log: count `BecameLeader`
/// announcements that name a *different* node for an already-claimed term.
/// Zero on every correct run; the scenario experiments and the integration
/// tests share this check.
#[must_use]
pub fn election_safety_violations(events: &[(SimTime, NodeId, RaftEvent)]) -> usize {
    let mut leaders_by_term: std::collections::BTreeMap<u64, NodeId> =
        std::collections::BTreeMap::new();
    let mut violations = 0;
    for &(_, node, ev) in events {
        if let RaftEvent::BecameLeader { term } = ev {
            if *leaders_by_term.entry(term).or_insert(node) != node {
                violations += 1;
            }
        }
    }
    violations
}

/// Count events matching a predicate in a time range.
#[must_use]
pub fn count_events(
    events: &[(SimTime, NodeId, RaftEvent)],
    from: SimTime,
    to: SimTime,
    pred: impl Fn(&RaftEvent) -> bool,
) -> usize {
    events
        .iter()
        .filter(|&&(t, _, ref e)| t >= from && t < to && pred(e))
        .count()
}

/// The third-smallest (f+1-th) value among per-node randomized timeouts —
/// the paper's Fig. 6 majority-representative metric.
#[must_use]
pub fn kth_smallest_timeout_ms(timeouts: &[Option<Duration>], k: usize) -> Option<f64> {
    let mut values: Vec<f64> = timeouts
        .iter()
        .flatten()
        .map(|d| d.as_secs_f64() * 1e3)
        .collect();
    if values.len() < k {
        return None;
    }
    values.sort_by(f64::total_cmp);
    Some(values[k - 1])
}

/// Count real-time-order violations in a client operation trace: for each
/// key, a completed read must observe a revision at least as new as any
/// `Put` (or read-observed revision) whose *response* preceded the read's
/// *invocation*. This is the stale-read half of linearizability — exactly
/// what a broken leader lease would violate (an isolated ex-leader serving
/// pre-partition state after the new leader commits). Write-write and
/// concurrent-op orderings are left to Raft's log order.
///
/// The check is sound for traces from **delete-free workloads** (the only
/// kind the recording clients produce today): only `Get`/`Put` carry
/// revisions, so a `Delete` would make a later legitimate miss
/// (revision 0) indistinguishable from a stale read. It is not complete —
/// it cannot see orderings revisions don't encode — so scenarios pair it
/// with convergence digests.
#[must_use]
pub fn stale_read_violations(trace: &[crate::client::OpRecord]) -> usize {
    // Per key: (response_time, revision) ops sorted by response time give
    // a running "must-have-seen" floor for reads invoked later.
    let mut by_key: std::collections::BTreeMap<&[u8], Vec<&crate::client::OpRecord>> =
        std::collections::BTreeMap::new();
    for op in trace {
        by_key.entry(op.key.as_ref()).or_default().push(op);
    }
    let mut violations = 0;
    for ops in by_key.values() {
        for read in ops.iter().filter(|op| !op.write) {
            let floor = ops
                .iter()
                .filter(|prior| prior.completed < read.invoked)
                .map(|prior| prior.revision)
                .max()
                .unwrap_or(0);
            if read.revision < floor {
                violations += 1;
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::OpRecord;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn op(key: &str, write: bool, invoked: u64, completed: u64, revision: u64) -> OpRecord {
        OpRecord {
            key: bytes::Bytes::copy_from_slice(key.as_bytes()),
            write,
            invoked: t(invoked),
            completed: t(completed),
            revision,
        }
    }

    #[test]
    fn stale_read_checker_catches_real_time_violations() {
        // Write k=rev7 completes at 100; a read invoked at 200 returning
        // rev 5 is stale. A concurrent read (invoked before the write's
        // response) may legally return either revision.
        let trace = vec![
            op("k", true, 50, 100, 7),
            op("k", false, 200, 250, 5), // stale!
            op("k", false, 60, 120, 5),  // concurrent with the write: fine
            op("q", false, 200, 250, 5), // different key: fine
        ];
        assert_eq!(stale_read_violations(&trace), 1);
        // Read-read ordering too: a read that observed rev 7 pins later
        // reads of the same key.
        let trace = vec![
            op("k", false, 10, 40, 7),
            op("k", false, 50, 90, 3), // went backwards
        ];
        assert_eq!(stale_read_violations(&trace), 1);
        // A clean trace counts nothing.
        let trace = vec![
            op("k", true, 0, 30, 1),
            op("k", false, 40, 60, 1),
            op("k", true, 70, 90, 2),
            op("k", false, 95, 110, 2),
        ];
        assert_eq!(stale_read_violations(&trace), 0);
    }

    fn timeout(ms: u64) -> RaftEvent {
        RaftEvent::ElectionTimeout {
            term: 1,
            randomized_timeout: Duration::from_millis(ms),
        }
    }

    #[test]
    fn failover_extraction_basic() {
        let events = vec![
            (t(100), 0, RaftEvent::BecameLeader { term: 1 }),
            // failure at 1000 on node 0
            (t(1200), 2, timeout(150)),
            (t(1250), 3, timeout(180)),
            (t(1500), 2, RaftEvent::ElectionStarted { term: 2 }),
            (t(1700), 2, RaftEvent::BecameLeader { term: 2 }),
        ];
        let f = extract_failover(&events, t(1000), 0);
        assert_eq!(f.detection, Some(Duration::from_millis(200)));
        assert_eq!(f.detection_rto_ms, Some(150.0));
        assert_eq!(f.detector, Some(2));
        assert_eq!(f.ots, Some(Duration::from_millis(700)));
        assert_eq!(f.new_leader, Some(2));
    }

    #[test]
    fn failover_ignores_failed_node_and_prior_events() {
        let events = vec![
            (t(500), 1, timeout(100)),  // before failure: ignored
            (t(1100), 0, timeout(100)), // failed node: ignored
            (t(1300), 1, timeout(100)),
            (t(1900), 1, RaftEvent::BecameLeader { term: 2 }),
        ];
        let f = extract_failover(&events, t(1000), 0);
        assert_eq!(f.detection, Some(Duration::from_millis(300)));
        assert_eq!(f.ots, Some(Duration::from_millis(900)));
    }

    #[test]
    fn failover_handles_missing_outcome() {
        let f = extract_failover(&[], t(0), 0);
        assert_eq!(f.detection, None);
        assert_eq!(f.ots, None);
    }

    #[test]
    fn leaderless_gaps_between_leaders() {
        let events = vec![
            (t(1000), 0, RaftEvent::BecameLeader { term: 1 }),
            (t(5000), 0, RaftEvent::SteppedDown { term: 1 }),
            (
                t(5000),
                0,
                RaftEvent::BecameFollower {
                    term: 2,
                    leader: None,
                },
            ),
            (t(7000), 1, RaftEvent::BecameLeader { term: 2 }),
        ];
        let gaps = leaderless_intervals(&events, t(10_000));
        assert_eq!(gaps, vec![(5.0, 7.0)]);
        assert!((total_leaderless_secs(&gaps) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn leaderless_tail_gap_counts() {
        let events = vec![
            (t(1000), 0, RaftEvent::BecameLeader { term: 1 }),
            (
                t(4000),
                0,
                RaftEvent::BecameFollower {
                    term: 2,
                    leader: None,
                },
            ),
        ];
        let gaps = leaderless_intervals(&events, t(6000));
        assert_eq!(gaps, vec![(4.0, 6.0)]);
    }

    #[test]
    fn overlapping_leaderships_merge() {
        // Transiently two leaders (old one hasn't heard the new term yet).
        let events = vec![
            (t(1000), 0, RaftEvent::BecameLeader { term: 1 }),
            (t(3000), 1, RaftEvent::BecameLeader { term: 2 }),
            (
                t(3500),
                0,
                RaftEvent::BecameFollower {
                    term: 2,
                    leader: Some(1),
                },
            ),
        ];
        let gaps = leaderless_intervals(&events, t(5000));
        assert!(gaps.is_empty(), "no gap while either node led: {gaps:?}");
    }

    #[test]
    fn startup_is_not_an_outage() {
        let events = vec![(t(1500), 0, RaftEvent::BecameLeader { term: 1 })];
        let gaps = leaderless_intervals(&events, t(3000));
        assert!(gaps.is_empty());
    }

    #[test]
    fn kth_smallest_skips_paused() {
        let timeouts = vec![
            Some(Duration::from_millis(120)),
            None, // paused
            Some(Duration::from_millis(80)),
            Some(Duration::from_millis(200)),
            Some(Duration::from_millis(150)),
        ];
        assert_eq!(kth_smallest_timeout_ms(&timeouts, 3), Some(150.0));
        assert_eq!(kth_smallest_timeout_ms(&timeouts, 5), None);
    }

    #[test]
    fn election_safety_counts_conflicting_claims() {
        let clean = vec![
            (t(100), 0, RaftEvent::BecameLeader { term: 1 }),
            (t(500), 1, RaftEvent::BecameLeader { term: 2 }),
            (t(900), 1, RaftEvent::BecameLeader { term: 3 }),
        ];
        assert_eq!(election_safety_violations(&clean), 0);
        let split_brain = vec![
            (t(100), 0, RaftEvent::BecameLeader { term: 1 }),
            (t(200), 2, RaftEvent::BecameLeader { term: 1 }),
        ];
        assert_eq!(election_safety_violations(&split_brain), 1);
        assert_eq!(election_safety_violations(&[]), 0);
    }

    #[test]
    fn count_events_filters() {
        let events = vec![
            (t(100), 0, RaftEvent::TunerReset),
            (t(200), 1, RaftEvent::TunerReset),
            (t(300), 0, RaftEvent::BecameLeader { term: 1 }),
        ];
        let n = count_events(&events, t(0), t(250), |e| {
            matches!(e, RaftEvent::TunerReset)
        });
        assert_eq!(n, 2);
        let n = count_events(&events, t(150), t(1000), |e| {
            matches!(e, RaftEvent::TunerReset)
        });
        assert_eq!(n, 1);
    }
}
