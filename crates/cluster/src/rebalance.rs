//! Live shard rebalancing: move one replica of a Raft group to a spare
//! host while client traffic keeps flowing.
//!
//! The move follows the production playbook (etcd/CockroachDB style):
//!
//! 1. **AddLearner** — the spare joins as a learner: replicated to, never
//!    counted in any quorum, never campaigning.
//! 2. **CatchUp** — wait until the learner's match index trails the
//!    leader's tail by at most [`CATCH_UP_SLACK`] entries (snapshot
//!    transfer + pipelined appends happen inside the simulation).
//! 3. **BeginJoint → AwaitJoint** — enter joint consensus
//!    `C_old,new = {old voters} ∪ {spare} \ {retiring replica}`; commits
//!    now require a majority of *both* voter sets.
//! 4. **Finalize → AwaitFinal** — leave joint consensus; the retiring
//!    replica is out of every quorum the moment `Finalize` is appended.
//! 5. **Repoint** — rewrite the shard client's placement row so traffic
//!    follows the data.
//!
//! The driver is a polling state machine advanced between simulation
//! slices. Every phase transition is derived from *replicated* state (the
//! leader's active membership), never from "I sent a proposal": a proposal
//! enqueued against a leader that got deposed before its next wake is
//! silently dropped by the server host, and the rebalancer simply
//! re-issues it — conf changes through [`ConfChange`] are idempotent at
//! this granularity because the Raft layer rejects duplicates
//! (already-a-learner, change-in-flight) instead of double-applying them.

use crate::sharded::ShardedClusterSim;
use dynatune_kv::ShardId;
use dynatune_raft::{ConfChange, NodeId};

/// Maximum entries the learner may trail the leader's tail before the
/// rebalancer enters joint consensus. Well inside the Raft layer's
/// promotion slack (256), so a `Begin` issued right after this gate
/// passes is not rejected as `LearnerBehind`.
pub const CATCH_UP_SLACK: u64 = 64;

/// Phase of one replica move (see module docs for the sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalancePhase {
    /// Propose `AddLearner(spare)`.
    AddLearner,
    /// Learner replicating; waiting for the lag gate.
    CatchUp,
    /// Propose `Begin { add: [spare], remove: [retiring] }`.
    BeginJoint,
    /// Joint config appended; waiting for it to commit in both quorums.
    AwaitJoint,
    /// Propose `Finalize`.
    Finalize,
    /// Final config appended; waiting for it to commit.
    AwaitFinal,
    /// Flip the shard client's placement row.
    Repoint,
    /// The move is complete.
    Done,
}

/// Drives one replica move on a [`ShardedClusterSim`].
pub struct Rebalancer {
    shard: ShardId,
    /// World id of the joining spare.
    add: NodeId,
    /// World id of the retiring replica.
    remove: NodeId,
    /// Group-local ids of the same two hosts (what conf changes carry).
    add_local: NodeId,
    remove_local: NodeId,
    phase: RebalancePhase,
    /// Conf proposals issued, re-issues after leadership moves included.
    proposals: u64,
}

impl Rebalancer {
    /// Plan a move on `shard`: `add` joins (a spare's world id), `remove`
    /// retires (a mapped replica's world id). Both must belong to the
    /// shard's group.
    #[must_use]
    pub fn new(sim: &ShardedClusterSim, shard: ShardId, add: NodeId, remove: NodeId) -> Self {
        let members = sim.members_of(shard);
        assert!(
            members.contains(&add) && members.contains(&remove),
            "rebalance endpoints must belong to shard {shard}"
        );
        let base = sim.map().group_base(shard);
        Self {
            shard,
            add,
            remove,
            add_local: add - base,
            remove_local: remove - base,
            phase: RebalancePhase::AddLearner,
            proposals: 0,
        }
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> RebalancePhase {
        self.phase
    }

    /// Whether the move has completed (final config committed, client
    /// repointed).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == RebalancePhase::Done
    }

    /// Conf proposals issued so far (> 4 means leadership churn forced
    /// re-issues).
    #[must_use]
    pub fn proposals(&self) -> u64 {
        self.proposals
    }

    /// The joining spare's world id.
    #[must_use]
    pub fn joining(&self) -> NodeId {
        self.add
    }

    /// The retiring replica's world id.
    #[must_use]
    pub fn retiring(&self) -> NodeId {
        self.remove
    }

    fn propose(&mut self, sim: &mut ShardedClusterSim, change: ConfChange) -> bool {
        let sent = sim.propose_conf_change(self.shard, change);
        if sent {
            self.proposals += 1;
        }
        sent
    }

    /// Advance the move by at most one action. Call between simulation
    /// slices (`run_for`); with no live leader the step is a no-op and the
    /// next call retries.
    pub fn step(&mut self, sim: &mut ShardedClusterSim) {
        let Some(leader) = sim.leader_of(self.shard) else {
            return;
        };
        let membership = sim.membership(leader);
        let add = self.add_local;
        let remove = self.remove_local;
        match self.phase {
            RebalancePhase::AddLearner => {
                let present = membership.is_learner(add) || membership.is_voter(add);
                if present || self.propose(sim, ConfChange::AddLearner(add)) {
                    self.phase = RebalancePhase::CatchUp;
                }
            }
            RebalancePhase::CatchUp => {
                if !membership.contains(add) {
                    // The AddLearner never landed (deposed leader dropped
                    // it): re-issue.
                    self.phase = RebalancePhase::AddLearner;
                    return;
                }
                let caught_up = sim.with_server(leader, |s| {
                    let node = s.node();
                    let matched = node.progress_of(add).map_or(0, |p| p.match_index);
                    matched > 0 && matched + CATCH_UP_SLACK >= node.log().last_index()
                });
                if caught_up {
                    self.phase = RebalancePhase::BeginJoint;
                }
            }
            RebalancePhase::BeginJoint => {
                if membership.is_joint() {
                    self.phase = RebalancePhase::AwaitJoint;
                } else if membership.is_voter(add) && !membership.contains(remove) {
                    self.phase = RebalancePhase::Repoint; // already through
                } else if self.propose(
                    sim,
                    ConfChange::Begin {
                        add: vec![add],
                        remove: vec![remove],
                    },
                ) {
                    self.phase = RebalancePhase::AwaitJoint;
                }
            }
            RebalancePhase::AwaitJoint => {
                if !membership.is_joint() {
                    // Dropped before append (back to Begin) or already
                    // finalized by a committed pipeline (rare but legal).
                    self.phase = if membership.is_voter(add) {
                        RebalancePhase::Repoint
                    } else {
                        RebalancePhase::BeginJoint
                    };
                    return;
                }
                let committed = sim.with_server(leader, |s| {
                    s.node().membership_index() <= s.node().commit_index()
                });
                if committed {
                    self.phase = RebalancePhase::Finalize;
                }
            }
            RebalancePhase::Finalize => {
                if !membership.is_joint() {
                    self.phase = if membership.is_voter(add) {
                        RebalancePhase::AwaitFinal
                    } else {
                        RebalancePhase::BeginJoint
                    };
                } else if self.propose(sim, ConfChange::Finalize) {
                    self.phase = RebalancePhase::AwaitFinal;
                }
            }
            RebalancePhase::AwaitFinal => {
                if membership.is_joint() {
                    // Finalize was dropped: re-issue.
                    self.phase = RebalancePhase::Finalize;
                    return;
                }
                if !membership.is_voter(add) {
                    // Whole joint change rolled back under a new leader.
                    self.phase = RebalancePhase::BeginJoint;
                    return;
                }
                let committed = sim.with_server(leader, |s| {
                    s.node().membership_index() <= s.node().commit_index()
                });
                if committed && !membership.contains(remove) {
                    self.phase = RebalancePhase::Repoint;
                }
            }
            RebalancePhase::Repoint => {
                sim.repoint_shard(self.shard, self.remove, self.add);
                self.phase = RebalancePhase::Done;
            }
            RebalancePhase::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observers::election_safety_violations;
    use crate::scenario::builder::ScenarioBuilder;
    use crate::sim::WorkloadSpec;
    use dynatune_core::TuningConfig;
    use dynatune_simnet::SimTime;
    use std::time::Duration;

    #[test]
    fn rebalancer_moves_a_replica_under_live_traffic() {
        let mut sim = ScenarioBuilder::cluster(3)
            .shards(2)
            .spare_for_shard(0)
            .tuning(TuningConfig::raft_default())
            .seed(11)
            .workload(
                WorkloadSpec::steady(400.0, Duration::from_secs(60))
                    .starting_at(Duration::from_secs(3)),
            )
            .build_sharded_sim();
        sim.run_until(SimTime::from_secs(8));
        let spare = sim.map().n_servers(); // first world id past the map
        let leader = sim.leader_of(0).expect("shard 0 leader");
        let retire = sim
            .map()
            .servers_of(0)
            .find(|&id| id != leader)
            .expect("a non-leader replica to retire");
        let mut rb = Rebalancer::new(&sim, 0, spare, retire);
        for _ in 0..300 {
            if rb.is_done() {
                break;
            }
            rb.step(&mut sim);
            sim.run_for(Duration::from_millis(200));
        }
        assert!(rb.is_done(), "rebalance stuck in {:?}", rb.phase());
        // Every live member of the group agrees on the final config.
        let base = sim.map().group_base(0);
        for id in [leader, spare] {
            let m = sim.membership(id);
            assert!(!m.is_joint(), "host {id} still joint");
            assert!(m.is_voter(spare - base), "host {id}: spare not a voter");
            assert!(
                !m.contains(retire - base),
                "host {id}: retiree still a member"
            );
        }
        // Traffic kept flowing through the move and still completes after.
        let before = sim.completed_per_shard().expect("client attached")[0];
        sim.run_for(Duration::from_secs(5));
        let after = sim.completed_per_shard().expect("client attached")[0];
        assert!(
            after > before + 300,
            "shard 0 serves after the move ({before} -> {after})"
        );
        // The untouched shard never noticed.
        assert_eq!(election_safety_violations(&sim.shard_events(1)), 0);
        assert_eq!(election_safety_violations(&sim.shard_events(0)), 0);
    }
}
