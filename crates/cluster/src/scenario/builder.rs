//! Fluent scenario construction: [`NetPlan`] (the network as data) and
//! [`ScenarioBuilder`] (typed assembly of a [`ClusterConfig`]).
//!
//! `ClusterConfig` has sixteen public fields; before this module every
//! experiment built one with `ClusterConfig::stable(..)` and then mutated
//! fields ad hoc. The builder composes topology, tuning, workload and
//! network plans explicitly, and is the single construction path used by
//! the experiment catalog, the figure binaries and the examples.

use crate::broker::{BrokerClusterSim, BrokerConfig, BrokerWorkload};
use crate::cpu::CostModel;
use crate::server::{CompactionPolicy, ReadStrategy};
use crate::sharded::{ShardedClusterSim, ShardedConfig};
use crate::sim::{ClusterConfig, ClusterSim, WorkloadSpec};
use dynatune_core::TuningConfig;
use dynatune_kv::ShardMap;
use dynatune_raft::TimerQuantization;
use dynatune_simnet::{geo_topology, CongestionConfig, LinkSchedule, NetParams, Region, Topology};
use std::time::Duration;

/// Declarative description of the server-to-server network.
///
/// A `NetPlan` resolves to a [`Topology`] once the cluster size is known;
/// until then it is pure data, so scenarios can be described, compared and
/// listed without building anything.
#[derive(Debug, Clone)]
pub enum NetPlan {
    /// Every pair shares one link schedule (the paper's single-host mesh).
    Uniform(LinkSchedule),
    /// One node per region with preset inter-region WAN RTTs (Fig. 8).
    Geo(Vec<Region>),
    /// Geo mesh with explicit per-pair overrides — asymmetric degradation
    /// the uniform plans cannot express. Each `(a, b, schedule)` replaces
    /// both directions of that pair.
    GeoDegraded {
        /// One node per region, as in [`NetPlan::Geo`].
        regions: Vec<Region>,
        /// Per-pair schedule overrides (applied to both directions).
        overrides: Vec<(usize, usize, LinkSchedule)>,
    },
    /// A fully custom topology (escape hatch).
    Custom(Topology),
}

impl NetPlan {
    /// The paper's §IV-A stable mesh: uniform constant RTT, no loss, and
    /// the small residual jitter a real kernel/bridge leaves behind.
    #[must_use]
    pub fn stable(rtt: Duration) -> Self {
        NetPlan::Uniform(LinkSchedule::constant(
            NetParams::clean(rtt).with_jitter(0.02),
        ))
    }

    /// Uniform mesh with explicit constant parameters.
    #[must_use]
    pub fn uniform(params: NetParams) -> Self {
        NetPlan::Uniform(LinkSchedule::constant(params))
    }

    /// Uniform mesh following a time-varying schedule (RTT ramps, loss
    /// staircases — see [`LinkSchedule`]).
    #[must_use]
    pub fn uniform_schedule(schedule: LinkSchedule) -> Self {
        NetPlan::Uniform(schedule)
    }

    /// The five-region geo deployment of Fig. 8.
    #[must_use]
    pub fn geo() -> Self {
        NetPlan::Geo(Region::ALL.to_vec())
    }

    /// Resolve to a topology for `n` servers.
    ///
    /// # Panics
    /// Panics when a geo plan's region count (or a custom topology's size)
    /// does not match `n`, or an override index is out of range.
    #[must_use]
    pub fn topology(&self, n: usize) -> Topology {
        match self {
            NetPlan::Uniform(schedule) => Topology::uniform(n, schedule.clone()),
            NetPlan::Geo(regions) => {
                assert_eq!(regions.len(), n, "geo plan must name one region per server");
                geo_topology(regions)
            }
            NetPlan::GeoDegraded { regions, overrides } => {
                assert_eq!(regions.len(), n, "geo plan must name one region per server");
                let mut topo = geo_topology(regions);
                for (a, b, schedule) in overrides {
                    topo.set_pair(*a, *b, schedule.clone());
                }
                topo
            }
            NetPlan::Custom(topology) => {
                assert_eq!(topology.len(), n, "custom topology must cover the servers");
                topology.clone()
            }
        }
    }

    /// The congestion model this network implies unless overridden: WAN
    /// bursts on geo plans, nothing on uniform meshes.
    #[must_use]
    pub fn default_congestion(&self) -> CongestionConfig {
        match self {
            NetPlan::Geo(_) | NetPlan::GeoDegraded { .. } => CongestionConfig::wan_default(),
            NetPlan::Uniform(_) | NetPlan::Custom(_) => CongestionConfig::disabled(),
        }
    }
}

/// Typed, fluent construction of a [`ClusterConfig`].
///
/// Defaults match `ClusterConfig::stable(n, tuning, 100ms, 0)`: etcd-style
/// tick quantization, pre-vote and check-quorum on, UDP heartbeats, 4
/// cores, 5 s CPU windows.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    n: usize,
    shards: usize,
    spares: usize,
    shard_spares: Vec<usize>,
    tuning: TuningConfig,
    net: NetPlan,
    congestion: Option<CongestionConfig>,
    quantization: TimerQuantization,
    udp_heartbeats: bool,
    pre_vote: bool,
    check_quorum: bool,
    suppress_heartbeats: bool,
    consolidated_timer: bool,
    cost: CostModel,
    compaction: CompactionPolicy,
    read_strategy: ReadStrategy,
    follower_reads: bool,
    pipeline_window: usize,
    max_batch_bytes: usize,
    max_batch_delay: Duration,
    max_entries_per_append: usize,
    cores: usize,
    cpu_window: Duration,
    seed: u64,
    workload: Option<WorkloadSpec>,
    client_link: NetParams,
}

impl ScenarioBuilder {
    /// Start a scenario with `n` servers on the stable 100 ms mesh.
    #[must_use]
    pub fn cluster(n: usize) -> Self {
        Self {
            n,
            shards: 1,
            spares: 0,
            shard_spares: Vec::new(),
            tuning: TuningConfig::raft_default(),
            net: NetPlan::stable(Duration::from_millis(100)),
            congestion: None,
            quantization: TimerQuantization::Tick,
            udp_heartbeats: true,
            pre_vote: true,
            check_quorum: true,
            suppress_heartbeats: false,
            consolidated_timer: false,
            cost: CostModel::default(),
            compaction: CompactionPolicy::default(),
            read_strategy: ReadStrategy::default(),
            follower_reads: true,
            pipeline_window: 4,
            max_batch_bytes: 64 * 1024,
            max_batch_delay: Duration::from_millis(1),
            max_entries_per_append: 8192,
            cores: 4,
            cpu_window: Duration::from_secs(5),
            seed: 0,
            workload: None,
            client_link: NetParams::lan(),
        }
    }

    /// Select the tuning mode (Raft / Raft-Low / Fix-K / Dynatune).
    #[must_use]
    pub fn tuning(mut self, tuning: TuningConfig) -> Self {
        self.tuning = tuning;
        self
    }

    /// The shard dimension: partition the keyspace across `shards`
    /// independent Raft groups of `n` replicas each (default 1 — the
    /// classic single group). Resolved by [`Self::build_sharded`]; the net
    /// plan then covers all `shards * n` servers.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Attach `spares` outsider servers to the single group: hosts on the
    /// fabric from t=0 that belong to no quorum until a configuration
    /// change admits them (elastic scale-out; see
    /// [`ClusterSim::propose_conf_change`](crate::sim::ClusterSim::propose_conf_change)).
    /// The net plan must be uniform/custom — geo plans name one region per
    /// voter and cannot place spares.
    #[must_use]
    pub fn spares(mut self, spares: usize) -> Self {
        self.spares = spares;
        self
    }

    /// Attach one spare outsider server to `shard` in a sharded scenario
    /// (rebalancing target). May be called repeatedly; spare hosts occupy
    /// world ids after every mapped replica, in call order.
    #[must_use]
    pub fn spare_for_shard(mut self, shard: usize) -> Self {
        self.shard_spares.push(shard);
        self
    }

    /// Set the network plan.
    #[must_use]
    pub fn net(mut self, net: NetPlan) -> Self {
        self.net = net;
        self
    }

    /// Override the congestion model (default: the net plan's choice).
    #[must_use]
    pub fn congestion(mut self, congestion: CongestionConfig) -> Self {
        self.congestion = Some(congestion);
        self
    }

    /// Election-timer quantization.
    #[must_use]
    pub fn quantization(mut self, quantization: TimerQuantization) -> Self {
        self.quantization = quantization;
        self
    }

    /// Heartbeats over UDP (paper hybrid transport) or TCP (ablation).
    #[must_use]
    pub fn udp_heartbeats(mut self, udp: bool) -> Self {
        self.udp_heartbeats = udp;
        self
    }

    /// Pre-vote on/off.
    #[must_use]
    pub fn pre_vote(mut self, pre_vote: bool) -> Self {
        self.pre_vote = pre_vote;
        self
    }

    /// Check-quorum on/off.
    #[must_use]
    pub fn check_quorum(mut self, check_quorum: bool) -> Self {
        self.check_quorum = check_quorum;
        self
    }

    /// §IV-E extensions: suppress heartbeats while replicating and/or the
    /// consolidated heartbeat timer.
    #[must_use]
    pub fn extensions(mut self, suppress: bool, consolidated: bool) -> Self {
        self.suppress_heartbeats = suppress;
        self.consolidated_timer = consolidated;
        self
    }

    /// CPU cost model.
    #[must_use]
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Log-compaction policy: compact past `threshold` live entries, keep a
    /// `tail` of slack. Scenarios shrink both to exercise snapshot-based
    /// catch-up at simulation-friendly write volumes.
    #[must_use]
    pub fn compaction(mut self, threshold: usize, tail: u64) -> Self {
        self.compaction = CompactionPolicy { threshold, tail };
        self
    }

    /// Read-serving strategy: the log-replicated baseline, pure ReadIndex,
    /// or leader-lease reads with ReadIndex fallback (the default).
    #[must_use]
    pub fn reads(mut self, strategy: ReadStrategy) -> Self {
        self.read_strategy = strategy;
        self
    }

    /// Whether followers answer forwarded reads locally (default: yes,
    /// under any log-free read strategy).
    #[must_use]
    pub fn follower_reads(mut self, enabled: bool) -> Self {
        self.follower_reads = enabled;
        self
    }

    /// Max unacked appends in flight per follower (default 4; 1 recovers
    /// the pre-pipelining ping-pong for ablations).
    #[must_use]
    pub fn pipeline_window(mut self, window: usize) -> Self {
        self.pipeline_window = window;
        self
    }

    /// Group-commit thresholds: flush buffered proposals once `bytes` of
    /// payload accumulate or `delay` after the first buffered proposal,
    /// whichever comes first.
    #[must_use]
    pub fn group_commit(mut self, bytes: usize, delay: Duration) -> Self {
        self.max_batch_bytes = bytes;
        self.max_batch_delay = delay;
        self
    }

    /// Hard cap on entries per `AppendEntries` message. Scenarios shrink
    /// it so replication stays RTT-bound and the pipeline depth shows.
    #[must_use]
    pub fn max_entries_per_append(mut self, cap: usize) -> Self {
        self.max_entries_per_append = cap;
        self
    }

    /// Cores per server (paper: 4 for Figs. 4–6, 2 for Fig. 7).
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Utilization sampling window.
    #[must_use]
    pub fn cpu_window(mut self, window: Duration) -> Self {
        self.cpu_window = window;
        self
    }

    /// Master seed; all randomness derives from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach an open-loop client workload.
    #[must_use]
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// Network parameters of client↔server links.
    #[must_use]
    pub fn client_link(mut self, params: NetParams) -> Self {
        self.client_link = params;
        self
    }

    /// Resolve into the flat [`ClusterConfig`].
    ///
    /// # Panics
    /// Panics when a shard dimension was set: a sharded scenario resolves
    /// through [`Self::build_sharded`], not the single-group config.
    #[must_use]
    pub fn build(self) -> ClusterConfig {
        assert_eq!(
            self.shards, 1,
            "a sharded builder resolves via build_sharded()"
        );
        assert!(
            self.shard_spares.is_empty(),
            "per-shard spares resolve via build_sharded()"
        );
        let congestion = self
            .congestion
            .unwrap_or_else(|| self.net.default_congestion());
        ClusterConfig {
            n: self.n,
            spare_servers: self.spares,
            tuning: self.tuning,
            topology: self.net.topology(self.n + self.spares),
            congestion,
            quantization: self.quantization,
            udp_heartbeats: self.udp_heartbeats,
            pre_vote: self.pre_vote,
            check_quorum: self.check_quorum,
            suppress_heartbeats: self.suppress_heartbeats,
            consolidated_timer: self.consolidated_timer,
            cost: self.cost,
            compaction: self.compaction,
            read_strategy: self.read_strategy,
            follower_reads: self.follower_reads,
            pipeline_window: self.pipeline_window,
            max_batch_bytes: self.max_batch_bytes,
            max_batch_delay: self.max_batch_delay,
            max_entries_per_append: self.max_entries_per_append,
            cores: self.cores,
            cpu_window: self.cpu_window,
            seed: self.seed,
            workload: self.workload,
            client_link: self.client_link,
        }
    }

    /// Build and instantiate the cluster.
    #[must_use]
    pub fn build_sim(self) -> ClusterSim {
        ClusterSim::new(&self.build())
    }

    /// Resolve into a [`ShardedConfig`]: `shards` independent groups of
    /// `n` replicas each, the net plan resolved over all servers.
    #[must_use]
    pub fn build_sharded(self) -> ShardedConfig {
        assert_eq!(self.spares, 0, "single-group spares resolve via build()");
        let map = ShardMap::new(self.shards, self.n);
        for &shard in &self.shard_spares {
            assert!(shard < self.shards, "spare names a shard out of range");
        }
        let congestion = self
            .congestion
            .unwrap_or_else(|| self.net.default_congestion());
        let n_hosts = map.n_servers() + self.shard_spares.len();
        ShardedConfig {
            map,
            spares: self.shard_spares,
            tuning: self.tuning,
            topology: self.net.topology(n_hosts),
            congestion,
            quantization: self.quantization,
            udp_heartbeats: self.udp_heartbeats,
            pre_vote: self.pre_vote,
            check_quorum: self.check_quorum,
            cost: self.cost,
            compaction: self.compaction,
            read_strategy: self.read_strategy,
            follower_reads: self.follower_reads,
            read_fanout: false,
            pipeline_window: self.pipeline_window,
            max_batch_bytes: self.max_batch_bytes,
            max_batch_delay: self.max_batch_delay,
            max_entries_per_append: self.max_entries_per_append,
            cores: self.cores,
            cpu_window: self.cpu_window,
            seed: self.seed,
            workload: self.workload,
            client_link: self.client_link,
        }
    }

    /// Build and instantiate the sharded cluster.
    #[must_use]
    pub fn build_sharded_sim(self) -> ShardedClusterSim {
        ShardedClusterSim::new(&self.build_sharded())
    }

    /// Resolve into a [`BrokerConfig`]: the same placement and replication
    /// knobs as [`Self::build_sharded`], serving the broker app with
    /// `workload` driving producers and consumer groups.
    #[must_use]
    pub fn build_broker(self, workload: BrokerWorkload) -> BrokerConfig {
        let map = ShardMap::new(self.shards, self.n);
        let congestion = self
            .congestion
            .unwrap_or_else(|| self.net.default_congestion());
        BrokerConfig {
            map,
            tuning: self.tuning,
            topology: self.net.topology(map.n_servers()),
            congestion,
            quantization: self.quantization,
            udp_heartbeats: self.udp_heartbeats,
            pre_vote: self.pre_vote,
            check_quorum: self.check_quorum,
            cost: self.cost,
            compaction: self.compaction,
            read_strategy: self.read_strategy,
            follower_reads: self.follower_reads,
            pipeline_window: self.pipeline_window,
            max_batch_bytes: self.max_batch_bytes,
            max_batch_delay: self.max_batch_delay,
            max_entries_per_append: self.max_entries_per_append,
            cores: self.cores,
            cpu_window: self.cpu_window,
            seed: self.seed,
            workload: Some(workload),
            client_link: self.client_link,
        }
    }

    /// Build and instantiate the broker cluster.
    #[must_use]
    pub fn build_broker_sim(self, workload: BrokerWorkload) -> BrokerClusterSim {
        BrokerClusterSim::new(&self.build_broker(workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_simnet::SimTime;

    #[test]
    fn builder_defaults_match_stable_constructor() {
        let built = ScenarioBuilder::cluster(5)
            .tuning(TuningConfig::dynatune())
            .seed(7)
            .build();
        let stable =
            ClusterConfig::stable(5, TuningConfig::dynatune(), Duration::from_millis(100), 7);
        assert_eq!(built.n, stable.n);
        assert_eq!(built.cores, stable.cores);
        assert_eq!(built.pre_vote, stable.pre_vote);
        assert_eq!(built.check_quorum, stable.check_quorum);
        assert_eq!(built.udp_heartbeats, stable.udp_heartbeats);
        assert_eq!(built.seed, stable.seed);
        assert_eq!(
            built.topology.schedule(0, 1).params_at(SimTime::ZERO),
            stable.topology.schedule(0, 1).params_at(SimTime::ZERO)
        );
        assert!(!built.congestion.enabled());
    }

    #[test]
    fn geo_plan_enables_wan_congestion_by_default() {
        let cfg = ScenarioBuilder::cluster(5).net(NetPlan::geo()).build();
        assert!(cfg.congestion.enabled());
        assert_eq!(
            cfg.topology.schedule(0, 1).params_at(SimTime::ZERO).rtt,
            Duration::from_millis(210), // Tokyo–London
        );
    }

    #[test]
    fn geo_degraded_overrides_one_pair() {
        let slow = LinkSchedule::constant(NetParams::wan(Duration::from_millis(900)));
        let cfg = ScenarioBuilder::cluster(5)
            .net(NetPlan::GeoDegraded {
                regions: Region::ALL.to_vec(),
                overrides: vec![(0, 1, slow)],
            })
            .build();
        assert_eq!(
            cfg.topology.schedule(0, 1).params_at(SimTime::ZERO).rtt,
            Duration::from_millis(900)
        );
        assert_eq!(
            cfg.topology.schedule(1, 0).params_at(SimTime::ZERO).rtt,
            Duration::from_millis(900)
        );
        // Other pairs keep the preset matrix.
        assert_eq!(
            cfg.topology.schedule(0, 2).params_at(SimTime::ZERO).rtt,
            Duration::from_millis(110)
        );
    }

    #[test]
    #[should_panic(expected = "one region per server")]
    fn geo_plan_size_mismatch_panics() {
        let _ = ScenarioBuilder::cluster(3).net(NetPlan::geo()).build();
    }
}
