//! Ablation studies over Dynatune's design knobs, as one registered
//! experiment.

use crate::experiments::ablation;
use crate::scenario::{Experiment, Report, RunCtx};

/// Quantization / safety factor / arrival probability / warm-up /
/// transport / pre-vote ablations (DESIGN.md §5).
pub struct Ablations;

impl Experiment for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn describe(&self) -> &'static str {
        "quantization / safety factor / arrival probability / warm-up / transport / pre-vote"
    }
    fn headline_metric(&self) -> &'static str {
        "per-mechanism contribution to detection time (transport, quantization, pre-vote)"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; ablation deltas reported, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let trials = ctx.trials_or(100, 12);
        let seed = ctx.system_seed("ablations");
        let mut report = Report::new(self.name());

        report.table(
            format!("[1/6] election-timer quantization (Dynatune, {trials} trials each)").as_str(),
            ["quantization", "detection (ms)", "OTS (ms)"],
            ablation::quantization(trials, seed)
                .into_iter()
                .map(|row| {
                    vec![
                        format!("{:?}", row.quantization),
                        format!("{:.0}", row.detection_ms),
                        format!("{:.0}", row.ots_ms),
                    ]
                })
                .collect(),
        );
        report.note(
            "(tick quantization inflates detection to ~2*Et; continuous sits near ~1.2*Et + phase)",
        );

        report.table(
            format!("[2/6] safety factor s in Et = mu + s*sigma ({trials} trials each)").as_str(),
            ["s", "detection (ms)", "false timeouts/min @20% jitter"],
            ablation::safety_factor(&[0.5, 1.0, 2.0, 4.0], trials, seed)
                .into_iter()
                .map(|row| {
                    vec![
                        format!("{:.1}", row.s),
                        format!("{:.0}", row.detection_ms),
                        format!("{:.2}", row.false_timeouts_per_min),
                    ]
                })
                .collect(),
        );
        report
            .note("(smaller s detects faster but false-detects under jitter; the paper picks s=2)");

        report.table(
            "[3/6] arrival probability x at 20% loss (pure formula)",
            ["x", "K", "h for Et=200ms (ms)"],
            ablation::arrival_probability(&[0.9, 0.99, 0.999, 0.9999, 0.99999], 0.20)
                .into_iter()
                .map(|row| {
                    vec![
                        format!("{}", row.x),
                        format!("{}", row.k),
                        format!("{:.1}", row.h_ms),
                    ]
                })
                .collect(),
        );

        report.table(
            "[4/6] minListSize warm-up after leader election",
            ["minListSize", "warm-up (s)"],
            ablation::min_list_size(&[5, 10, 50, 100], seed)
                .into_iter()
                .map(|row| {
                    vec![
                        format!("{}", row.min_list_size),
                        format!("{:.1}", row.warmup_secs),
                    ]
                })
                .collect(),
        );
        report.note("(paper default 10: tuned parameters engage ~1s after a leader appears)");

        report.table(
            "[5/6] UDP vs TCP heartbeats at 15% link loss",
            ["transport", "measured loss", "tuned h (ms)"],
            ablation::transport(seed)
                .into_iter()
                .map(|row| {
                    vec![
                        if row.udp_heartbeats {
                            "UDP (paper)"
                        } else {
                            "TCP (stock etcd)"
                        }
                        .to_string(),
                        format!("{:.3}", row.measured_loss),
                        format!("{:.0}", row.h_ms),
                    ]
                })
                .collect(),
        );
        report.note(
            "(TCP hides loss behind retransmission, blinding the estimator — the §III-E motivation)",
        );

        report.table(
            "[6/6] pre-vote on/off under the Fig. 6b radical RTT step (Dynatune)",
            ["pre-vote", "OTS (s)", "timer expiries", "leader changes"],
            ablation::pre_vote(seed)
                .into_iter()
                .map(|row| {
                    vec![
                        if row.pre_vote {
                            "on (etcd default)"
                        } else {
                            "off (classic Raft)"
                        }
                        .to_string(),
                        format!("{:.1}", row.total_ots_secs),
                        format!("{}", row.timeouts),
                        format!("{}", row.leader_changes),
                    ]
                })
                .collect(),
        );
        report.note(
            "(without pre-vote, false detections at the RTT step bump terms and depose the healthy leader)",
        );
        report
    }
}
