//! Broker scenarios: produce throughput, exactly-once failover, and
//! consumer fan-out over the replicated topic/partition broker.
//!
//! These are the serving-layer proof that the broker subsystem composes
//! with everything underneath it: produces ride the origin-deduped
//! replicated path (PR 4), fetches the log-free read path (PR 5), and
//! partitions map onto independent Raft groups exactly like KV shards
//! (PR 3). Each scenario hard-asserts its correctness claim in-run, so the
//! CI smoke pass — not just the full benchmark — catches a regression.

use super::wired;
use crate::broker::{BrokerWorkload, ConsumerStats};
use crate::scenario::{Experiment, NetPlan, Report, RunCtx, ScenarioBuilder};
use dynatune_core::TuningConfig;
use dynatune_simnet::SimTime;
use rayon::prelude::*;
use std::time::Duration;

/// Replicas per partition's Raft group, all broker scenarios.
const REPLICAS: usize = 3;

/// Sum a group list's checker violations (must all be zero everywhere).
fn violations(groups: &[ConsumerStats]) -> u64 {
    groups
        .iter()
        .map(|g| g.lost + g.duplicated + g.out_of_order)
        .sum()
}

fn assert_exactly_once(scenario: &str, groups: &[ConsumerStats]) {
    for (g, s) in groups.iter().enumerate() {
        assert_eq!(s.lost, 0, "{scenario}: group {g} lost {} records", s.lost);
        assert_eq!(
            s.duplicated, 0,
            "{scenario}: group {g} saw {} duplicated records",
            s.duplicated
        );
        assert_eq!(
            s.out_of_order, 0,
            "{scenario}: group {g} saw {} records out of offset order",
            s.out_of_order
        );
    }
}

// ---------------------------------------------------------------------------
// broker_produce_throughput
// ---------------------------------------------------------------------------

/// Pipeline windows compared; 1 is the pre-pipelining ping-pong baseline.
const WINDOWS: [usize; 2] = [1, 8];

/// Records per produce batch, kept small so many single-entry commands
/// queue at the leader and the replication window — not one huge batch —
/// is what hides the RTT.
const PRODUCE_BATCH_MAX: usize = 16;

/// Entry cap per `AppendEntries`, same rationale as `pipeline_depth`.
const APPEND_CAP: usize = 8;

#[derive(Debug, Clone, PartialEq)]
struct ProduceRun {
    acked_records: u64,
    acked_bytes: u64,
    batches: u64,
    mean_latency_ms: f64,
    hold_secs: f64,
}

fn produce_run(seed: u64, window: usize, hold: Duration) -> ProduceRun {
    let start = Duration::from_secs(3);
    let wl = BrokerWorkload {
        topics: vec![("orders".into(), 8)],
        produce_rps: 6_000.0,
        record_bytes: 256,
        batch_max: PRODUCE_BATCH_MAX,
        groups: 0,
        fetch_max: 256,
        commit_every: 100,
        fanout_fetch: false,
        start_offset: start,
        produce_for: None,
        request_timeout: Duration::from_secs(1),
    };
    let mut sim = ScenarioBuilder::cluster(REPLICAS)
        .tuning(TuningConfig::raft_default())
        .shards(2)
        .net(NetPlan::stable(Duration::from_millis(50)))
        .pipeline_window(window)
        .max_entries_per_append(APPEND_CAP)
        .seed(seed)
        .build_broker_sim(wl);
    sim.run_until(SimTime::ZERO + start + hold);
    let stats = wired(sim.stats(), "the builder attached a produce workload");
    ProduceRun {
        acked_records: stats.acked_records,
        acked_bytes: stats.acked_bytes,
        batches: stats.produce_batches,
        mean_latency_ms: stats.produce_latency_ms.mean(),
        hold_secs: hold.as_secs_f64(),
    }
}

/// Produce throughput over the broker: records/s and bytes/s acknowledged,
/// window-8 replication pipelining against the window-1 ping-pong.
pub struct BrokerProduceThroughput;

impl Experiment for BrokerProduceThroughput {
    fn name(&self) -> &'static str {
        "broker_produce_throughput"
    }

    fn describe(&self) -> &'static str {
        "broker produce throughput (records/s, bytes/s) with pipelined vs ping-pong replication"
    }

    fn headline_metric(&self) -> &'static str {
        "acked produce bytes/s, window 8 over window 1 (>= 1.2x)"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts window 8 acks >= 1.2x the produce bytes of window 1"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let hold = Duration::from_secs(ctx.scale(12, 4) as u64);
        let runs: Vec<ProduceRun> = WINDOWS
            .into_par_iter()
            .map(|w| produce_run(ctx.system_seed(&format!("window{w}")), w, hold))
            .collect();
        let mut report = Report::new(self.name());
        report.table(
            "acked produce throughput by pipeline window (1 topic x 8 partitions \
             over 2 groups of 3 replicas, 50 ms RTT, 256 B records)",
            [
                "window",
                "records/s",
                "KiB/s",
                "batches",
                "mean batch latency (ms)",
            ],
            WINDOWS
                .iter()
                .zip(runs.iter())
                .map(|(&w, r)| {
                    vec![
                        format!("{w}"),
                        format!("{:.0}", r.acked_records as f64 / r.hold_secs),
                        format!("{:.0}", r.acked_bytes as f64 / 1024.0 / r.hold_secs),
                        format!("{}", r.batches),
                        format!("{:.1}", r.mean_latency_ms),
                    ]
                })
                .collect(),
        );
        let ratio = runs[1].acked_bytes as f64 / runs[0].acked_bytes.max(1) as f64;
        report.headline(
            "acked produce bytes, window 8 / window 1",
            ">= 1.2x",
            &format!("{ratio:.2}x"),
        );
        report.note(
            "each produce command is one log entry, so with small batches the\n\
             per-follower window bounds how many entries replicate per RTT;\n\
             the closed-loop producers convert that commit-latency cut\n\
             directly into throughput.",
        );
        assert!(
            ratio >= 1.2,
            "pipelined replication must lift produce throughput >= 1.2x, got \
             {ratio:.2}x ({} vs {} bytes)",
            runs[1].acked_bytes,
            runs[0].acked_bytes
        );
        report
    }
}

// ---------------------------------------------------------------------------
// consumer_lag_failover
// ---------------------------------------------------------------------------

/// Lag sampling cadence while the failover plays out.
const LAG_SAMPLE: Duration = Duration::from_millis(500);

/// Crash a partition leader mid-stream and prove the pipeline's guarantee:
/// no record lost, none duplicated, offsets in order, and consumer lag
/// spikes then drains back to zero.
pub struct ConsumerLagFailover;

impl Experiment for ConsumerLagFailover {
    fn name(&self) -> &'static str {
        "consumer_lag_failover"
    }

    fn describe(&self) -> &'static str {
        "crash a partition leader mid-stream; exactly-once delivery and bounded lag recovery"
    }

    fn headline_metric(&self) -> &'static str {
        "records lost + duplicated across the failover (= 0)"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts zero loss/duplication/reorder, full drain, and lag back to 0"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let produce_secs = ctx.scale(16, 8) as u64;
        let start = Duration::from_secs(3);
        let crash_at = SimTime::ZERO + start + Duration::from_secs(produce_secs / 2);
        let wl = BrokerWorkload::steady(vec![("events".into(), 4)], 800.0)
            .starting_at(start)
            .produce_for(Duration::from_secs(produce_secs));
        let mut sim = ScenarioBuilder::cluster(REPLICAS)
            .tuning(TuningConfig::raft_default())
            .shards(2)
            .net(NetPlan::stable(Duration::from_millis(20)))
            .seed(ctx.system_seed("failover"))
            .build_broker_sim(wl);
        // Advance in lag-sample steps, crashing the shard-0 leader halfway
        // through the produce phase and recording the recovery curve.
        let end = SimTime::ZERO + start + Duration::from_secs(produce_secs + 8);
        let mut crashed: Option<u64> = None;
        let mut samples: Vec<(f64, u64)> = Vec::new();
        let mut t = SimTime::ZERO + start;
        while t < end {
            t = (t + LAG_SAMPLE).min(end);
            sim.run_until(t);
            if crashed.is_none() && t >= crash_at {
                let victim = wired(
                    sim.leader_of(0),
                    "shard 0 elected a leader during the pre-crash produce phase",
                );
                sim.crash(victim);
                crashed = Some(victim as u64);
            }
            // End-to-end backlog: records generated but not yet read back.
            // The partition-side high-watermark gap would hide the outage
            // (during it the producers stall too, so the backlog queues
            // client-side); produced-minus-consumed sees the whole pipe.
            let consumed = wired(sim.consumer_stats(), "the workload runs consumer groups")
                .iter()
                .map(|g| g.consumed)
                .sum::<u64>();
            let produced = wired(sim.stats(), "the builder attached a produce workload").produced;
            samples.push(((t - SimTime::ZERO).as_secs_f64(), produced - consumed));
        }
        let stats = wired(sim.stats(), "the builder attached a produce workload");
        let groups = wired(sim.consumer_stats(), "the workload runs consumer groups");
        // Peak as the consumer saw it (per-fetch high-watermark gap) and as
        // the end-to-end samples saw it.
        let peak_fetch = groups[0].max_lag;
        let crash_secs = (crash_at - SimTime::ZERO).as_secs_f64();
        let peak_backlog = samples.iter().map(|&(_, l)| l).max().unwrap_or(0);
        let drained_at = samples
            .iter()
            .skip_while(|&&(at, _)| at < crash_secs)
            .find(|&&(_, l)| l == 0)
            .map(|&(at, _)| at);

        let mut report = Report::new(self.name());
        report.table(
            "failover outcome (1 topic x 4 partitions, 800 rec/s, shard-0 \
             leader crashed mid-stream)",
            ["metric", "value"],
            vec![
                vec!["records produced".into(), format!("{}", stats.produced)],
                vec!["records acked".into(), format!("{}", stats.acked_records)],
                vec!["records consumed".into(), format!("{}", groups[0].consumed)],
                vec!["produce retries".into(), format!("{}", stats.retries)],
                vec!["offset commits".into(), format!("{}", groups[0].commits)],
                vec![
                    "peak consumer lag (per fetch)".into(),
                    format!("{peak_fetch}"),
                ],
                vec!["peak end-to-end backlog".into(), format!("{peak_backlog}")],
                vec![
                    "crash at / backlog drained at".into(),
                    format!(
                        "{crash_secs:.1} s / {}",
                        drained_at.map_or("never".into(), |s| format!("{s:.1} s"))
                    ),
                ],
                vec![
                    "crashed host".into(),
                    crashed.map_or("-".into(), |id| format!("{id}")),
                ],
            ],
        );
        report.headline(
            "records lost + duplicated + reordered",
            "= 0",
            &format!("{}", violations(&groups)),
        );
        report.headline(
            "consumer lag at end of drain",
            "= 0",
            &format!("{}", groups[0].current_lag),
        );
        report.note(
            "one in-flight produce per partition, unbounded same-id retries and\n\
             the replicated reply cache make the crash invisible to the stream:\n\
             the retried batch dedupes server-side, offsets stay dense, and the\n\
             consumer drains the backlog once the new leader serves.",
        );
        report.artifact(
            "consumer_lag_failover_backlog.csv",
            std::iter::once("t_secs,backlog_records".to_string())
                .chain(samples.iter().map(|(at, l)| format!("{at:.1},{l}")))
                .collect::<Vec<_>>()
                .join("\n")
                + "\n",
        );
        assert_exactly_once(self.name(), &groups);
        assert_eq!(
            stats.acked_records, stats.produced,
            "drain must ack every produced record"
        );
        assert_eq!(
            groups[0].consumed, stats.produced,
            "consumer must read back exactly what was produced"
        );
        assert_eq!(groups[0].current_lag, 0, "lag must recover to zero");
        assert!(
            stats.retries + stats.redirects > 0,
            "the crash must actually disrupt the produce path"
        );
        assert!(groups[0].commits > 0, "offsets must commit durably");
        assert!(
            drained_at.is_some(),
            "end-to-end backlog must drain to zero after the crash"
        );
        report
    }
}

// ---------------------------------------------------------------------------
// consumer_fanout
// ---------------------------------------------------------------------------

/// Consumer-group counts swept by the fan-out scenario.
const GROUP_COUNTS: [usize; 3] = [1, 4, 8];

#[derive(Debug, Clone, PartialEq)]
struct FanoutRun {
    leader_cpu_pct: f64,
    follower_reads: u64,
    leader_reads: u64,
    consumed: u64,
    checker_violations: u64,
}

fn fanout_run(seed: u64, groups: usize, fanout: bool, hold: Duration) -> FanoutRun {
    let start = Duration::from_secs(3);
    let wl = BrokerWorkload::steady(vec![("feed".into(), 4)], 1_200.0)
        .starting_at(start)
        .groups(groups)
        .fanout(fanout);
    let mut sim = ScenarioBuilder::cluster(REPLICAS)
        .tuning(TuningConfig::raft_default())
        .shards(2)
        .net(NetPlan::stable(Duration::from_millis(20)))
        .seed(seed)
        .build_broker_sim(wl);
    let from = SimTime::ZERO + start;
    let to = from + hold;
    sim.run_until(to);
    // Mean CPU of the current group leaders over the workload window
    // (stable net, no faults: leadership does not move mid-run).
    let leaders: Vec<_> = sim.leaders().into_iter().flatten().collect();
    let leader_cpu_pct = leaders
        .iter()
        .map(|&id| sim.with_server(id, |s| s.cpu().mean_utilization(from, to)))
        .sum::<f64>()
        / leaders.len().max(1) as f64;
    let reads = sim.read_counters();
    let group_stats = wired(sim.consumer_stats(), "the workload runs consumer groups");
    FanoutRun {
        leader_cpu_pct,
        follower_reads: reads.follower,
        leader_reads: reads.lease + reads.read_index,
        consumed: group_stats.iter().map(|g| g.consumed).sum(),
        checker_violations: violations(&group_stats),
    }
}

/// Scale consumer groups with fetches pinned to per-group replicas: the
/// fan-out keeps the partition leaders' CPU flat while leader-only
/// consumption grows with every added group.
pub struct ConsumerFanout;

impl Experiment for ConsumerFanout {
    fn name(&self) -> &'static str {
        "consumer_fanout"
    }

    fn describe(&self) -> &'static str {
        "scale consumer groups on follower fetches; leaders shed the fan-out load"
    }

    fn headline_metric(&self) -> &'static str {
        "leader CPU at 8 groups, follower fan-out over leader-only (<= 0.85x)"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts fan-out leader CPU <= 0.85x leader-only at 8 groups, sublinear growth, clean checker"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let hold = Duration::from_secs(ctx.scale(10, 4) as u64);
        // Sweep groups with fan-out, plus the leader-only counterfactual at
        // the top group count.
        let combos: Vec<(usize, bool)> = GROUP_COUNTS
            .iter()
            .map(|&g| (g, true))
            .chain([(GROUP_COUNTS[GROUP_COUNTS.len() - 1], false)])
            .collect();
        let runs: Vec<FanoutRun> = combos
            .clone()
            .into_par_iter()
            .map(|(groups, fanout)| {
                let label = format!("groups{groups}/fanout{fanout}");
                fanout_run(ctx.system_seed(&label), groups, fanout, hold)
            })
            .collect();
        let cell = |groups: usize, fanout: bool| -> &FanoutRun {
            let i = wired(
                combos.iter().position(|&(g, f)| g == groups && f == fanout),
                "every (groups, fanout) cell queried below was swept above",
            );
            &runs[i]
        };
        let max_groups = GROUP_COUNTS[GROUP_COUNTS.len() - 1];

        let mut report = Report::new(self.name());
        report.table(
            "consumer fan-out (1 topic x 4 partitions, 1200 rec/s produce, \
             2 groups of 3 replicas)",
            [
                "groups",
                "fetch target",
                "leader CPU (%)",
                "follower reads",
                "leader reads",
                "consumed",
            ],
            combos
                .iter()
                .zip(runs.iter())
                .map(|(&(g, fanout), r)| {
                    vec![
                        format!("{g}"),
                        if fanout { "followers" } else { "leader" }.into(),
                        format!("{:.1}", r.leader_cpu_pct),
                        format!("{}", r.follower_reads),
                        format!("{}", r.leader_reads),
                        format!("{}", r.consumed),
                    ]
                })
                .collect(),
        );
        let fan = cell(max_groups, true);
        let solo = cell(max_groups, false);
        let cpu_ratio = fan.leader_cpu_pct / solo.leader_cpu_pct.max(1e-9);
        report.headline(
            &format!("leader CPU at {max_groups} groups, fan-out / leader-only"),
            "<= 0.85x",
            &format!("{cpu_ratio:.2}x"),
        );
        let growth = cell(max_groups, true).leader_cpu_pct / cell(1, true).leader_cpu_pct.max(1e-9);
        report.headline(
            &format!("fan-out leader CPU growth, 1 -> {max_groups} groups"),
            "<= 2x (sublinear)",
            &format!("{growth:.2}x"),
        );
        report.note(
            "every consumer group pins its fetches to one replica of the\n\
             partition's group, so added groups land on followers; the leader\n\
             keeps paying only for replication and its own share of fetches.",
        );
        assert!(
            cpu_ratio <= 0.85,
            "follower fan-out must unload the leaders: {:.1}% vs {:.1}% \
             ({cpu_ratio:.2}x)",
            fan.leader_cpu_pct,
            solo.leader_cpu_pct
        );
        assert!(
            growth <= 2.0,
            "{}x more groups must cost the leaders under 2x CPU, got {growth:.2}x",
            max_groups
        );
        assert!(
            fan.follower_reads > solo.follower_reads,
            "fan-out must move fetches onto followers ({} vs {})",
            fan.follower_reads,
            solo.follower_reads
        );
        for (&(g, fanout), r) in combos.iter().zip(runs.iter()) {
            assert_eq!(
                r.checker_violations, 0,
                "checker violations at groups={g} fanout={fanout}"
            );
            assert!(
                r.consumed > 0,
                "groups={g} fanout={fanout} consumed nothing"
            );
        }
        report
    }
}
