//! Compaction / snapshot-transfer scenarios: the memory-bound story.
//!
//! Before snapshot transfer existed, compaction was pinned by the slowest
//! follower (`safe_compact_index = min match_index`), so one crashed node
//! made the leader's log grow without bound — and a follower restarted
//! past the compaction horizon could stall forever (conflict backoff drove
//! `next_index` below `first_index()` and `send_append` silently gave up).
//! These scenarios enforce the post-fix contract on every CI push:
//!
//! * [`LaggingFollowerCatchup`] — take a follower down, write far past the
//!   compaction horizon, restart it, and assert it converges via
//!   `InstallSnapshot` while the leader's live log stays within
//!   `threshold + tail` throughout the outage;
//! * [`CompactionChurn`] — a long-running crash/heal churn across rotating
//!   followers under sustained load, asserting the same bound holds over
//!   repeated snapshot-recovery cycles and that replicas converge at the
//!   end.

use super::wired;
use crate::scenario::{Experiment, Report, RunCtx, ScenarioBuilder};
use crate::sim::{ClusterSim, WorkloadSpec};
use dynatune_core::TuningConfig;
use dynatune_raft::NodeId;
use dynatune_simnet::SimTime;
use rayon::prelude::*;
use std::time::Duration;

/// Compaction policy the scenarios run with: small enough that a few
/// simulated seconds of writes cross the horizon.
const THRESHOLD: usize = 1_500;
/// Retained tail of applied entries below the compaction point.
const TAIL: u64 = 256;
/// Offered write load (req/s) during the scenarios.
const RPS: f64 = 800.0;

/// The asserted memory bound: compaction triggers at `THRESHOLD` and keeps
/// `TAIL` slack, so the live log must never exceed their sum.
const LOG_BOUND: usize = THRESHOLD + TAIL as usize;

fn cluster(seed: u64, hold: Duration) -> ClusterSim {
    ScenarioBuilder::cluster(3)
        .tuning(TuningConfig::raft_default())
        .compaction(THRESHOLD, TAIL)
        .seed(seed)
        .workload(WorkloadSpec::steady(RPS, hold).starting_at(Duration::from_secs(5)))
        .build_sim()
}

/// Advance `sim` to `deadline` in small steps, tracking the largest live
/// log observed anywhere. The fine grain matters: the bound must hold
/// *throughout* the outage, not just at the end.
fn run_tracking_log(sim: &mut ClusterSim, deadline: SimTime, max_log: &mut usize) {
    while sim.now() < deadline {
        let step = (sim.now() + Duration::from_millis(250)).min(deadline);
        sim.run_until(step);
        *max_log = (*max_log).max(sim.max_log_len());
    }
}

/// Digests of all live servers' KV state (replica-convergence check).
fn digests(sim: &ClusterSim) -> Vec<u64> {
    (0..sim.n_servers())
        .map(|id| sim.with_server(id, |s| s.node().state_machine().digest()))
        .collect()
}

fn pick_follower(sim: &ClusterSim) -> (NodeId, NodeId) {
    let leader = wired(sim.leader(), "the settle window elects before the fault");
    let follower = wired(
        (0..sim.n_servers()).find(|&id| id != leader),
        "a 3-replica cluster always has a non-leader",
    );
    (leader, follower)
}

/// One catch-up trial's measurements.
#[derive(Debug, Clone, PartialEq)]
struct CatchupTrial {
    max_log_len: usize,
    snapshots_sent: u64,
    compacted_past_follower: bool,
    follower_applied: u64,
    leader_commit: u64,
    converged: bool,
}

/// Crash a follower, write past the compaction horizon, restart it, and
/// measure how it converges.
fn catchup_trial(seed: u64) -> CatchupTrial {
    let mut sim = cluster(seed, Duration::from_secs(30));
    let mut max_log = 0usize;
    run_tracking_log(&mut sim, SimTime::from_secs(10), &mut max_log);
    let (_, follower) = pick_follower(&sim);
    // The outage: the follower freezes (container-sleep style) while the
    // rest of the cluster commits ~12k entries — far past the horizon.
    sim.pause(follower);
    run_tracking_log(&mut sim, SimTime::from_secs(25), &mut max_log);
    let mid_leader = wired(sim.leader(), "a paused follower cannot cost the majority");
    let first_index = sim.with_server(mid_leader, |s| s.node().log().first_index());
    let follower_match = sim.with_server(follower, |s| s.node().log().last_index());
    let compacted_past_follower = first_index > follower_match;
    // Restart: volatile state is lost (a crash, not just a sleep), then the
    // node rejoins and must be caught up by snapshot — appends cannot reach
    // below the leader's first_index.
    sim.crash(follower);
    sim.resume(follower);
    run_tracking_log(&mut sim, SimTime::from_secs(45), &mut max_log);
    let ds = digests(&sim);
    CatchupTrial {
        max_log_len: max_log,
        snapshots_sent: sim.total_snapshots_sent(),
        compacted_past_follower,
        follower_applied: sim.with_server(follower, |s| s.node().last_applied()),
        leader_commit: sim.with_server(
            wired(sim.leader(), "the healed cluster re-elects well within 45s"),
            |s| s.node().commit_index(),
        ),
        converged: ds.iter().all(|&d| d == ds[0]),
    }
}

/// Crash a follower, write past the compaction horizon, restart it: it must
/// converge via `InstallSnapshot` with the leader's log length bounded
/// throughout.
pub struct LaggingFollowerCatchup;

impl Experiment for LaggingFollowerCatchup {
    fn name(&self) -> &'static str {
        "lagging_follower_catchup"
    }

    fn describe(&self) -> &'static str {
        "restart a follower past the compaction horizon: snapshot catch-up, bounded leader log"
    }
    fn headline_metric(&self) -> &'static str {
        "max live log length against the threshold+tail bound during a follower outage"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts the log bound, >= 1 snapshot stream, convergence and catch-up per trial"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let trials = ctx.trials_or(4, 2);
        let results: Vec<CatchupTrial> = (0..trials)
            .into_par_iter()
            .map(|i| catchup_trial(ctx.system_seed(&format!("catchup/{i}"))))
            .collect();
        let mut report = Report::new(self.name());
        let rows = results
            .iter()
            .enumerate()
            .map(|(i, t)| {
                vec![
                    format!("{i}"),
                    format!("{}", t.max_log_len),
                    format!("{}", t.snapshots_sent),
                    format!("{}", t.compacted_past_follower),
                    format!("{}/{}", t.follower_applied, t.leader_commit),
                    format!("{}", t.converged),
                ]
            })
            .collect();
        report.table(
            &format!("follower outage past the horizon (threshold {THRESHOLD}, tail {TAIL})"),
            [
                "trial",
                "max log_len",
                "snapshots_sent",
                "compacted past follower",
                "follower applied / leader commit",
                "converged",
            ],
            rows,
        );
        let worst_log = results.iter().map(|t| t.max_log_len).max().unwrap_or(0);
        let total_snaps: u64 = results.iter().map(|t| t.snapshots_sent).sum();
        report.headline(
            "max log_len (bound)",
            &format!("<= {LOG_BOUND}"),
            &format!("{worst_log}"),
        );
        report.headline(
            "snapshots_sent (total)",
            ">= 1/trial",
            &format!("{total_snaps}"),
        );
        report.note(
            "pre-fix this scenario stalled permanently: compaction unpinned from the\n\
             slowest follower + conflict backoff below first_index hit send_append's\n\
             silent early-return, leaving the restarted follower behind forever.",
        );
        // CI enforcement of the bounded-memory and catch-up claims.
        for (i, t) in results.iter().enumerate() {
            assert!(
                t.compacted_past_follower,
                "trial {i}: outage must cross the compaction horizon"
            );
            assert!(
                t.max_log_len <= LOG_BOUND,
                "trial {i}: log grew to {} (> {LOG_BOUND}) — compaction pinned?",
                t.max_log_len
            );
            assert!(t.snapshots_sent >= 1, "trial {i}: no snapshot was streamed");
            assert!(t.converged, "trial {i}: replicas did not converge");
            assert!(
                t.leader_commit - t.follower_applied < 100,
                "trial {i}: follower still {} entries behind",
                t.leader_commit - t.follower_applied
            );
        }
        report
    }
}

/// One churn trial's measurements.
#[derive(Debug, Clone, PartialEq)]
struct ChurnTrial {
    cycles: usize,
    max_log_len: usize,
    snapshots_sent: u64,
    committed: u64,
    converged: bool,
}

fn churn_trial(seed: u64, cycles: usize) -> ChurnTrial {
    // Load runs through the whole churn plus a convergence window.
    let churn_secs = 10 + 12 * cycles as u64;
    let mut sim = cluster(seed, Duration::from_secs(churn_secs));
    let mut max_log = 0usize;
    run_tracking_log(&mut sim, SimTime::from_secs(10), &mut max_log);
    for _cycle in 0..cycles {
        let (_, follower) = pick_follower(&sim);
        // Down for 8s of sustained writes (~6.4k entries — past the
        // horizon), then a crash-restart rejoin.
        sim.pause(follower);
        let t = sim.now() + Duration::from_secs(8);
        run_tracking_log(&mut sim, t, &mut max_log);
        sim.crash(follower);
        sim.resume(follower);
        let t = sim.now() + Duration::from_secs(4);
        run_tracking_log(&mut sim, t, &mut max_log);
    }
    // Quiesce: let the last restarted follower finish catching up.
    let end = SimTime::from_secs(churn_secs + 10);
    run_tracking_log(&mut sim, end, &mut max_log);
    let ds = digests(&sim);
    let committed = sim
        .client_steps()
        .map(|steps| steps.iter().map(|s| s.completed).sum())
        .unwrap_or(0);
    ChurnTrial {
        cycles,
        max_log_len: max_log,
        snapshots_sent: sim.total_snapshots_sent(),
        committed,
        converged: ds.iter().all(|&d| d == ds[0]),
    }
}

/// Long-running crash/heal churn: rotating follower outages under
/// sustained load, with the leader's memory bound asserted across every
/// snapshot-recovery cycle.
pub struct CompactionChurn;

impl Experiment for CompactionChurn {
    fn name(&self) -> &'static str {
        "compaction_churn"
    }

    fn describe(&self) -> &'static str {
        "repeated follower crash/heal under load: bounded log memory across snapshot cycles"
    }
    fn headline_metric(&self) -> &'static str {
        "max live log length across repeated crash/heal snapshot-recovery cycles"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts the log bound, snapshot streams, convergence and liveness per trial"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let cycles = ctx.scale(8, 3);
        let trials = ctx.trials_or(3, 2);
        let results: Vec<ChurnTrial> = (0..trials)
            .into_par_iter()
            .map(|i| churn_trial(ctx.system_seed(&format!("churn/{i}")), cycles))
            .collect();
        let mut report = Report::new(self.name());
        let rows = results
            .iter()
            .enumerate()
            .map(|(i, t)| {
                vec![
                    format!("{i}"),
                    format!("{}", t.cycles),
                    format!("{}", t.max_log_len),
                    format!("{}", t.snapshots_sent),
                    format!("{}", t.committed),
                    format!("{}", t.converged),
                ]
            })
            .collect();
        report.table(
            "crash/heal churn under sustained writes",
            [
                "trial",
                "cycles",
                "max log_len",
                "snapshots_sent",
                "committed",
                "converged",
            ],
            rows,
        );
        let worst_log = results.iter().map(|t| t.max_log_len).max().unwrap_or(0);
        let total_snaps: u64 = results.iter().map(|t| t.snapshots_sent).sum();
        report.headline(
            "max log_len across churn (bound)",
            &format!("<= {LOG_BOUND}"),
            &format!("{worst_log}"),
        );
        report.headline(
            "snapshots_sent (total)",
            "grows with cycles",
            &format!("{total_snaps}"),
        );
        report.note(
            "every cycle drops one follower past the compaction horizon and restarts\n\
             it; memory stays bounded because compaction no longer waits for the\n\
             slowest peer, and each rejoin is absorbed by a snapshot stream.",
        );
        for (i, t) in results.iter().enumerate() {
            assert!(
                t.max_log_len <= LOG_BOUND,
                "trial {i}: log grew to {} (> {LOG_BOUND}) under churn",
                t.max_log_len
            );
            assert!(
                t.snapshots_sent >= 1,
                "trial {i}: churn produced no snapshot transfer"
            );
            assert!(
                t.converged,
                "trial {i}: replicas did not converge after churn"
            );
            assert!(t.committed > 0, "trial {i}: cluster stopped serving");
        }
        report
    }
}
