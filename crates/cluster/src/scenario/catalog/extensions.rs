//! §IV-E future-work extensions study: heartbeat suppression under load
//! and the consolidated heartbeat timer.

use super::wired;
use crate::experiments::failover::{run_trials, FailoverConfig};
use crate::experiments::throughput::{run, ThroughputConfig};
use crate::scenario::{
    Experiment, Horizon, NetPlan, Report, RunCtx, ScenarioBuilder, ScenarioDriver,
};
use crate::CostModel;
use dynatune_core::TuningConfig;
use std::time::Duration;

struct Variant {
    name: &'static str,
    tuning: TuningConfig,
    suppress: bool,
    consolidated: bool,
}

fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "raft",
            tuning: TuningConfig::raft_default(),
            suppress: false,
            consolidated: false,
        },
        Variant {
            name: "dynatune",
            tuning: TuningConfig::dynatune(),
            suppress: false,
            consolidated: false,
        },
        Variant {
            name: "dynatune+suppress",
            tuning: TuningConfig::dynatune(),
            suppress: true,
            consolidated: false,
        },
        Variant {
            name: "dynatune+consolidated",
            tuning: TuningConfig::dynatune(),
            suppress: false,
            consolidated: true,
        },
        Variant {
            name: "dynatune+both",
            tuning: TuningConfig::dynatune(),
            suppress: true,
            consolidated: true,
        },
    ]
}

fn cluster_for(v: &Variant, seed: u64) -> crate::ClusterConfig {
    ScenarioBuilder::cluster(5)
        .tuning(v.tuning)
        .extensions(v.suppress, v.consolidated)
        .seed(seed)
        .build()
}

/// Peak throughput, failover sanity, and leader timer load for the two
/// §IV-E extensions (suppress-while-replicating, consolidated timer).
pub struct Extensions;

impl Experiment for Extensions {
    fn name(&self) -> &'static str {
        "extensions"
    }

    fn describe(&self) -> &'static str {
        "IV-E extensions: heartbeat suppression under load + consolidated heartbeat timer"
    }
    fn headline_metric(&self) -> &'static str {
        "leader timer load and CPU under the SIV-E heartbeat extensions"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; extension deltas reported, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let mut report = Report::new(self.name());

        // 1. Peak throughput per variant (the overhead the extensions
        //    target).
        let repeats = ctx.repeats_or(5, 2);
        let mut rows = Vec::new();
        let mut raft_peak = None;
        for v in variants() {
            let mut cfg = ThroughputConfig::new(
                cluster_for(&v, ctx.system_seed(&format!("tput-{}", v.name))),
                16_000.0,
            );
            cfg.repeats = repeats;
            if ctx.quick {
                cfg.increment = 4_000.0;
                cfg.hold = Duration::from_secs(4);
            }
            let peak = run(&cfg).peak_throughput();
            let baseline = *raft_peak.get_or_insert(peak);
            rows.push(vec![
                v.name.to_string(),
                format!("{peak:.0}"),
                format!("{:+.1}%", (peak / baseline - 1.0) * 100.0),
            ]);
        }
        report.table(
            "[1/3] peak throughput (the overhead the extensions target)",
            ["variant", "peak (req/s)", "vs raft"],
            rows,
        );

        // 2. Failover sanity: the extensions must not slow detection.
        let trials = ctx.trials_or(200, 20);
        let mut rows = Vec::new();
        for v in variants() {
            let res = run_trials(&FailoverConfig::new(
                cluster_for(&v, ctx.system_seed(&format!("failover-{}", v.name))),
                trials,
            ));
            rows.push(vec![
                v.name.to_string(),
                format!("{:.0}", res.detection_stats().mean()),
                format!("{:.0}", res.ots_stats().mean()),
            ]);
        }
        report.table(
            "[2/3] failover under the extensions (must not regress)",
            ["variant", "detection (ms)", "OTS (ms)"],
            rows,
        );

        // 3. Leader wake rate with per-path intervals (geo topology): the
        //    consolidated timer's actual saving.
        let mut rows = Vec::new();
        for consolidated in [false, true] {
            let cfg = ScenarioBuilder::cluster(5)
                .tuning(TuningConfig::dynatune())
                .net(NetPlan::geo())
                // Keep the link clean so the CPU delta isolates timer load.
                .congestion(dynatune_simnet::CongestionConfig::disabled())
                .extensions(false, consolidated)
                .cost(CostModel {
                    per_timer_wake: Duration::from_micros(200),
                    ..CostModel::default()
                })
                .cores(2)
                .seed(ctx.system_seed("timer-load"))
                .build();
            let run = ScenarioDriver::new(cfg)
                .horizon(Horizon::At(Duration::from_secs(120)))
                .run();
            let sim = run.sim;
            let leader = wired(sim.leader(), "a fault-free 120s run keeps its leader");
            let cpu = sim.with_server(leader, |s| {
                s.cpu().mean_utilization(
                    dynatune_simnet::SimTime::from_secs(60),
                    dynatune_simnet::SimTime::from_secs(120),
                )
            });
            let sent = sim.net_counters().sent;
            rows.push(vec![
                if consolidated {
                    "consolidated"
                } else {
                    "per-follower timers"
                }
                .to_string(),
                format!("{cpu:.1}"),
                format!("{sent}"),
            ]);
        }
        report.table(
            "[3/3] leader timer load on a geo cluster (per-path h differs)",
            ["variant", "leader CPU (%)", "heartbeats sent"],
            rows,
        );
        report.note(
            "(consolidated mode aligns all heartbeats on the smallest tuned interval:\n\
             fewer leader wake-ups at the cost of extra heartbeats on slow paths —\n\
             the trade-off §IV-E describes)",
        );
        report
    }
}
