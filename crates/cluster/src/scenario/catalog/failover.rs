//! Repeated-leader-failure experiments: Fig. 4 (stable mesh) and Fig. 8
//! (geo deployment).

use crate::experiments::failover::{run_trials, FailoverConfig, FailoverResult};
use crate::scenario::{
    compare_row, reduction_pct, Experiment, NetPlan, Report, RunCtx, ScenarioBuilder,
};
use dynatune_core::TuningConfig;
use dynatune_stats::table::multi_series_csv;
use std::time::Duration;

/// Append the four detection/OTS CDF series as one CSV artifact.
pub(crate) fn cdf_artifact(
    report: &mut Report,
    filename: &str,
    raft: &FailoverResult,
    dynatune: &FailoverResult,
) {
    let series = [
        ("raft_detection", raft.detection_cdf()),
        ("raft_ots", raft.ots_cdf()),
        ("dynatune_detection", dynatune.detection_cdf()),
        ("dynatune_ots", dynatune.ots_cdf()),
    ];
    let pts: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(name, cdf)| ((*name).to_string(), cdf.points_downsampled(200)))
        .collect();
    let borrowed: Vec<(&str, &[(f64, f64)])> = pts
        .iter()
        .map(|(n, p)| (n.as_str(), p.as_slice()))
        .collect();
    report.artifact(filename, multi_series_csv("time_ms", &borrowed));
}

/// Trial-count summary row for a pair of studies.
pub(crate) fn completeness_note(
    report: &mut Report,
    raft: &FailoverResult,
    dynatune: &FailoverResult,
) {
    report.note(format!(
        "trials: raft {} ok / {} incomplete; dynatune {} ok / {} incomplete",
        raft.outcomes.len(),
        raft.incomplete,
        dynatune.outcomes.len(),
        dynatune.incomplete
    ));
}

/// Fig. 4 + §IV-B1 table: CDFs of detection and OTS times under stable
/// network conditions, repeated leader failures, Raft vs Dynatune; also
/// the §IV-E election-time decomposition.
pub struct Fig4Failover;

impl Experiment for Fig4Failover {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn describe(&self) -> &'static str {
        "detection & OTS time CDFs, stable network (5 servers, RTT 100ms, p=0)"
    }
    fn headline_metric(&self) -> &'static str {
        "detection / out-of-service reduction vs. the paper's Fig. 4 (Raft vs Dynatune)"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; reductions reported against the paper, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let trials = ctx.trials_or(1000, 50);
        let study = |label: &str, tuning: TuningConfig| {
            let cluster = ScenarioBuilder::cluster(5)
                .tuning(tuning)
                .seed(ctx.system_seed(label))
                .build();
            run_trials(&FailoverConfig::new(cluster, trials))
        };
        let raft = study("raft", TuningConfig::raft_default());
        let dynatune = study("dynatune", TuningConfig::dynatune());

        let raft_det = raft.detection_stats().mean();
        let raft_ots = raft.ots_stats().mean();
        let dt_det = dynatune.detection_stats().mean();
        let dt_ots = dynatune.ots_stats().mean();

        let mut report = Report::new(self.name());
        report.table(
            "paper vs measured",
            ["metric", "paper (ms)", "measured (ms)", "ratio"],
            vec![
                compare_row("Raft detection mean", 1205.0, raft_det),
                compare_row("Raft OTS mean", 1449.0, raft_ots),
                compare_row("Dynatune detection mean", 237.0, dt_det),
                compare_row("Dynatune OTS mean", 797.0, dt_ots),
                compare_row("Raft mean randomizedTimeout", 1454.0, raft.mean_rto_ms()),
                compare_row(
                    "Dynatune mean randomizedTimeout",
                    152.0,
                    dynatune.mean_rto_ms(),
                ),
                compare_row(
                    "Raft election time (OTS-det)",
                    244.0,
                    raft.election_time_ms(),
                ),
                compare_row(
                    "Dynatune election time (OTS-det)",
                    560.0,
                    dynatune.election_time_ms(),
                ),
            ],
        );
        report.headline(
            "detection reduction",
            "80%",
            &format!("{:.0}%", reduction_pct(raft_det, dt_det)),
        );
        report.headline(
            "OTS reduction",
            "45%",
            &format!("{:.0}%", reduction_pct(raft_ots, dt_ots)),
        );
        completeness_note(&mut report, &raft, &dynatune);
        cdf_artifact(&mut report, "fig4_cdf.csv", &raft, &dynatune);
        report
    }
}

/// Fig. 8: detection & OTS CDFs on the geo-replicated deployment (Tokyo,
/// London, California, Sydney, São Paulo), Raft vs Dynatune.
pub struct Fig8GeoFailover;

impl Experiment for Fig8GeoFailover {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn describe(&self) -> &'static str {
        "geo-replicated failover (Tokyo/London/California/Sydney/Sao Paulo)"
    }
    fn headline_metric(&self) -> &'static str {
        "out-of-service time in the five-region geo deployment (paper Fig. 8)"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; reductions reported against the paper, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let trials = ctx.trials_or(300, 30);
        let study = |label: &str, tuning: TuningConfig| {
            let cluster = ScenarioBuilder::cluster(5)
                .tuning(tuning)
                .net(NetPlan::geo())
                .cores(2) // m5.large
                .seed(ctx.system_seed(label))
                .build();
            let mut cfg = FailoverConfig::new(cluster, trials);
            cfg.warmup = Duration::from_secs(40); // WAN warm-up is slower
            run_trials(&cfg)
        };
        let raft = study("raft", TuningConfig::raft_default());
        let dynatune = study("dynatune", TuningConfig::dynatune());

        let raft_det = raft.detection_stats().mean();
        let raft_ots = raft.ots_stats().mean();
        let dt_det = dynatune.detection_stats().mean();
        let dt_ots = dynatune.ots_stats().mean();

        let mut report = Report::new(self.name());
        report.table(
            "paper vs measured",
            ["metric", "paper (ms)", "measured (ms)", "ratio"],
            vec![
                compare_row("Raft detection mean", 1137.0, raft_det),
                compare_row("Raft OTS mean", 1718.0, raft_ots),
                compare_row("Dynatune detection mean", 213.0, dt_det),
                compare_row("Dynatune OTS mean", 1145.0, dt_ots),
            ],
        );
        report.headline(
            "detection reduction",
            "81%",
            &format!("{:.0}%", reduction_pct(raft_det, dt_det)),
        );
        report.headline(
            "OTS reduction",
            "33%",
            &format!("{:.0}%", reduction_pct(raft_ots, dt_ots)),
        );
        completeness_note(&mut report, &raft, &dynatune);
        cdf_artifact(&mut report, "fig8_cdf.csv", &raft, &dynatune);
        report
    }
}
