//! Network-fluctuation adaptivity experiments: Fig. 6a/6b (RTT) and
//! Fig. 7 (packet loss).

use crate::experiments::loss_fluctuation::{self, LossFlucConfig};
use crate::experiments::rtt_fluctuation::{self, RttFlucConfig, RttFlucSeries, RttPattern};
use crate::scenario::{Experiment, Report, RunCtx};
use dynatune_core::TuningConfig;
use dynatune_stats::table::{multi_series_csv, series_csv};
use dynatune_stats::{ResamplePolicy, TimeSeries};
use std::time::Duration;

/// The three systems the RTT figures compare.
fn rtt_systems() -> [(&'static str, TuningConfig); 3] {
    [
        ("dynatune", TuningConfig::dynatune()),
        ("raft", TuningConfig::raft_default()),
        ("raft_low", TuningConfig::raft_low()),
    ]
}

/// Run one RTT pattern for every system and assemble the shared report
/// shape (summary table + per-system series/OTS artifacts).
fn rtt_report(
    report_name: &str,
    ctx: &RunCtx,
    pattern: RttPattern,
    hold: Duration,
    expectation: &str,
) -> Report {
    let mut report = Report::new(report_name);
    let mut rows = Vec::new();
    for (name, tuning) in rtt_systems() {
        let mut cfg = RttFlucConfig::new(tuning, pattern, ctx.system_seed(name));
        cfg.hold = hold;
        let s = rtt_fluctuation::run(&cfg);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", s.total_ots_secs),
            format!("{}", s.timeouts_observed),
            format!("{}", s.leader_changes),
            format!("{}", s.t.len()),
        ]);
        series_artifacts(&mut report, report_name, name, &s);
    }
    report.table(
        "summary",
        [
            "system",
            "total OTS (s)",
            "timer expiries",
            "leader changes",
            "samples",
        ],
        rows,
    );
    report.note(expectation.to_string());
    report
}

fn series_artifacts(report: &mut Report, fig: &str, system: &str, s: &RttFlucSeries) {
    let rto: Vec<(f64, f64)> =
        s.t.iter()
            .zip(&s.third_smallest_rto_ms)
            .map(|(&t, &v)| (t, v))
            .collect();
    let rtt: Vec<(f64, f64)> = s.t.iter().zip(&s.rtt_ms).map(|(&t, &v)| (t, v)).collect();
    report.artifact(
        &format!("{fig}_{system}.csv"),
        multi_series_csv(
            "t_secs",
            &[("randomized_timeout_ms", &rto), ("rtt_ms", &rtt)],
        ),
    );
    let ots_csv: String = std::iter::once("start_s,end_s\n".to_string())
        .chain(s.ots_intervals.iter().map(|(a, b)| format!("{a},{b}\n")))
        .collect();
    report.artifact(&format!("{fig}_{system}_ots.csv"), ots_csv);
}

/// Fig. 6a: gradual RTT fluctuation (50→200→50 ms in 10 ms steps),
/// third-smallest randomizedTimeout + RTT + OTS shading, for Dynatune,
/// Raft and Raft-Low.
pub struct Fig6aGradualRtt;

impl Experiment for Fig6aGradualRtt {
    fn name(&self) -> &'static str {
        "fig6a"
    }

    fn describe(&self) -> &'static str {
        "gradual RTT fluctuation 50->200->50ms (10ms steps)"
    }
    fn headline_metric(&self) -> &'static str {
        "randomized-timeout adaptation under a gradual RTT ramp (paper Fig. 6a)"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; traces reported, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let hold = if ctx.quick {
            Duration::from_secs(10)
        } else {
            Duration::from_secs(60) // paper: one minute per step
        };
        rtt_report(
            self.name(),
            ctx,
            RttPattern::Gradual,
            hold,
            "paper expectation: Dynatune tracks RTT with zero OTS; Raft flat ~1700ms,\n\
             zero OTS; Raft-Low suffers OTS once RTT approaches its 100-200ms timeout\n\
             band (paper: ~15s outage near t=500s, then ~10 minutes as RTT keeps rising).",
        )
    }
}

/// Fig. 6b: radical RTT fluctuation (50→500→50 ms, one minute each), for
/// the same three systems.
pub struct Fig6bRadicalRtt;

impl Experiment for Fig6bRadicalRtt {
    fn name(&self) -> &'static str {
        "fig6b"
    }

    fn describe(&self) -> &'static str {
        "radical RTT fluctuation 50->500->50ms (1 minute holds)"
    }
    fn headline_metric(&self) -> &'static str {
        "false-detection behaviour on a radical RTT step (paper Fig. 6b)"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; traces reported, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let hold = if ctx.quick {
            Duration::from_secs(15)
        } else {
            Duration::from_secs(60)
        };
        rtt_report(
            self.name(),
            ctx,
            RttPattern::Radical,
            hold,
            "paper expectation: Dynatune false-detects at the step but pre-vote\n\
             aborts on leader contact -> no OTS; Raft rides it out (large Et);\n\
             Raft-Low is leaderless for most of the 500ms minute (vote RTT exceeds\n\
             its randomized timeout, so elections repeat until RTT drops).",
        )
    }
}

/// Fig. 7: heartbeat-interval adaptation (7a) and CPU utilization (7b)
/// under packet-loss fluctuation 0→30→0 %, RTT 200 ms, for N = 5, 17, 65,
/// Dynatune vs Fix-K (K = 10).
pub struct Fig7LossFluctuation;

fn mean_between(series: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= from && *t < to)
        .map(|&(_, v)| v)
        .collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

fn cpu_mean(ts: &TimeSeries) -> f64 {
    let pts = ts.points();
    if pts.is_empty() {
        return f64::NAN;
    }
    pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64
}

impl Experiment for Fig7LossFluctuation {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn describe(&self) -> &'static str {
        "heartbeat interval + CPU under loss ramp 0->30->0% (RTT 200ms, 2 cores)"
    }
    fn headline_metric(&self) -> &'static str {
        "heartbeat-interval adaptation and leader CPU under loss (paper Fig. 7)"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; traces reported, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let sizes: &[usize] = if ctx.quick { &[5, 17] } else { &[5, 17, 65] };
        let hold = if ctx.quick {
            Duration::from_secs(20)
        } else {
            Duration::from_secs(180) // paper: 3 minutes per level
        };
        let mut report = Report::new(self.name());
        let mut rows = Vec::new();
        for &n in sizes {
            for (name, tuning) in [
                ("dynatune", TuningConfig::dynatune()),
                ("fix_k", TuningConfig::fix_k(10)),
            ] {
                let seed = ctx.system_seed(&format!("{name}-n{n}"));
                let mut cfg = LossFlucConfig::new(n, tuning, seed);
                cfg.hold = hold;
                if ctx.quick {
                    // Shrink the id window so loss estimates track the
                    // shrunk schedule (window lag = maxListSize x h).
                    cfg.tuning.max_list_size = 200;
                }
                let s = loss_fluctuation::run(&cfg);
                let dur = cfg.duration().as_secs_f64();
                // Clean head (after warm-up) and peak-loss middle.
                let h_clean = mean_between(&s.h_ms, dur * 0.05, dur * 0.077);
                let h_peak = mean_between(&s.h_ms, dur * 0.46, dur * 0.54);
                rows.push(vec![
                    name.to_string(),
                    format!("{n}"),
                    format!("{h_clean:.0}"),
                    format!("{h_peak:.0}"),
                    format!("{:.1}", cpu_mean(&s.leader_cpu)),
                    format!("{:.1}", cpu_mean(&s.follower_cpu)),
                    format!("{}", s.elections_after_warmup),
                ]);
                report.artifact(
                    &format!("fig7a_{name}_n{n}.csv"),
                    series_csv(("t_secs", "h_ms"), &s.h_ms),
                );
                let leader_pts = s.leader_cpu.resample(0.0, dur, 5.0, ResamplePolicy::Last);
                let follower_pts = s.follower_cpu.resample(0.0, dur, 5.0, ResamplePolicy::Last);
                report.artifact(
                    &format!("fig7b_{name}_n{n}_leader.csv"),
                    series_csv(("t_secs", "cpu_pct"), &leader_pts),
                );
                report.artifact(
                    &format!("fig7b_{name}_n{n}_follower.csv"),
                    series_csv(("t_secs", "cpu_pct"), &follower_pts),
                );
            }
        }
        report.table(
            "summary",
            [
                "system",
                "N",
                "h@0% (ms)",
                "h@30% (ms)",
                "leader CPU (%)",
                "follower CPU (%)",
                "elections",
            ],
            rows,
        );
        report.note(
            "paper expectation: Dynatune h dips from ~Et (K=1) to ~Et/6 at 30% loss\n\
             and recovers; Fix-K h stays ~Et/10 flat. Fix-K's N=65 leader pegs\n\
             ~100%+ CPU while Dynatune uses less than half under clean conditions,\n\
             peaking with the loss. Neither system triggers unnecessary elections.",
        );
        report
    }
}
