//! Membership-change scenarios: elastic scale-out, live shard
//! rebalancing, and randomized membership churn — the joint-consensus
//! battery.
//!
//! Three behaviours the static-membership catalog could not touch:
//!
//! * [`ElasticScaleout`] — grow a serving cluster from 3 to 5 voters
//!   mid-load through learner catch-up and one joint change, asserting
//!   the goodput dip is bounded and fully recovered;
//! * [`ShardRebalance`] — move a degraded replica of one Raft group to a
//!   spare host while traffic flows, asserting tail latency improves and
//!   the untouched shard never notices;
//! * [`MembershipChurn`] — a seeded random schedule of voter swaps under
//!   crashes and partitions, with election-safety and stale-read checkers
//!   over the whole run and an exact final-configuration check.
//!
//! Every transition is driven from *replicated* state (the leader's
//! active membership), so deposed-leader proposal drops are re-issued
//! rather than waited on — the same discipline as
//! [`Rebalancer`](crate::rebalance::Rebalancer).

use super::wired;
use crate::client::OpRecord;
use crate::observers::{election_safety_violations, stale_read_violations};
use crate::rebalance::{Rebalancer, CATCH_UP_SLACK};
use crate::scenario::{Experiment, Report, RunCtx, ScenarioBuilder};
use crate::sim::{ClusterSim, WorkloadSpec};
use dynatune_core::TuningConfig;
use dynatune_kv::OpMix;
use dynatune_raft::{ConfChange, NodeId};
use dynatune_simnet::rng::Rng;
use dynatune_simnet::SimTime;
use std::collections::BTreeSet;
use std::time::Duration;

/// Poll cadence of the membership orchestrators (simulated time between
/// observation/proposal rounds).
const POLL: Duration = Duration::from_millis(500);

/// Delete-free recorded workload: the stale-read checker needs every
/// revision observable, and the trace feeds the goodput windows.
fn churn_workload(rps: f64, hold: Duration) -> WorkloadSpec {
    WorkloadSpec::steady(rps, hold)
        .starting_at(Duration::from_secs(3))
        .mix(OpMix {
            put: 0.3,
            delete: 0.0,
            cas: 0.0,
        })
        .recording()
        .timeout(Some(Duration::from_millis(600)))
}

/// Completed-request rate over a trace window (req/s).
fn window_rate(trace: &[OpRecord], from: SimTime, to: SimTime) -> f64 {
    let n = trace
        .iter()
        .filter(|op| op.completed >= from && op.completed < to)
        .count();
    n as f64 / (to - from).as_secs_f64().max(1e-9)
}

/// One poll of the single-group joint-consensus orchestrator: observe the
/// leader's replicated membership, issue at most one proposal, report
/// whether the target configuration (`add` all voters, `remove` all gone,
/// not joint) has been reached. Safe against dropped proposals — a change
/// that never lands is simply proposed again on a later poll.
fn conf_step(sim: &mut ClusterSim, add: &[NodeId], remove: &[NodeId]) -> bool {
    let Some(leader) = sim.leader() else {
        return false;
    };
    let m = sim.membership(leader);
    if !m.is_joint() && add.iter().all(|&a| m.is_voter(a)) && remove.iter().all(|&x| !m.contains(x))
    {
        return true;
    }
    // At most one conf change may be uncommitted; wait instead of
    // collecting `InFlight` rejections.
    let in_flight = sim.with_server(leader, |s| {
        s.node().membership_index() > s.node().commit_index()
    });
    if in_flight {
        return false;
    }
    // The proposal results below are advisory: `false` only means no live
    // leader at submit time, and the next poll re-observes and re-issues.
    if m.is_joint() {
        sim.propose_conf_change(ConfChange::Finalize);
        return false;
    }
    if let Some(&a) = add.iter().find(|&&a| !m.contains(a)) {
        sim.propose_conf_change(ConfChange::AddLearner(a));
        return false;
    }
    // All joiners aboard as learners (or already voters): gate the joint
    // change on every learner being within the catch-up slack, mirroring
    // the raft layer's own promotion gate.
    let caught_up = add.iter().filter(|&&a| m.is_learner(a)).all(|&a| {
        sim.with_server(leader, |s| {
            let node = s.node();
            let matched = node.progress_of(a).map_or(0, |p| p.match_index);
            matched > 0 && matched + CATCH_UP_SLACK >= node.log().last_index()
        })
    });
    if caught_up {
        sim.propose_conf_change(ConfChange::Begin {
            add: add.to_vec(),
            remove: remove.to_vec(),
        });
    }
    false
}

// ------------------------------------------------------------------
// elastic_scaleout
// ------------------------------------------------------------------

/// Grow a 3-voter cluster to 5 voters mid-load: two spares join as
/// learners, catch up, and are promoted through one joint change, while
/// an open-loop client keeps writing and (lease-)reading. The goodput dip
/// through the transition must be bounded and fully recovered.
pub struct ElasticScaleout;

impl Experiment for ElasticScaleout {
    fn name(&self) -> &'static str {
        "elastic_scaleout"
    }

    fn describe(&self) -> &'static str {
        "grow 3 -> 5 voters mid-load via learner catch-up + one joint change"
    }

    fn headline_metric(&self) -> &'static str {
        "goodput through the scale-out window relative to the pre-change baseline"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts bounded dip (>= 60%), full recovery (>= 85%), 5-voter agreement, zero safety/stale-read violations"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let window = Duration::from_secs(ctx.scale(15, 6) as u64);
        let mut sim = ScenarioBuilder::cluster(3)
            .spares(2)
            .tuning(TuningConfig::raft_default())
            .seed(ctx.system_seed("elastic_scaleout"))
            .workload(churn_workload(500.0, Duration::from_secs(120)))
            .build_sim();

        // Warm up, then a baseline window at the genesis configuration.
        sim.run_until(SimTime::from_secs(10));
        let t_base0 = sim.now();
        sim.run_for(window);
        let t_base1 = sim.now();

        // Drive the scale-out; the "during" window covers the whole
        // transition and is at least one full window long, so short happy
        // paths are not measured over a sliver.
        let adds: [NodeId; 2] = [3, 4];
        let mut done_after = None;
        for slice in 0..240 {
            if conf_step(&mut sim, &adds, &[]) {
                done_after = Some(slice);
                break;
            }
            sim.run_for(POLL);
        }
        let done_after = wired(
            done_after,
            "scale-out did not converge within its poll budget",
        );
        if sim.now() < t_base1 + window {
            sim.run_until(t_base1 + window);
        }
        let t_during1 = sim.now();

        // Recovery window at the 5-voter configuration.
        sim.run_for(window);
        let t_rec1 = sim.now();

        let trace = wired(sim.client_trace(), "the workload was built `.recording()`");
        let baseline = window_rate(&trace, t_base0, t_base1);
        let during = window_rate(&trace, t_base1, t_during1);
        let recovered = window_rate(&trace, t_during1, t_rec1);
        let events = sim.events();
        let safety = election_safety_violations(&events);
        let stale = stale_read_violations(&trace);

        let mut report = Report::new(self.name());
        report.table(
            "goodput windows through the 3 -> 5 scale-out (500 req/s offered)",
            [
                "window",
                "span (s)",
                "completed rate (req/s)",
                "vs baseline",
            ],
            vec![
                vec![
                    "baseline (3 voters)".into(),
                    format!("{:.1}", (t_base1 - t_base0).as_secs_f64()),
                    format!("{baseline:.0}"),
                    "1.00x".into(),
                ],
                vec![
                    "scale-out".into(),
                    format!("{:.1}", (t_during1 - t_base1).as_secs_f64()),
                    format!("{during:.0}"),
                    format!("{:.2}x", during / baseline.max(1e-9)),
                ],
                vec![
                    "recovered (5 voters)".into(),
                    format!("{:.1}", (t_rec1 - t_during1).as_secs_f64()),
                    format!("{recovered:.0}"),
                    format!("{:.2}x", recovered / baseline.max(1e-9)),
                ],
            ],
        );
        report.headline(
            "goodput through scale-out window",
            ">= 60% of baseline",
            &format!("{:.0}%", during / baseline.max(1e-9) * 100.0),
        );
        report.headline(
            "goodput after scale-out",
            ">= 85% of baseline",
            &format!("{:.0}%", recovered / baseline.max(1e-9) * 100.0),
        );
        report.headline(
            "conf proposals dropped/rejected",
            "reported",
            &format!("{}", sim.conf_rejections()),
        );
        report.note(
            "the two spares idle on the fabric from t=0, join as learners, and are\n\
             promoted together by one Begin/Finalize pair once both are inside the\n\
             catch-up slack; commits pay the dual-quorum rule only inside the joint\n\
             window, so the serving dip stays within noise.",
        );

        assert!(
            during >= baseline * 0.6,
            "scale-out goodput dip exceeds bound: {during:.0} vs baseline {baseline:.0} req/s"
        );
        assert!(
            recovered >= baseline * 0.85,
            "goodput did not recover after scale-out: {recovered:.0} vs baseline {baseline:.0}"
        );
        for id in 0..5 {
            let m = sim.membership(id);
            assert!(!m.is_joint(), "server {id} stuck in the joint config");
            assert_eq!(
                m.voting_members(),
                (0..5).collect::<BTreeSet<_>>(),
                "server {id} disagrees on the final 5-voter config"
            );
        }
        assert_eq!(safety, 0, "election safety violated during scale-out");
        assert_eq!(stale, 0, "stale read served during scale-out");
        // done_after only bounds the report; the asserts above are the gate.
        report.headline(
            "scale-out convergence",
            "within poll budget",
            &format!("{:.1} s of polling", done_after as f64 * POLL.as_secs_f64()),
        );
        report
    }
}

// ------------------------------------------------------------------
// shard_rebalance
// ------------------------------------------------------------------

/// Move the hot shard's degraded replica to a spare host while traffic
/// flows. A paused replica keeps soaking up fanned-out reads until they
/// time out, so the shard's p99 pins at the retry timeout; after the
/// rebalancer swaps in the spare and repoints the client, the tail must
/// collapse back to network latency.
pub struct ShardRebalance;

impl Experiment for ShardRebalance {
    fn name(&self) -> &'static str {
        "shard_rebalance"
    }

    fn describe(&self) -> &'static str {
        "move a degraded hot-shard replica to a spare host under live traffic"
    }

    fn headline_metric(&self) -> &'static str {
        "hot shard p99 latency before vs after the replica move"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts >= 1.5x p99 improvement, final config agreement, zero election-safety violations on both shards"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let window = Duration::from_secs(ctx.scale(12, 5) as u64);
        let mut workload = WorkloadSpec::steady(800.0, Duration::from_secs(150))
            .starting_at(Duration::from_secs(3))
            .mix(OpMix::read_mostly())
            .timeout(Some(Duration::from_millis(250)));
        workload.read_fanout = true;
        let mut sim = ScenarioBuilder::cluster(3)
            .shards(2)
            .spare_for_shard(0)
            .tuning(TuningConfig::raft_default())
            .seed(ctx.system_seed("shard_rebalance"))
            .workload(workload)
            .build_sharded_sim();

        sim.run_until(SimTime::from_secs(8));
        let leader = wired(sim.leader_of(0), "shard 0 elects during the warm-up");
        let victim = wired(
            sim.map().servers_of(0).find(|&id| id != leader),
            "a 3-replica group has a non-leader replica",
        );
        // Degrade: container-pause the replica. Fanned-out reads routed to
        // it now stall until the client's retry timeout.
        sim.pause(victim);
        sim.run_for(Duration::from_secs(1));
        sim.take_latency_window(0); // discard warm-up + transition samples
        sim.run_for(window);
        let degraded = wired(
            sim.take_latency_window(0),
            "the builder attached a shard client",
        );

        let spare = sim.map().n_servers(); // first world id past the map
        let shard1_before = wired(sim.completed_per_shard(), "client attached")[1];
        let mut rb = Rebalancer::new(&sim, 0, spare, victim);
        for _ in 0..400 {
            if rb.is_done() {
                break;
            }
            rb.step(&mut sim);
            sim.run_for(Duration::from_millis(200));
        }
        assert!(rb.is_done(), "rebalance stuck in {:?}", rb.phase());

        sim.take_latency_window(0); // discard the transition window
        sim.run_for(window);
        let healed = wired(
            sim.take_latency_window(0),
            "the builder attached a shard client",
        );
        let shard1_after = wired(sim.completed_per_shard(), "client attached")[1];

        assert!(
            !degraded.is_empty() && !healed.is_empty(),
            "both measurement windows must complete requests"
        );
        let p99_degraded_ms = degraded.quantile(0.99) as f64 / 1e3;
        let p99_healed_ms = healed.quantile(0.99) as f64 / 1e3;
        let improvement = p99_degraded_ms / p99_healed_ms.max(1e-9);

        let mut report = Report::new(self.name());
        report.table(
            "hot-shard latency, one replica paused vs after its replacement",
            ["window", "completed", "mean (ms)", "p99 (ms)"],
            vec![
                vec![
                    "degraded (replica paused)".into(),
                    format!("{}", degraded.count()),
                    format!("{:.1}", degraded.mean() / 1e3),
                    format!("{p99_degraded_ms:.1}"),
                ],
                vec![
                    "rebalanced (spare serving)".into(),
                    format!("{}", healed.count()),
                    format!("{:.1}", healed.mean() / 1e3),
                    format!("{p99_healed_ms:.1}"),
                ],
            ],
        );
        report.headline(
            "hot shard p99 improvement from the move",
            ">= 1.5x",
            &format!("{improvement:.1}x ({p99_degraded_ms:.0} -> {p99_healed_ms:.0} ms)"),
        );
        report.headline(
            "conf proposals issued by the rebalancer",
            "3 (re-issues mean churn)",
            &format!("{}", rb.proposals()),
        );
        report.note(
            "the paused replica keeps receiving a third of the fanned-out reads,\n\
             each stalling for the full 250 ms retry timeout — exactly the tail a\n\
             degraded-but-reachable host inflicts in production. The move\n\
             (learner catch-up, joint swap, finalize, repoint) never blocks the\n\
             shard's writes, and the untouched shard serves throughout.",
        );

        assert!(
            p99_degraded_ms >= 200.0,
            "degraded window never hit the retry timeout (p99 {p99_degraded_ms:.1} ms) — vacuous"
        );
        assert!(
            improvement >= 1.5,
            "replica move must cut the tail: p99 {p99_degraded_ms:.1} -> {p99_healed_ms:.1} ms"
        );
        let base = sim.map().group_base(0);
        let current_leader = wired(sim.leader_of(0), "shard 0 led after the move");
        for id in [current_leader, spare] {
            let m = sim.membership(id);
            assert!(!m.is_joint(), "host {id} stuck in the joint config");
            assert!(m.is_voter(spare - base), "host {id}: spare not a voter");
            assert!(
                !m.contains(victim - base),
                "host {id}: retired replica still a member"
            );
        }
        assert!(
            shard1_after > shard1_before,
            "the untouched shard must keep serving through the move"
        );
        for shard in 0..2 {
            assert_eq!(
                election_safety_violations(&sim.shard_events(shard)),
                0,
                "shard {shard}: election safety violated"
            );
        }
        report
    }
}

// ------------------------------------------------------------------
// membership_churn
// ------------------------------------------------------------------

/// Fault injected alongside one churn round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChurnFault {
    None,
    /// Crash-restart a surviving voter mid-change.
    Crash(NodeId),
    /// Partition a surviving voter away for a few seconds mid-change.
    Partition(NodeId),
}

/// A seeded random schedule of voter swaps — each round retires one voter
/// (the leader included) and admits one outsider through learner
/// catch-up and a joint change — under crash and partition faults, with
/// safety checkers over the whole run.
pub struct MembershipChurn;

impl Experiment for MembershipChurn {
    fn name(&self) -> &'static str {
        "membership_churn"
    }

    fn describe(&self) -> &'static str {
        "randomized voter add/remove/replace under crashes and partitions"
    }

    fn headline_metric(&self) -> &'static str {
        "churn rounds converged with zero election-safety and stale-read violations"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts every round converges to the exact expected config, zero safety/stale-read violations"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let rounds = ctx.scale(6, 3);
        let seed = ctx.system_seed("membership_churn");
        let mut rng = Rng::new(seed);
        let universe: BTreeSet<NodeId> = (0..5).collect();
        let mut expected: BTreeSet<NodeId> = (0..3).collect();
        let mut sim = ScenarioBuilder::cluster(3)
            .spares(2)
            .tuning(TuningConfig::raft_default())
            .seed(seed)
            .workload(churn_workload(300.0, Duration::from_secs(400)))
            .build_sim();
        sim.run_until(SimTime::from_secs(8));

        let mut rows = Vec::new();
        for round in 0..rounds {
            // Wait out any election in progress from the previous round.
            let mut leader = sim.leader();
            for _ in 0..60 {
                if leader.is_some() {
                    break;
                }
                sim.run_for(POLL);
                leader = sim.leader();
            }
            let leader = wired(leader, "the cluster re-elects between churn rounds");
            let m = sim.membership(leader);
            let voters: Vec<NodeId> = m.voting_members().into_iter().collect();
            let members = m.members();
            let outsiders: Vec<NodeId> = universe
                .iter()
                .copied()
                .filter(|id| !members.contains(id))
                .collect();
            let remove = voters[rng.index(voters.len())];
            let add = *wired(
                outsiders.get(rng.index(outsiders.len().max(1))),
                "a 5-host universe with 3 voters always has outsiders",
            );
            let survivors: Vec<NodeId> = voters.iter().copied().filter(|&v| v != remove).collect();
            let fault = match round % 3 {
                1 => ChurnFault::Crash(survivors[rng.index(survivors.len())]),
                2 => ChurnFault::Partition(survivors[rng.index(survivors.len())]),
                _ => ChurnFault::None,
            };
            match fault {
                ChurnFault::None => {}
                ChurnFault::Crash(id) => sim.crash(id),
                ChurnFault::Partition(id) => sim.partition_servers(&[id]),
            }
            let mut healed = !matches!(fault, ChurnFault::Partition(_));
            let mut done_after = None;
            for slice in 0..240 {
                if conf_step(&mut sim, &[add], &[remove]) {
                    done_after = Some(slice);
                    break;
                }
                if !healed && slice == 6 {
                    sim.heal_partition();
                    healed = true;
                }
                sim.run_for(POLL);
            }
            if !healed {
                sim.heal_partition();
            }
            let done_after = wired(
                done_after,
                &format!("churn round {round} ({remove} -> {add}) did not converge"),
            );
            let removed_leader = remove == leader;
            expected.remove(&remove);
            expected.insert(add);
            rows.push(vec![
                format!("{round}"),
                format!("{remove}{}", if removed_leader { " (leader)" } else { "" }),
                format!("{add}"),
                format!("{fault:?}"),
                format!("{:.1}", done_after as f64 * POLL.as_secs_f64()),
            ]);
        }

        // Settle, then judge the whole run.
        let t_close0 = sim.now();
        sim.run_for(Duration::from_secs(8));
        let t_end = sim.now();
        let trace = wired(sim.client_trace(), "the workload was built `.recording()`");
        let events = sim.events();
        let safety = election_safety_violations(&events);
        let stale = stale_read_violations(&trace);
        let final_leader = wired(sim.leader(), "the cluster ends led");
        let final_m = sim.membership(final_leader);
        let closing_rate = window_rate(&trace, t_close0, t_end);

        let mut report = Report::new(self.name());
        report.table(
            &format!("{rounds} randomized voter swaps over a 5-host universe (seeded)"),
            ["round", "retired", "admitted", "fault", "converged (s)"],
            rows,
        );
        report.headline(
            "election-safety + stale-read violations",
            "0",
            &format!("{}", safety + stale),
        );
        report.headline(
            "conf proposals dropped/rejected across the churn",
            "reported",
            &format!("{}", sim.conf_rejections()),
        );
        report.headline(
            "goodput in the closing window",
            "> 0",
            &format!("{closing_rate:.0} req/s"),
        );
        report.note(
            "every round may retire the leader itself (it leads until the final\n\
             config commits, then steps down — Raft §6), and a third of the rounds\n\
             crash or partition a surviving voter mid-change; the orchestrator only\n\
             ever acts on replicated state, so dropped proposals re-issue until the\n\
             observed configuration matches the target.",
        );

        assert_eq!(safety, 0, "election safety violated under churn");
        assert_eq!(stale, 0, "stale read served under churn");
        assert!(!final_m.is_joint(), "run ended inside a joint config");
        assert_eq!(
            final_m.voting_members(),
            expected,
            "final configuration diverged from the applied schedule"
        );
        for &id in &expected {
            assert_eq!(
                sim.membership(id).voting_members(),
                expected,
                "voter {id} disagrees on the final configuration"
            );
        }
        assert!(
            closing_rate > 0.0,
            "the churned cluster must still serve in the closing window"
        );
        report
    }
}
