//! The experiment catalog: every paper figure, the ablations, and the
//! beyond-paper scenarios, implemented as [`Experiment`]s over the
//! scenario API.
//!
//! Each type here is a stateless marker struct; all run parameters come
//! from the [`RunCtx`](crate::scenario::RunCtx) (seed, quick/full scale,
//! overrides) so that the registry can enumerate and run everything
//! uniformly.
//!
//! [`Experiment`]: crate::scenario::Experiment

mod ablations;
mod broker;
mod compaction;
mod extensions;
mod failover;
mod fluctuation;
mod membership;
mod novel;
mod pipeline;
mod reads;
pub mod sharded;
mod throughput;

pub use ablations::Ablations;
pub use broker::{BrokerProduceThroughput, ConsumerFanout, ConsumerLagFailover};
pub use compaction::{CompactionChurn, LaggingFollowerCatchup};
pub use extensions::Extensions;
pub use failover::{Fig4Failover, Fig8GeoFailover};
pub use fluctuation::{Fig6aGradualRtt, Fig6bRadicalRtt, Fig7LossFluctuation};
pub use membership::{ElasticScaleout, MembershipChurn, ShardRebalance};
pub use novel::{GeoAsymmetricFailover, PartitionChurn};
pub use pipeline::PipelineDepth;
pub use reads::{FollowerReadOffload, LeaseSafetyPartition, ReadHeavyThroughput};
pub use sharded::{HotShard, ShardLeaderFailover, ShardedThroughput};
pub use throughput::Fig5Throughput;

/// Unwrap a scenario wiring invariant. Scenarios construct their own sims,
/// so a `None` from an accessor whose precondition the scenario itself set
/// up (a workload client it attached, a leader its settle window elected)
/// is a bug in the scenario — crash with the stated invariant rather than
/// limp on with partial results.
pub(crate) fn wired<T>(v: Option<T>, why: &str) -> T {
    match v {
        Some(v) => v,
        None => dynatune_core::invariant_violated!("{why}"),
    }
}
