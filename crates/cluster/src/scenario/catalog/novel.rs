//! Beyond-paper scenarios the old bespoke Config/run-fn API could not
//! express cleanly: asymmetric geo degradation and flapping-partition
//! churn. Both are pure data — a [`NetPlan`] and a [`FaultPlan`] — driven
//! by the generic scenario driver.

use crate::experiments::failover::{run_trials, FailoverConfig};
use crate::observers::{election_safety_violations, leaderless_intervals, total_leaderless_secs};
use crate::scenario::{
    reduction_pct, Experiment, FaultPlan, Horizon, NetPlan, PartitionSpec, Report, RunCtx,
    ScenarioBuilder, ScenarioDriver,
};
use dynatune_core::TuningConfig;
use dynatune_raft::RaftEvent;
use dynatune_simnet::{geo_rtt, LinkSchedule, NetParams, Region};
use std::time::Duration;

/// Failover on a geo topology whose Tokyo links are asymmetrically
/// degraded: every path touching Tokyo runs at 3× its baseline RTT with
/// heavy jitter, while the rest of the mesh is healthy.
///
/// Static Raft must provision its global election timeout for the worst
/// path; Dynatune tunes per path, so the healthy (London–California–...)
/// majority keeps fast detection despite the degraded region. The old API
/// had no vocabulary for "geo mesh with per-pair overrides" — it took
/// manual `Topology` surgery in every caller.
pub struct GeoAsymmetricFailover;

/// The degraded-region mesh: Tokyo (node 0) pairs at 3× RTT + jitter.
fn asymmetric_geo() -> NetPlan {
    let regions = Region::ALL.to_vec();
    let overrides = (1..regions.len())
        .map(|other| {
            let base = geo_rtt(regions[0], regions[other]);
            let degraded = NetParams::wan(base * 3).with_jitter(0.25);
            (0, other, LinkSchedule::constant(degraded))
        })
        .collect();
    NetPlan::GeoDegraded { regions, overrides }
}

impl Experiment for GeoAsymmetricFailover {
    fn name(&self) -> &'static str {
        "geo_asymmetric"
    }

    fn describe(&self) -> &'static str {
        "failover on a geo mesh with one region (Tokyo) at 3x RTT + heavy jitter"
    }
    fn headline_metric(&self) -> &'static str {
        "detection reduction when one WAN pair degrades asymmetrically"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; reduction reported, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let trials = ctx.trials_or(300, 25);
        let study = |label: &str, tuning: TuningConfig| {
            let cluster = ScenarioBuilder::cluster(5)
                .tuning(tuning)
                .net(asymmetric_geo())
                .cores(2)
                .seed(ctx.system_seed(label))
                .build();
            let mut cfg = FailoverConfig::new(cluster, trials);
            cfg.warmup = Duration::from_secs(40);
            run_trials(&cfg)
        };
        let raft = study("raft", TuningConfig::raft_default());
        let dynatune = study("dynatune", TuningConfig::dynatune());

        let raft_det = raft.detection_stats().mean();
        let dt_det = dynatune.detection_stats().mean();
        let mut report = Report::new(self.name());
        report.table(
            "failover with one degraded region",
            ["system", "detection (ms)", "OTS (ms)", "mean rto (ms)"],
            vec![
                vec![
                    "raft".to_string(),
                    format!("{raft_det:.0}"),
                    format!("{:.0}", raft.ots_stats().mean()),
                    format!("{:.0}", raft.mean_rto_ms()),
                ],
                vec![
                    "dynatune".to_string(),
                    format!("{dt_det:.0}"),
                    format!("{:.0}", dynatune.ots_stats().mean()),
                    format!("{:.0}", dynatune.mean_rto_ms()),
                ],
            ],
        );
        report.headline(
            "detection reduction (degraded region)",
            "n/a (beyond paper)",
            &format!("{:.0}%", reduction_pct(raft_det, dt_det)),
        );
        report.note(
            "per-path tuning keeps the healthy majority's timeouts matched to their\n\
             own RTTs; a global worst-case constant would pay the degraded region's\n\
             3x RTT everywhere.",
        );
        report
    }
}

/// Flapping-partition churn: the live leader (resolved at each cut) plus
/// one follower are repeatedly cut away and healed on a fixed cadence.
///
/// This is the classic hazard scenario for aggressive election timeouts —
/// every heal readmits a stale ex-leader — and exactly the kind of
/// schedule the declarative plan makes one expression instead of a
/// hand-written loop. The report checks availability (leaderless seconds)
/// and election safety (at most one leader per term) across the churn.
pub struct PartitionChurn;

impl Experiment for PartitionChurn {
    fn name(&self) -> &'static str {
        "partition_churn"
    }

    fn describe(&self) -> &'static str {
        "flapping leader-partition churn: repeated cut/heal cycles, safety + availability"
    }
    fn headline_metric(&self) -> &'static str {
        "safety and re-election behaviour through flapping partition cuts"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts zero election-safety violations across every churn cycle"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let cycles = ctx.scale(12, 4);
        let down = Duration::from_secs(12);
        let up = Duration::from_secs(18);
        let start = Duration::from_secs(30);
        let mut report = Report::new(self.name());
        let mut rows = Vec::new();
        for (label, tuning) in [
            ("raft", TuningConfig::raft_default()),
            ("dynatune", TuningConfig::dynatune()),
        ] {
            let cluster = ScenarioBuilder::cluster(5)
                .tuning(tuning)
                .seed(ctx.system_seed(label))
                .build();
            let plan = FaultPlan::new().flapping_partition(
                start,
                PartitionSpec::LeaderPlusFollowers(1),
                down,
                up,
                cycles,
            );
            let run = ScenarioDriver::new(cluster)
                .plan(plan)
                .horizon(Horizon::AfterLastFault(Duration::from_secs(20)))
                .run();
            let events = run.sim.events();
            // Election safety across the whole churn.
            let violations = election_safety_violations(&events);
            let leader_changes = events
                .iter()
                .filter(|(_, _, ev)| matches!(ev, RaftEvent::BecameLeader { .. }))
                .count();
            let gaps = leaderless_intervals(&events, run.horizon);
            let cuts_executed = run.trace.iter().filter(|f| !f.skipped).count();
            rows.push(vec![
                label.to_string(),
                format!("{cuts_executed}/{}", run.trace.len()),
                format!("{:.1}", total_leaderless_secs(&gaps)),
                format!("{leader_changes}"),
                format!("{violations}"),
                format!(
                    "{}",
                    run.sim
                        .leader()
                        .map_or("none".to_string(), |l| l.to_string())
                ),
            ]);
            // The churn must never break safety, under either system.
            assert_eq!(violations, 0, "{label}: election safety violated");
        }
        report.table(
            &format!("{cycles} cut/heal cycles, leader+1 cut away {down:?}, healed {up:?}"),
            [
                "system",
                "cuts executed",
                "leaderless (s)",
                "leader changes",
                "safety violations",
                "final leader",
            ],
            rows,
        );
        report.note(
            "every cut isolates the *current* leader (resolved at fire time) with one\n\
             follower; the majority re-elects, the heal readmits a stale ex-leader.\n\
             Election safety must hold throughout and the cluster must end led.",
        );
        report
    }
}
