//! Replication-pipelining ablation: how many unacked `AppendEntries` a
//! leader keeps in flight per follower.
//!
//! Before pipelining, the leader ran replication as ping-pong: one append
//! per follower, wait for the ack, send the next. Every batch paid a full
//! RTT, so write throughput was capped at `entries_per_append / RTT`
//! regardless of how much the network or the followers could absorb.
//! [`PipelineDepth`] sweeps the window (1 = the old ping-pong) against
//! RTT and pins the claim that motivated the change: at WAN-ish RTTs a
//! deeper window multiplies committed write throughput.

use super::wired;
use crate::scenario::{Experiment, NetPlan, Report, RunCtx, ScenarioBuilder};
use crate::sim::WorkloadSpec;
use dynatune_core::TuningConfig;
use dynatune_kv::OpMix;
use dynatune_simnet::SimTime;
use rayon::prelude::*;
use std::time::Duration;

/// Windows swept; 1 recovers the pre-pipelining ping-pong baseline.
const WINDOWS: [usize; 4] = [1, 2, 4, 8];

/// RTTs swept (ms). 50 ms — a cross-region but same-continent link — is
/// the headline point; 10 ms barely stresses the window, 200 ms is where
/// it dominates.
const RTTS_MS: [u64; 3] = [10, 50, 200];

/// Offered write load. Far above the window-1 ceiling at 50 ms RTT
/// (`64 entries / 50 ms` ≈ 1 280 op/s) and comfortably under the deeper
/// windows' capacity, so the ratio measures the replication ceiling, not
/// the offered rate.
const OFFERED_RPS: f64 = 4_000.0;

/// Per-message entry cap for these runs. Small enough that a single
/// append cannot hide the RTT by itself — the window has to.
const APPEND_CAP: usize = 64;

/// One (window, RTT) cell's measurements.
#[derive(Debug, Clone, PartialEq)]
struct DepthRun {
    committed: u64,
    hold_secs: f64,
    max_log_len: usize,
}

fn depth_run(seed: u64, window: usize, rtt: Duration, hold: Duration) -> DepthRun {
    let mut sim = ScenarioBuilder::cluster(3)
        .tuning(TuningConfig::raft_default())
        .net(NetPlan::stable(rtt))
        .pipeline_window(window)
        .max_entries_per_append(APPEND_CAP)
        .seed(seed)
        // No response timeout: the window-1 baseline saturates and must
        // not pile retry storms on top of its backlog — committed ops is
        // the metric.
        .workload(
            WorkloadSpec::steady(OFFERED_RPS, hold)
                .starting_at(Duration::from_secs(3))
                .mix(OpMix::write_heavy())
                .timeout(None),
        )
        .build_sim();
    let end = SimTime::ZERO + Duration::from_secs(3) + hold + Duration::from_secs(2);
    sim.run_until(end);
    let steps = wired(sim.client_steps(), "the builder attached a workload client");
    DepthRun {
        committed: steps.iter().map(|s| s.completed).sum(),
        hold_secs: hold.as_secs_f64(),
        max_log_len: sim.max_log_len(),
    }
}

/// Sweep the per-follower pipeline window against RTT under a saturating
/// write-heavy load: deeper windows hide the RTT, multiplying committed
/// throughput on slow links.
pub struct PipelineDepth;

impl Experiment for PipelineDepth {
    fn name(&self) -> &'static str {
        "pipeline_depth"
    }

    fn describe(&self) -> &'static str {
        "sweep the replication pipeline window across RTTs under write-heavy load"
    }

    fn headline_metric(&self) -> &'static str {
        "committed ops, window 8 over window 1 (ping-pong) at 50 ms RTT (>= 1.5x)"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts window 8 commits >= 1.5x the ops of window 1 at 50 ms RTT"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let hold = Duration::from_secs(ctx.scale(8, 3) as u64);
        let combos: Vec<(u64, usize)> = RTTS_MS
            .iter()
            .flat_map(|&rtt_ms| WINDOWS.iter().map(move |&w| (rtt_ms, w)))
            .collect();
        let runs: Vec<DepthRun> = combos
            .clone()
            .into_par_iter()
            .map(|(rtt_ms, window)| {
                depth_run(
                    ctx.system_seed(&format!("window{window}/rtt{rtt_ms}")),
                    window,
                    Duration::from_millis(rtt_ms),
                    hold,
                )
            })
            .collect();
        let cell = |rtt_ms: u64, window: usize| -> &DepthRun {
            let i = wired(
                combos.iter().position(|&(r, w)| r == rtt_ms && w == window),
                "every (rtt, window) cell queried below was swept above",
            );
            &runs[i]
        };

        let mut report = Report::new(self.name());
        report.table(
            &format!(
                "committed write ops by pipeline window (3 servers, {OFFERED_RPS:.0} req/s \
                 offered, <= {APPEND_CAP} entries per append)"
            ),
            [
                "RTT",
                "window",
                "committed",
                "throughput (op/s)",
                "max log_len",
            ],
            combos
                .iter()
                .zip(runs.iter())
                .map(|(&(rtt_ms, window), r)| {
                    vec![
                        format!("{rtt_ms} ms"),
                        format!("{window}"),
                        format!("{}", r.committed),
                        format!("{:.0}", r.committed as f64 / r.hold_secs),
                        format!("{}", r.max_log_len),
                    ]
                })
                .collect(),
        );
        let headline_ratio = cell(50, 8).committed as f64 / cell(50, 1).committed.max(1) as f64;
        report.headline(
            "committed ops, window 8 / window 1 at 50 ms RTT",
            ">= 1.5x",
            &format!("{headline_ratio:.2}x"),
        );
        let wan_ratio = cell(200, 8).committed as f64 / cell(200, 1).committed.max(1) as f64;
        report.headline(
            "committed ops, window 8 / window 1 at 200 ms RTT",
            "grows with RTT",
            &format!("{wan_ratio:.2}x"),
        );
        report.note(
            "window 1 is the retired ping-pong: one append per follower per RTT,\n\
             so the ceiling is entries_per_append / RTT no matter the offered\n\
             load. Deeper windows keep the link full; acks retire out of order\n\
             and the resend timer watches only the oldest unacked send.",
        );
        assert!(
            headline_ratio >= 1.5,
            "pipelining must beat ping-pong by >= 1.5x at 50 ms RTT, got \
             {headline_ratio:.2}x ({} vs {})",
            cell(50, 8).committed,
            cell(50, 1).committed
        );
        assert!(
            wan_ratio >= headline_ratio,
            "the window's win must not shrink as RTT grows: {wan_ratio:.2}x at 200 ms \
             vs {headline_ratio:.2}x at 50 ms"
        );
        for &rtt_ms in &RTTS_MS {
            assert!(
                cell(rtt_ms, 8).committed * 10 >= cell(rtt_ms, 1).committed * 9,
                "a deeper window must never cost throughput (rtt {rtt_ms} ms): {} vs {}",
                cell(rtt_ms, 8).committed,
                cell(rtt_ms, 1).committed
            );
        }
        report
    }
}
