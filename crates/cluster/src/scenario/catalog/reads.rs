//! Read-path scenarios: the lease/ReadIndex serving story.
//!
//! Before the log-free read path, every `Get` was committed through the
//! Raft log like a write (`KvCommand::Get` as a log entry), so read-heavy
//! traffic paid full quorum-append cost and churned the leader's
//! log/compaction machinery on operations that mutate nothing. These
//! scenarios pin the replacement's two claims on every CI push:
//!
//! * [`ReadHeavyThroughput`] — at a 95/5 read/write mix the lease path
//!   must commit ≥2× the ops of the log-read baseline, with the live log
//!   staying flat under read load (reads no longer append);
//! * [`FollowerReadOffload`] — spreading reads over followers drops leader
//!   CPU while a client-side trace checker proves no read went stale;
//! * [`LeaseSafetyPartition`] — the adversarial case: isolate a leader
//!   from its peers mid-lease while clients still reach it; the
//!   drift-margined lease must expire before the new leader's first
//!   commit, so the trace shows zero stale reads even though the
//!   ex-leader kept serving into the cut.

use super::wired;
use crate::observers::stale_read_violations;
use crate::scenario::{Experiment, Report, RunCtx, ScenarioBuilder};
use crate::server::{ReadCounters, ReadStrategy};
use crate::sim::WorkloadSpec;
use dynatune_core::TuningConfig;
use dynatune_kv::OpMix;
use dynatune_raft::NodeId;
use dynatune_simnet::SimTime;
use rayon::prelude::*;
use std::time::Duration;

/// 95/5 read/write serving mix shared by the read scenarios.
fn read_mostly_workload(rps: f64, hold: Duration) -> WorkloadSpec {
    WorkloadSpec::steady(rps, hold)
        .starting_at(Duration::from_secs(3))
        .mix(OpMix::read_mostly())
}

// ------------------------------------------------------------------
// read_heavy_throughput
// ------------------------------------------------------------------

/// Offered load: far beyond the log-read baseline's ~7k ops/s capacity on
/// 2 cores (≈290µs/op through the log), comfortably inside the lease
/// path's ≈28k ops/s (≈70µs mixed cost), so the ≥2× ratio measures
/// capacity, not the offered rate.
const THROUGHPUT_RPS: f64 = 20_000.0;

/// One system's measurements at the fixed offered load.
#[derive(Debug, Clone, PartialEq)]
struct ThroughputRun {
    completed: u64,
    hold_secs: f64,
    max_log_len: usize,
    reads: ReadCounters,
}

fn throughput_run(seed: u64, strategy: ReadStrategy, hold: Duration) -> ThroughputRun {
    let mut sim = ScenarioBuilder::cluster(3)
        .tuning(TuningConfig::raft_default())
        .reads(strategy)
        .cores(2)
        .seed(seed)
        // No response timeout: the saturated baseline must not add retry
        // storms on top of its backlog — committed throughput is the metric.
        .workload(read_mostly_workload(THROUGHPUT_RPS, hold).timeout(None))
        .build_sim();
    let end = SimTime::ZERO + Duration::from_secs(3) + hold + Duration::from_secs(2);
    sim.run_until(end);
    let steps = wired(sim.client_steps(), "the builder attached a workload client");
    ThroughputRun {
        completed: steps.iter().map(|s| s.completed).sum(),
        hold_secs: hold.as_secs_f64(),
        max_log_len: sim.max_log_len(),
        reads: sim.read_counters(),
    }
}

/// 95/5 read/write at saturating load: log-read baseline vs the lease
/// path, asserting ≥2× committed-op throughput and a flat log under read
/// load.
pub struct ReadHeavyThroughput;

impl Experiment for ReadHeavyThroughput {
    fn name(&self) -> &'static str {
        "read_heavy_throughput"
    }

    fn describe(&self) -> &'static str {
        "95/5 read/write at saturating load: lease reads vs the log-read baseline"
    }

    fn headline_metric(&self) -> &'static str {
        "committed-op throughput ratio, lease path over log-read baseline (>= 2x)"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts >= 2x committed throughput and a >= 4x smaller live log under the lease path"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let hold = Duration::from_secs(ctx.scale(8, 3) as u64);
        let systems = [("log", ReadStrategy::Log), ("lease", ReadStrategy::Lease)];
        let runs: Vec<ThroughputRun> = systems
            .into_par_iter()
            .map(|(label, strategy)| throughput_run(ctx.system_seed(label), strategy, hold))
            .collect();
        let (log, lease) = (&runs[0], &runs[1]);

        let mut report = Report::new(self.name());
        report.table(
            &format!("95/5 read/write at {THROUGHPUT_RPS:.0} req/s offered, 3 servers x 2 cores"),
            [
                "system",
                "committed",
                "throughput (op/s)",
                "max log_len",
                "reads lease/readindex/follower/log",
            ],
            runs.iter()
                .zip(systems.iter())
                .map(|(r, (label, _))| {
                    vec![
                        (*label).to_string(),
                        format!("{}", r.completed),
                        format!("{:.0}", r.completed as f64 / r.hold_secs),
                        format!("{}", r.max_log_len),
                        format!(
                            "{}/{}/{}/{}",
                            r.reads.lease, r.reads.read_index, r.reads.follower, r.reads.log
                        ),
                    ]
                })
                .collect(),
        );
        let ratio = lease.completed as f64 / log.completed.max(1) as f64;
        report.headline(
            "committed-op throughput (lease / log)",
            ">= 2x",
            &format!("{ratio:.2}x"),
        );
        report.headline(
            "max_log_len under read load (lease vs log)",
            "flat (writes only)",
            &format!("{} vs {}", lease.max_log_len, log.max_log_len),
        );
        // The read-path mix counters CI tracks across PRs (BENCH json).
        let total = lease.reads.merged(log.reads);
        report.headline("reads_served_leaseread", "-", &format!("{}", total.lease));
        report.headline(
            "reads_served_readindex",
            "-",
            &format!("{}", total.read_index + total.follower),
        );
        report.headline("reads_served_log", "-", &format!("{}", total.log));
        report.note(
            "the baseline replicates every Get through the log (quorum-append cost,\n\
             log growth); the lease path serves the same reads for one ordered-map\n\
             lookup while heartbeat acks keep the lease fresh.",
        );
        assert!(
            ratio >= 2.0,
            "lease read path must at least double committed throughput, got {ratio:.2}x \
             ({} vs {})",
            lease.completed,
            log.completed
        );
        assert!(
            lease.max_log_len * 4 <= log.max_log_len,
            "read load must stay out of the log: lease {} vs log {}",
            lease.max_log_len,
            log.max_log_len
        );
        assert!(lease.reads.lease > 0, "lease run never used the lease path");
        assert!(log.reads.log > 0, "log run never counted a logged read");
        report
    }
}

// ------------------------------------------------------------------
// follower_read_offload
// ------------------------------------------------------------------

/// One offload run's measurements.
#[derive(Debug, Clone, PartialEq)]
struct OffloadRun {
    leader_cpu_pct: f64,
    reads_per_server: Vec<ReadCounters>,
    violations: usize,
    completed: u64,
}

fn offload_run(seed: u64, fanout: bool, hold: Duration) -> OffloadRun {
    let rps = 4_000.0;
    let mut workload = read_mostly_workload(rps, hold).recording();
    workload.read_fanout = fanout;
    let mut sim = ScenarioBuilder::cluster(3)
        .tuning(TuningConfig::raft_default())
        .reads(ReadStrategy::Lease)
        .seed(seed)
        .workload(workload)
        .build_sim();
    let end = SimTime::ZERO + Duration::from_secs(3) + hold + Duration::from_secs(2);
    sim.run_until(end);
    let leader = wired(sim.leader(), "a fault-free lease run keeps its leader");
    let leader_cpu_pct = sim.with_server(leader, |s| {
        s.cpu().mean_utilization(
            SimTime::from_secs(4),
            SimTime::ZERO + Duration::from_secs(3) + hold,
        )
    });
    let trace = wired(sim.client_trace(), "the workload was built `.recording()`");
    OffloadRun {
        leader_cpu_pct,
        reads_per_server: (0..sim.n_servers())
            .map(|id| sim.with_server(id, |s| s.reads_served()))
            .collect(),
        violations: stale_read_violations(&trace),
        completed: sim
            .client_steps()
            .map(|steps| steps.iter().map(|s| s.completed).sum())
            .unwrap_or(0),
    }
}

/// Spread reads over followers: leader CPU must drop while the trace
/// checker proves staleness stays zero.
pub struct FollowerReadOffload;

impl Experiment for FollowerReadOffload {
    fn name(&self) -> &'static str {
        "follower_read_offload"
    }

    fn describe(&self) -> &'static str {
        "fan reads out over followers: leader CPU drops, staleness stays zero"
    }

    fn headline_metric(&self) -> &'static str {
        "leader CPU with reads fanned over followers vs all reads on the leader"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts leader CPU drops under fanout, every follower serves reads, zero stale reads"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let hold = Duration::from_secs(ctx.scale(10, 4) as u64);
        let modes = [("leader-only", false), ("fanout", true)];
        let runs: Vec<OffloadRun> = modes
            .into_par_iter()
            .map(|(label, fanout)| offload_run(ctx.system_seed(label), fanout, hold))
            .collect();
        let (baseline, fanout) = (&runs[0], &runs[1]);

        let mut report = Report::new(self.name());
        report.table(
            "follower-read offload (3 servers, 4k req/s, 95% reads)",
            [
                "mode",
                "leader CPU %",
                "per-server reads (total)",
                "stale reads",
                "completed",
            ],
            runs.iter()
                .zip(modes.iter())
                .map(|(r, (label, _))| {
                    vec![
                        (*label).to_string(),
                        format!("{:.1}", r.leader_cpu_pct),
                        r.reads_per_server
                            .iter()
                            .map(|c| format!("{}", c.total()))
                            .collect::<Vec<_>>()
                            .join("/"),
                        format!("{}", r.violations),
                        format!("{}", r.completed),
                    ]
                })
                .collect(),
        );
        report.headline(
            "leader CPU, fanout vs leader-only",
            "drops",
            &format!(
                "{:.1}% vs {:.1}%",
                fanout.leader_cpu_pct, baseline.leader_cpu_pct
            ),
        );
        report.headline(
            "stale reads (both modes)",
            "0",
            &format!("{}", baseline.violations + fanout.violations),
        );
        report.note(
            "followers answer forwarded reads from their own state machine once\n\
             local apply reaches the granted index; forwarding batches into one\n\
             ReadIndexReq wave per round trip, so the leader's cost per offloaded\n\
             read is a fraction of serving it.",
        );
        assert_eq!(
            baseline.violations + fanout.violations,
            0,
            "offloaded reads must stay linearizable"
        );
        assert!(
            fanout.leader_cpu_pct < baseline.leader_cpu_pct * 0.8,
            "fanout must shed leader CPU: {:.1}% vs {:.1}%",
            fanout.leader_cpu_pct,
            baseline.leader_cpu_pct
        );
        let follower_served = fanout
            .reads_per_server
            .iter()
            .filter(|c| c.follower > 0)
            .count();
        assert!(
            follower_served >= 2,
            "both followers must serve reads, got counters {:?}",
            fanout.reads_per_server
        );
        assert!(
            fanout.completed as f64 > baseline.completed as f64 * 0.9,
            "offload must not sacrifice goodput: {} vs {}",
            fanout.completed,
            baseline.completed
        );
        report
    }
}

// ------------------------------------------------------------------
// lease_safety_partition
// ------------------------------------------------------------------

/// One partition trial's measurements.
#[derive(Debug, Clone, PartialEq)]
struct LeaseTrial {
    old_leader: NodeId,
    new_leader: Option<NodeId>,
    old_leader_lease_reads: u64,
    writes_during_partition: u64,
    reads_after_new_commits: u64,
    violations: usize,
}

fn lease_trial(seed: u64) -> LeaseTrial {
    let t_partition = SimTime::from_secs(10);
    let t_heal = SimTime::from_secs(22);
    let mut workload = WorkloadSpec::steady(400.0, Duration::from_secs(27))
        .starting_at(Duration::from_secs(3))
        .mix(OpMix {
            put: 0.3,
            delete: 0.0,
            cas: 0.0,
        })
        .recording()
        .timeout(Some(Duration::from_millis(600)));
    workload.key_space = 8;
    let mut sim = ScenarioBuilder::cluster(3)
        .tuning(TuningConfig::raft_default())
        .reads(ReadStrategy::Lease)
        .seed(seed)
        .workload(workload)
        .build_sim();
    sim.run_until(t_partition);
    let old_leader = wired(sim.leader(), "the settle window elects before the cut");
    let lease_reads_before = sim.with_server(old_leader, |s| s.reads_served().lease);
    assert!(
        lease_reads_before > 0,
        "the lease path must be hot before the cut (else the trial tests nothing)"
    );
    // Cut the leader off from its peers while every client still reaches
    // it: the window where a buggy lease would serve stale reads.
    sim.partition_servers(&[old_leader]);
    sim.run_until(t_heal);
    let new_leader = sim.leader();
    sim.heal_partition();
    sim.run_until(SimTime::from_secs(32));
    let trace = wired(sim.client_trace(), "the workload was built `.recording()`");
    // The checker only bites if the partition window really had both new
    // commits and reads completing after them.
    let first_new_commit = trace
        .iter()
        .filter(|op| op.write && op.completed > t_partition + Duration::from_secs(1))
        .map(|op| op.completed)
        .min();
    let writes_during_partition = trace
        .iter()
        .filter(|op| op.write && op.completed > t_partition && op.completed < t_heal)
        .count() as u64;
    let reads_after_new_commits = first_new_commit.map_or(0, |t0| {
        trace
            .iter()
            .filter(|op| !op.write && op.completed > t0)
            .count() as u64
    });
    LeaseTrial {
        old_leader,
        new_leader,
        old_leader_lease_reads: lease_reads_before,
        writes_during_partition,
        reads_after_new_commits,
        violations: stale_read_violations(&trace),
    }
}

/// Partition a leader mid-lease (clients still reach it): the drift-scaled
/// lease must expire before the new leader's first commit, so no stale
/// read is ever served — checked by a linearizability pass over the trace.
pub struct LeaseSafetyPartition;

impl Experiment for LeaseSafetyPartition {
    fn name(&self) -> &'static str {
        "lease_safety_partition"
    }

    fn describe(&self) -> &'static str {
        "partition a leader mid-lease while clients still reach it: zero stale reads"
    }

    fn headline_metric(&self) -> &'static str {
        "stale-read violations in the client trace across the partition (must be 0)"
    }

    fn ci_assertion(&self) -> &'static str {
        "asserts zero stale reads, a hot lease before the cut, and post-cut commits + reads"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let trials = ctx.trials_or(3, 2);
        let results: Vec<LeaseTrial> = (0..trials)
            .into_par_iter()
            .map(|i| lease_trial(ctx.system_seed(&format!("lease-safety/{i}"))))
            .collect();
        let mut report = Report::new(self.name());
        report.table(
            "leader isolated from peers at t=10s (clients bridge), healed at t=22s",
            [
                "trial",
                "old leader",
                "new leader",
                "lease reads pre-cut",
                "writes in cut",
                "reads after new commits",
                "stale reads",
            ],
            results
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    vec![
                        format!("{i}"),
                        format!("{}", t.old_leader),
                        t.new_leader.map_or("-".into(), |l| format!("{l}")),
                        format!("{}", t.old_leader_lease_reads),
                        format!("{}", t.writes_during_partition),
                        format!("{}", t.reads_after_new_commits),
                        format!("{}", t.violations),
                    ]
                })
                .collect(),
        );
        let total_violations: usize = results.iter().map(|t| t.violations).sum();
        report.headline(
            "stale reads across all trials",
            "0",
            &format!("{total_violations}"),
        );
        report.note(
            "safety margin: the lease is cut at read_lease * (1 - drift_margin) from\n\
             the last quorum-acked heartbeat send, while a new leader needs at least\n\
             one full election timeout after the last heartbeat it received — the\n\
             isolated leader's lease always dies first.",
        );
        for (i, t) in results.iter().enumerate() {
            assert_eq!(t.violations, 0, "trial {i}: stale read served");
            let new_leader = wired(
                t.new_leader,
                &format!("trial {i}: no new leader elected during the partition"),
            );
            assert_ne!(
                new_leader, t.old_leader,
                "trial {i}: old leader cannot still lead"
            );
            assert!(
                t.writes_during_partition > 0,
                "trial {i}: the new leader committed nothing — vacuous check"
            );
            assert!(
                t.reads_after_new_commits > 0,
                "trial {i}: no reads completed after the new leader's commits — vacuous check"
            );
        }
        report
    }
}
