//! Sharding scenarios: horizontal scaling, skew, and fault isolation of
//! the multi-Raft serving layer.
//!
//! Three workloads the single-group catalog cannot express:
//!
//! * [`ShardedThroughput`] — aggregate committed throughput vs shard count
//!   at a fixed per-node configuration (the "does it actually scale out"
//!   plot);
//! * [`HotShard`] — Zipf-skewed keys concentrating load on one group
//!   (partitioning helps only as much as the key distribution allows);
//! * [`ShardLeaderFailover`] — crash one group's leader mid-load and
//!   verify the blast radius: unaffected shards keep serving at baseline
//!   while the affected shard's outage is bounded by failure detection,
//!   which is exactly where the paper's dynamic timeouts pay off.
//!
//! All three run on an inflated per-request cost model
//! ([`serving_cost`]) that saturates a 2-core group near ~800 req/s, so
//! contention effects appear at simulation-friendly request rates.

use super::wired;
use crate::cpu::CostModel;
use crate::observers::extract_failover;
use crate::scenario::{Experiment, Report, RunCtx, ScenarioBuilder};
use crate::sharded::ShardedClusterSim;
use crate::sim::WorkloadSpec;
use dynatune_core::TuningConfig;
use dynatune_kv::{OpMix, RateStep};
use dynatune_simnet::SimTime;
use rayon::prelude::*;
use std::time::Duration;

/// Cost model for the sharding scenarios: per-request work inflated 10×
/// over the default, so one 2-core group saturates near ~800 req/s and the
/// scenarios exercise saturation at cheap offered rates.
#[must_use]
pub fn serving_cost() -> CostModel {
    CostModel {
        per_request: Duration::from_micros(2500),
        ..CostModel::default()
    }
}

/// Replicas per shard used by every sharding scenario (classic 3-way).
const REPLICAS: usize = 3;

fn steady_workload(rps: f64, hold: Duration, zipf_theta: f64, start: Duration) -> WorkloadSpec {
    WorkloadSpec {
        steps: vec![RateStep { rps, hold }],
        mix: OpMix::write_heavy(),
        key_space: 10_000,
        zipf_theta,
        value_size: 128,
        start_offset: start,
        // Throughput-style scenarios disable retries-on-silence; the
        // failover scenario re-enables them (clients must escape a dead
        // leader).
        request_timeout: None,
        read_fanout: false,
        record_trace: false,
    }
}

fn sharded_sim(
    shards: usize,
    tuning: TuningConfig,
    seed: u64,
    workload: WorkloadSpec,
) -> ShardedClusterSim {
    ScenarioBuilder::cluster(REPLICAS)
        .shards(shards)
        .tuning(tuning)
        .cost(serving_cost())
        .cores(2)
        .seed(seed)
        .workload(workload)
        .build_sharded_sim()
}

/// One point of the scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Shard count of this run.
    pub shards: usize,
    /// Aggregate offered load (req/s).
    pub offered_rps: f64,
    /// Requests completed by the horizon, across all shards.
    pub completed: u64,
    /// Aggregate committed throughput (req/s over the load window).
    pub aggregate_rps: f64,
}

/// Measure aggregate committed throughput for each shard count in
/// `shard_counts`, at a fixed per-node configuration and a fixed aggregate
/// offered load (sized to overload a single group ~5×). Runs fan out in
/// parallel; results merge in input order, so any `--jobs` width produces
/// identical output.
#[must_use]
pub fn measure_scaling(ctx: &RunCtx, shard_counts: &[usize]) -> Vec<ScalingPoint> {
    let hold = Duration::from_secs(ctx.scale(30, 6) as u64);
    let start = Duration::from_secs(3);
    let drain = Duration::from_secs(1);
    let offered = 4_000.0;
    shard_counts
        .to_vec()
        .into_par_iter()
        .map(|shards| {
            let seed = ctx.system_seed(&format!("sharded_throughput-{shards}"));
            // Uniform keys: scaling is the subject here, skew is HotShard's.
            let mut sim = sharded_sim(
                shards,
                TuningConfig::raft_default(),
                seed,
                steady_workload(offered, hold, 0.0, start),
            );
            sim.run_until(SimTime::ZERO + start + hold + drain);
            let completed = sim.total_completed();
            ScalingPoint {
                shards,
                offered_rps: offered,
                completed,
                aggregate_rps: completed as f64 / (hold + drain).as_secs_f64(),
            }
        })
        .collect()
}

/// Aggregate committed ops vs shard count (1/2/4/8) at fixed per-node
/// config: the scale-out headline of the sharded serving layer.
pub struct ShardedThroughput;

impl Experiment for ShardedThroughput {
    fn name(&self) -> &'static str {
        "sharded_throughput"
    }

    fn describe(&self) -> &'static str {
        "aggregate committed throughput vs shard count (1/2/4/8) at fixed per-node config"
    }
    fn headline_metric(&self) -> &'static str {
        "committed-throughput scaling from 1 to 8 shards"
    }

    fn ci_assertion(&self) -> &'static str {
        "tests/sharding.rs asserts >= 3x scaling at 8 shards"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let points = measure_scaling(ctx, &[1, 2, 4, 8]);
        let base = points[0].aggregate_rps;
        let mut report = Report::new(self.name());
        report.table(
            &format!(
                "{} req/s offered aggregate, {REPLICAS} replicas/shard, 2 cores/server",
                points[0].offered_rps
            ),
            ["shards", "completed ops", "aggregate (req/s)", "vs 1 shard"],
            points
                .iter()
                .map(|p| {
                    vec![
                        format!("{}", p.shards),
                        format!("{}", p.completed),
                        format!("{:.0}", p.aggregate_rps),
                        format!("{:.2}x", p.aggregate_rps / base),
                    ]
                })
                .collect(),
        );
        let last = wired(points.last(), "the shard-count sweep is non-empty");
        report.headline(
            "committed-throughput scaling, 1 -> 8 shards",
            "n/a (beyond paper)",
            &format!("{:.2}x", last.aggregate_rps / base),
        );
        report.artifact(
            "sharded_throughput.csv",
            std::iter::once("shards,completed,aggregate_rps".to_string())
                .chain(
                    points
                        .iter()
                        .map(|p| format!("{},{},{:.1}", p.shards, p.completed, p.aggregate_rps)),
                )
                .collect::<Vec<_>>()
                .join("\n")
                + "\n",
        );
        report.note(
            "a single Raft group is leader-CPU-bound; hash-partitioning the keyspace\n\
             across groups multiplies the commit pipelines while each node keeps the\n\
             same configuration.",
        );
        report
    }
}

/// Per-shard outcome of one hot-shard run.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewOutcome {
    /// Requests routed to each shard.
    pub sent: Vec<u64>,
    /// Requests completed per shard.
    pub completed: Vec<u64>,
    /// Aggregate completed ops.
    pub total_completed: u64,
}

/// Run the hot-shard workload at `zipf_theta` and report per-shard load.
#[must_use]
pub fn measure_skew(ctx: &RunCtx, zipf_theta: f64) -> SkewOutcome {
    let hold = Duration::from_secs(ctx.scale(30, 6) as u64);
    let start = Duration::from_secs(3);
    let seed = ctx.system_seed(&format!("hot_shard-{zipf_theta}"));
    let mut sim = sharded_sim(
        8,
        TuningConfig::raft_default(),
        seed,
        steady_workload(3_000.0, hold, zipf_theta, start),
    );
    sim.run_until(SimTime::ZERO + start + hold + Duration::from_secs(1));
    let stats = wired(sim.shard_stats(), "the builder attached a shard client");
    SkewOutcome {
        sent: stats.iter().map(|s| s.sent).collect(),
        completed: stats.iter().map(|s| s.completed).collect(),
        total_completed: sim.total_completed(),
    }
}

/// Zipf-skewed keys concentrating load on one Raft group: sharding scales
/// only as far as the key distribution spreads.
pub struct HotShard;

impl Experiment for HotShard {
    fn name(&self) -> &'static str {
        "hot_shard"
    }

    fn describe(&self) -> &'static str {
        "Zipf-skewed keys concentrate load on one of 8 groups; skew caps the scale-out win"
    }
    fn headline_metric(&self) -> &'static str {
        "hot shard's share of offered load under zipf 1.4 skew"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; skew penalty reported (bounds asserted in tests/sharding.rs)"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        // YCSB-beyond skew at theta 1.4: the head key is ~30% of traffic.
        let mut runs: Vec<SkewOutcome> = [0.0, 1.4]
            .into_par_iter()
            .map(|theta| measure_skew(ctx, theta))
            .collect();
        let skewed = wired(runs.pop(), "two runs were mapped above");
        let uniform = wired(runs.pop(), "two runs were mapped above");
        let share = |o: &SkewOutcome, s: usize| {
            o.sent[s] as f64 / o.sent.iter().sum::<u64>().max(1) as f64 * 100.0
        };
        let mut report = Report::new(self.name());
        report.table(
            "per-shard offered share and completions (8 shards, 3000 req/s offered)",
            [
                "shard",
                "uniform sent %",
                "uniform done",
                "zipf sent %",
                "zipf done",
            ],
            (0..8)
                .map(|s| {
                    vec![
                        format!("{s}"),
                        format!("{:.1}", share(&uniform, s)),
                        format!("{}", uniform.completed[s]),
                        format!("{:.1}", share(&skewed, s)),
                        format!("{}", skewed.completed[s]),
                    ]
                })
                .collect(),
        );
        let hot = wired(
            (0..8).max_by_key(|&s| skewed.sent[s]),
            "the 0..8 shard range is non-empty",
        );
        report.headline(
            "hot shard's share of offered load (zipf 1.4)",
            "n/a (beyond paper)",
            &format!("{:.0}%", share(&skewed, hot)),
        );
        report.headline(
            "aggregate completed, zipf vs uniform keys",
            "n/a (beyond paper)",
            &format!(
                "{:.2}x",
                skewed.total_completed as f64 / uniform.total_completed.max(1) as f64
            ),
        );
        report.note(
            "hash partitioning spreads *keys*, not *traffic*: under heavy skew one\n\
             group saturates while its neighbors idle, and the aggregate falls back\n\
             toward single-group throughput. Mitigations (hot-key splitting,\n\
             request-level caching) are future scenarios.",
        );
        report
    }
}

/// Per-system outcome of the shard-leader-failover measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverIsolation {
    /// Shard whose leader was crashed.
    pub crashed_shard: usize,
    /// Per-shard committed rate (req/s) in the pre-fault baseline window.
    pub baseline_rps: Vec<f64>,
    /// Per-shard committed rate (req/s) in the outage window.
    pub outage_rps: Vec<f64>,
    /// Per-shard goodput fraction (completed / offered) in the baseline
    /// window. Normalizing by each window's own Poisson arrivals isolates
    /// serving behavior from arrival-count noise.
    pub baseline_goodput: Vec<f64>,
    /// Per-shard goodput fraction in the outage window.
    pub outage_goodput: Vec<f64>,
    /// Worst relative goodput deviation from baseline across *unaffected*
    /// shards (percent).
    pub worst_unaffected_dev_pct: f64,
    /// Failure-detection time on the affected shard (ms), if observed.
    pub detection_ms: Option<f64>,
    /// Out-of-service time of the affected shard (ms), if observed.
    pub ots_ms: Option<f64>,
}

/// Crash the leader of shard 0 mid-load and measure per-shard committed
/// rates in equal windows before and during the outage, plus the affected
/// shard's detection/OTS from its group's event log.
#[must_use]
pub fn measure_isolation(ctx: &RunCtx, label: &str, tuning: TuningConfig) -> FailoverIsolation {
    let window = Duration::from_secs(ctx.scale(20, 8) as u64);
    let warmup = Duration::from_secs(12);
    let start = Duration::from_secs(3);
    let shards = 4;
    // ~300 req/s per shard: well under capacity, so any outage-window dip
    // on a healthy shard is interference, not saturation noise.
    let mut workload = steady_workload(1_200.0, warmup + window * 2, 0.0, start);
    workload.request_timeout = Some(Duration::from_secs(1));
    let seed = ctx.system_seed(label);
    let mut sim = sharded_sim(shards, tuning, seed, workload);

    let snapshot = |sim: &ShardedClusterSim| {
        let stats = wired(sim.shard_stats(), "the builder attached a shard client");
        let sent: Vec<u64> = stats.iter().map(|s| s.sent).collect();
        let done: Vec<u64> = stats.iter().map(|s| s.completed).collect();
        (sent, done)
    };
    sim.run_until(SimTime::ZERO + start + warmup);
    let at_warm = snapshot(&sim);
    sim.run_for(window);
    let at_fault = snapshot(&sim);
    let t_fault = sim.now();
    let victim = wired(sim.leader_of(0), "shard 0 elected during the warmup window");
    sim.crash(victim);
    sim.run_for(window);
    let at_end = snapshot(&sim);

    let secs = window.as_secs_f64();
    let rate = |a: &(Vec<u64>, Vec<u64>), b: &(Vec<u64>, Vec<u64>), s: usize| {
        (b.1[s] - a.1[s]) as f64 / secs
    };
    let goodput = |a: &(Vec<u64>, Vec<u64>), b: &(Vec<u64>, Vec<u64>), s: usize| {
        (b.1[s] - a.1[s]) as f64 / ((b.0[s] - a.0[s]) as f64).max(1.0)
    };
    let baseline_rps: Vec<f64> = (0..shards).map(|s| rate(&at_warm, &at_fault, s)).collect();
    let outage_rps: Vec<f64> = (0..shards).map(|s| rate(&at_fault, &at_end, s)).collect();
    let baseline_goodput: Vec<f64> = (0..shards)
        .map(|s| goodput(&at_warm, &at_fault, s))
        .collect();
    let outage_goodput: Vec<f64> = (0..shards)
        .map(|s| goodput(&at_fault, &at_end, s))
        .collect();
    let worst_unaffected_dev_pct = (1..shards)
        .map(|s| (1.0 - outage_goodput[s] / baseline_goodput[s].max(1e-9)).abs() * 100.0)
        .fold(0.0, f64::max);
    let local_victim = victim - sim.map().group_base(0);
    let failover = extract_failover(&sim.shard_events(0), t_fault, local_victim);
    FailoverIsolation {
        crashed_shard: 0,
        baseline_rps,
        outage_rps,
        baseline_goodput,
        outage_goodput,
        worst_unaffected_dev_pct,
        detection_ms: failover.detection.map(|d| d.as_secs_f64() * 1e3),
        ots_ms: failover.ots.map(|d| d.as_secs_f64() * 1e3),
    }
}

/// Crash one group's leader mid-load: the other shards must not notice,
/// and the affected shard's outage is bounded by failure detection — the
/// paper's dynamic timeouts shrink exactly that bound, per shard.
pub struct ShardLeaderFailover;

impl Experiment for ShardLeaderFailover {
    fn name(&self) -> &'static str {
        "shard_leader_failover"
    }

    fn describe(&self) -> &'static str {
        "crash one group's leader mid-load: blast radius + per-shard detection bound"
    }
    fn headline_metric(&self) -> &'static str {
        "unaffected-shard goodput deviation during one group's leader outage"
    }

    fn ci_assertion(&self) -> &'static str {
        "tests/sharding.rs asserts unaffected shards stay within 5% of baseline"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let mut runs: Vec<FailoverIsolation> = [
            ("raft", TuningConfig::raft_default()),
            ("dynatune", TuningConfig::dynatune()),
        ]
        .into_par_iter()
        .map(|(label, tuning)| measure_isolation(ctx, label, tuning))
        .collect();
        let dynatune = wired(runs.pop(), "two systems were mapped above");
        let raft = wired(runs.pop(), "two systems were mapped above");
        let mut report = Report::new(self.name());
        for (label, m) in [("raft", &raft), ("dynatune", &dynatune)] {
            report.table(
                &format!("{label}: per-shard serving, baseline vs outage window"),
                [
                    "shard",
                    "baseline (req/s)",
                    "outage (req/s)",
                    "baseline goodput",
                    "outage goodput",
                ],
                (0..m.baseline_rps.len())
                    .map(|s| {
                        vec![
                            if s == m.crashed_shard {
                                format!("{s} (leader crashed)")
                            } else {
                                format!("{s}")
                            },
                            format!("{:.0}", m.baseline_rps[s]),
                            format!("{:.0}", m.outage_rps[s]),
                            format!("{:.3}", m.baseline_goodput[s]),
                            format!("{:.3}", m.outage_goodput[s]),
                        ]
                    })
                    .collect(),
            );
        }
        report.headline(
            "worst unaffected-shard deviation during outage",
            "<= 5%",
            &format!(
                "raft {:.1}%, dynatune {:.1}%",
                raft.worst_unaffected_dev_pct, dynatune.worst_unaffected_dev_pct
            ),
        );
        report.headline(
            "affected shard detection time",
            "dynatune < raft",
            &format!(
                "raft {:.0} ms, dynatune {:.0} ms",
                raft.detection_ms.unwrap_or(f64::NAN),
                dynatune.detection_ms.unwrap_or(f64::NAN)
            ),
        );
        report.note(
            "groups share nothing but the network fabric, so a leader crash in one\n\
             shard leaves the others' commit pipelines untouched; the affected\n\
             shard's outage equals detection + election, which per-path tuning\n\
             shrinks just as it does for the single-group Fig. 4.",
        );
        report
    }
}
