//! Fig. 5 + §IV-B2: throughput vs latency under open-loop ramp load.

use crate::experiments::throughput::{run, ThroughputConfig, ThroughputResult};
use crate::scenario::{compare_row, Experiment, Report, RunCtx, ScenarioBuilder};
use dynatune_core::TuningConfig;
use dynatune_stats::table::series_csv;
use std::time::Duration;

/// Fig. 5: latency-vs-throughput ramps, Raft vs Dynatune; reports peak
/// throughput and the tuning overhead.
pub struct Fig5Throughput;

impl Fig5Throughput {
    fn study(&self, ctx: &RunCtx, label: &str, tuning: TuningConfig) -> ThroughputResult {
        let cluster = ScenarioBuilder::cluster(5)
            .tuning(tuning)
            .seed(ctx.system_seed(label))
            .build();
        let mut cfg = ThroughputConfig::new(cluster, 16_000.0);
        if ctx.quick {
            cfg.increment = 4_000.0;
            cfg.hold = Duration::from_secs(4);
            cfg.repeats = 2;
        }
        if let Some(r) = ctx.repeats {
            cfg.repeats = r;
        }
        run(&cfg)
    }
}

impl Experiment for Fig5Throughput {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn describe(&self) -> &'static str {
        "throughput vs latency (open-loop ramp, 5 servers, RTT 100ms)"
    }
    fn headline_metric(&self) -> &'static str {
        "peak committed throughput and the tuning overhead at peak (paper Fig. 5)"
    }

    fn ci_assertion(&self) -> &'static str {
        "runs end-to-end; peaks reported against the paper, not asserted"
    }

    fn run(&self, ctx: &RunCtx) -> Report {
        let raft = self.study(ctx, "raft", TuningConfig::raft_default());
        let dynatune = self.study(ctx, "dynatune", TuningConfig::dynatune());

        let mut report = Report::new(self.name());
        report.table(
            "ramp levels",
            [
                "offered (req/s)",
                "raft tput",
                "raft lat (ms)",
                "dynatune tput",
                "dynatune lat (ms)",
            ],
            raft.levels
                .iter()
                .zip(dynatune.levels.iter())
                .map(|(r, d)| {
                    vec![
                        format!("{:.0}", r.offered_rps),
                        format!("{:.0}", r.throughput.mean()),
                        format!("{:.1}", r.latency_ms.mean()),
                        format!("{:.0}", d.throughput.mean()),
                        format!("{:.1}", d.latency_ms.mean()),
                    ]
                })
                .collect(),
        );

        let raft_peak = raft.peak_throughput();
        let dt_peak = dynatune.peak_throughput();
        report.table(
            "peak throughput",
            ["metric", "paper", "measured", "ratio"],
            vec![
                compare_row("Raft peak throughput (req/s)", 13_678.0, raft_peak),
                compare_row("Dynatune peak throughput (req/s)", 12_800.0, dt_peak),
            ],
        );
        report.headline(
            "tuning overhead at peak",
            "6.4%",
            &format!("{:.1}%", (1.0 - dt_peak / raft_peak) * 100.0),
        );
        report.artifact(
            "fig5_raft.csv",
            series_csv(("throughput_rps", "latency_ms"), &raft.curve()),
        );
        report.artifact(
            "fig5_dynatune.csv",
            series_csv(("throughput_rps", "latency_ms"), &dynatune.curve()),
        );
        report
    }
}
