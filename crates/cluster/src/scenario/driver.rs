//! Generic scenario driver: executes a [`FaultPlan`] against a cluster and
//! samples observables on a fixed cadence.
//!
//! The driver replaces the imperative run/pause/observe loops that used to
//! be duplicated across `experiments/*.rs`. It interleaves two streams of
//! simulated-time work:
//!
//! 1. **Fault events** from the plan, with per-event jitter resolved
//!    deterministically from the cluster seed, and symbolic targets
//!    (`Leader`, `LeaderPlusFollowers`) resolved against live cluster
//!    state at fire time. Every execution is recorded in a trace, together
//!    with the pre-fault leader and randomized timeouts, so experiments
//!    can reconstruct "state just before the failure" without hooks.
//! 2. **Samples** every `sample_every`, capturing the observables all the
//!    fluctuation figures need (k-th smallest randomizedTimeout, probe
//!    RTT/loss, leader heartbeat interval).

use crate::observers::kth_smallest_timeout_ms;
use crate::scenario::plan::{FaultAction, FaultEvent, FaultPlan, PartitionSpec, Target};
use crate::sim::{ClusterConfig, ClusterSim};
use dynatune_raft::NodeId;
use dynatune_simnet::{Rng, SimTime};
use std::time::Duration;

/// Seed salt for fault-phase jitter (kept from the original failover
/// experiment so trial phase distributions stay comparable).
const PHASE_SALT: u64 = 0xFA11;

/// How long the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// Run until this absolute simulated time.
    At(Duration),
    /// Run until the last *resolved* fault time plus this observation
    /// window (equals `At` semantics for an empty plan).
    AfterLastFault(Duration),
}

/// One executed (or skipped) fault, with the pre-fault cluster state.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutedFault {
    /// Index into the plan's event list.
    pub index: usize,
    /// Resolved fire time (nominal + jitter draw).
    pub at: SimTime,
    /// The declarative action.
    pub action: FaultAction,
    /// Concrete nodes acted upon (empty for `Heal`/`ResumeAll`/skips).
    pub targets: Vec<NodeId>,
    /// True when a symbolic target could not be resolved (e.g. `Leader`
    /// with no live leader) and the action was skipped.
    pub skipped: bool,
    /// The live leader just before the action fired.
    pub leader_before: Option<NodeId>,
    /// Per-node randomized timeouts (ms) just before the action fired
    /// (`None` for paused nodes).
    pub rtos_before_ms: Vec<Option<f64>>,
}

impl ExecutedFault {
    /// Mean randomized timeout (ms) across live nodes other than
    /// `exclude` just before the fault — the paper's "mean
    /// randomizedTimeout at the time of detection".
    #[must_use]
    pub fn mean_rto_before_ms(&self, exclude: Option<NodeId>) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (id, rto) in self.rtos_before_ms.iter().enumerate() {
            if Some(id) == exclude {
                continue;
            }
            if let Some(ms) = rto {
                sum += ms;
                count += 1;
            }
        }
        if count == 0 {
            f64::NAN
        } else {
            sum / count as f64
        }
    }
}

/// One periodic observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample time.
    pub t: SimTime,
    /// Live leader, if exactly one exists.
    pub leader: Option<NodeId>,
    /// k-th smallest randomized timeout (ms) across live servers, with
    /// k = ⌊n/2⌋ + 1 (the majority representative of Fig. 6).
    pub majority_rto_ms: Option<f64>,
    /// Scheduled RTT of the 0→1 probe link (ms).
    pub rtt_ms: f64,
    /// Scheduled loss rate of the 0→1 probe link.
    pub loss: f64,
    /// Mean heartbeat interval the leader applies (ms), if a leader exists
    /// and paces at least one follower.
    pub leader_mean_h_ms: Option<f64>,
}

/// Everything a scenario run produced.
pub struct ScenarioRun {
    /// The final cluster state (event logs, tuning snapshots, counters).
    pub sim: ClusterSim,
    /// Executed faults, in fire order.
    pub trace: Vec<ExecutedFault>,
    /// Periodic samples (empty unless sampling was enabled).
    pub samples: Vec<Sample>,
    /// The absolute horizon the run ended at.
    pub horizon: SimTime,
}

impl ScenarioRun {
    /// The first non-skipped fault, if any — the anchor most single-fault
    /// experiments (failover) measure from.
    #[must_use]
    pub fn first_fault(&self) -> Option<&ExecutedFault> {
        self.trace.iter().find(|f| !f.skipped)
    }
}

/// Configured, not-yet-run scenario execution.
pub struct ScenarioDriver {
    config: ClusterConfig,
    plan: FaultPlan,
    sample_every: Option<Duration>,
    horizon: Horizon,
}

impl ScenarioDriver {
    /// Drive `config` with no faults, no sampling, for 60 s (override with
    /// [`Self::horizon`]).
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            config,
            plan: FaultPlan::new(),
            sample_every: None,
            horizon: Horizon::At(Duration::from_secs(60)),
        }
    }

    /// Attach a fault plan.
    #[must_use]
    pub fn plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Sample observables every `every`.
    ///
    /// # Panics
    /// Panics on a zero interval: the event loop would spin at one
    /// simulated instant forever.
    #[must_use]
    pub fn sample_every(mut self, every: Duration) -> Self {
        assert!(every > Duration::ZERO, "sampling cadence must be positive");
        self.sample_every = Some(every);
        self
    }

    /// Set the run horizon.
    #[must_use]
    pub fn horizon(mut self, horizon: Horizon) -> Self {
        self.horizon = horizon;
        self
    }

    /// Execute the scenario.
    ///
    /// # Panics
    /// Panics when `Horizon::AfterLastFault` is used with jittered events
    /// that would fire after the computed horizon (cannot happen: the
    /// horizon anchors on the last resolved time).
    #[must_use]
    pub fn run(self) -> ScenarioRun {
        let seed = self.config.seed;
        let mut sim = ClusterSim::new(&self.config);
        // Resolve each event's fire time up front: nominal + U[0, jitter),
        // drawn from a per-event child of the seed so plans of different
        // lengths don't perturb each other's draws.
        let mut resolved: Vec<(SimTime, usize, FaultEvent)> = self
            .plan
            .events()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let at = if e.jitter > Duration::ZERO {
                    let mut rng = Rng::new(seed ^ PHASE_SALT).child(i as u64);
                    let extra = Duration::from_nanos(rng.below(e.jitter.as_nanos() as u64));
                    SimTime::ZERO + e.at + extra
                } else {
                    SimTime::ZERO + e.at
                };
                (at, i, e.clone())
            })
            .collect();
        resolved.sort_by_key(|&(at, i, _)| (at, i));

        let horizon = match self.horizon {
            Horizon::At(d) => SimTime::ZERO + d,
            Horizon::AfterLastFault(observe) => {
                let last = resolved.last().map_or(SimTime::ZERO, |&(at, _, _)| at);
                last + observe
            }
        };

        let mut trace = Vec::with_capacity(resolved.len());
        let mut samples = Vec::new();
        let mut next_sample = self.sample_every.map(|every| SimTime::ZERO + every);
        let mut faults = resolved.into_iter().peekable();

        loop {
            // The next thing to do: a fault, a sample, or the horizon.
            let next_fault_at = faults.peek().map(|&(at, _, _)| at);
            let step_to = [next_fault_at, next_sample]
                .into_iter()
                .flatten()
                .min()
                .map_or(horizon, |t| t.min(horizon));
            if step_to > horizon {
                break;
            }
            sim.run_until(step_to);
            // Faults fire before samples at the same instant: a sample at
            // a fault time observes the post-fault world, matching the old
            // imperative loops (inject, then keep sampling).
            while faults.peek().is_some_and(|&(at, _, _)| at <= step_to) {
                let Some((at, index, event)) = faults.next() else {
                    break; // unreachable: peek() above was Some
                };
                trace.push(execute(&mut sim, at, index, &event));
            }
            if next_sample.is_some_and(|t| t <= step_to) {
                samples.push(observe(&sim));
                next_sample = next_sample
                    .zip(self.sample_every)
                    .map(|(t, every)| t + every);
            }
            if step_to >= horizon {
                break;
            }
        }

        ScenarioRun {
            sim,
            trace,
            samples,
            horizon,
        }
    }
}

/// Resolve a symbolic target against live cluster state.
fn resolve_target(sim: &ClusterSim, target: Target) -> Option<NodeId> {
    match target {
        Target::Node(id) => Some(id),
        Target::Leader => sim.leader(),
    }
}

/// Resolve a partition spec to the cut-off group.
fn resolve_partition(sim: &ClusterSim, spec: &PartitionSpec) -> Option<Vec<NodeId>> {
    match spec {
        PartitionSpec::Nodes(nodes) => Some(nodes.clone()),
        PartitionSpec::LeaderPlusFollowers(k) => {
            let leader = sim.leader()?;
            let mut group = vec![leader];
            group.extend((0..sim.n_servers()).filter(|&id| id != leader).take(*k));
            Some(group)
        }
        PartitionSpec::FollowersOnly(k) => {
            let leader = sim.leader()?;
            Some(
                (0..sim.n_servers())
                    .filter(|&id| id != leader)
                    .take(*k)
                    .collect(),
            )
        }
    }
}

fn execute(sim: &mut ClusterSim, at: SimTime, index: usize, event: &FaultEvent) -> ExecutedFault {
    let leader_before = sim.leader();
    let rtos_before_ms: Vec<Option<f64>> = sim
        .randomized_timeouts()
        .iter()
        .map(|d| d.map(|d| d.as_secs_f64() * 1e3))
        .collect();
    let mut targets = Vec::new();
    let mut skipped = false;
    match &event.action {
        FaultAction::Pause(t) => match resolve_target(sim, *t) {
            Some(id) => {
                sim.pause(id);
                targets.push(id);
            }
            None => skipped = true,
        },
        FaultAction::Resume(t) => match resolve_target(sim, *t) {
            Some(id) => {
                sim.resume(id);
                targets.push(id);
            }
            None => skipped = true,
        },
        FaultAction::ResumeAll => {
            for id in 0..sim.n_servers() {
                if sim.is_paused(id) {
                    sim.resume(id);
                    targets.push(id);
                }
            }
        }
        FaultAction::Crash(t) => match resolve_target(sim, *t) {
            Some(id) => {
                sim.crash(id);
                targets.push(id);
            }
            None => skipped = true,
        },
        FaultAction::Partition(spec) => match resolve_partition(sim, spec) {
            Some(group) => {
                sim.partition(&group);
                targets = group;
            }
            None => skipped = true,
        },
        FaultAction::Heal => sim.heal_partition(),
    }
    ExecutedFault {
        index,
        at,
        action: event.action.clone(),
        targets,
        skipped,
        leader_before,
        rtos_before_ms,
    }
}

fn observe(sim: &ClusterSim) -> Sample {
    let n = sim.n_servers();
    let k = n / 2 + 1;
    Sample {
        t: sim.now(),
        leader: sim.leader(),
        majority_rto_ms: kth_smallest_timeout_ms(&sim.randomized_timeouts(), k),
        rtt_ms: sim.probe_rtt().as_secs_f64() * 1e3,
        loss: sim.probe_loss(),
        leader_mean_h_ms: sim
            .leader_mean_heartbeat_interval()
            .map(|d| d.as_secs_f64() * 1e3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builder::ScenarioBuilder;
    use dynatune_core::TuningConfig;
    use dynatune_raft::Role;

    fn stable(seed: u64) -> ClusterConfig {
        ScenarioBuilder::cluster(5)
            .tuning(TuningConfig::raft_default())
            .seed(seed)
            .build()
    }

    #[test]
    fn pause_leader_plan_causes_failover() {
        let plan = FaultPlan::new().pause_leader(Duration::from_secs(10), Duration::from_secs(1));
        let run = ScenarioDriver::new(stable(4))
            .plan(plan)
            .horizon(Horizon::AfterLastFault(Duration::from_secs(10)))
            .run();
        let fault = run.first_fault().expect("fault executed");
        assert!(!fault.skipped);
        assert_eq!(fault.targets.len(), 1);
        let old_leader = fault.targets[0];
        assert_eq!(fault.leader_before, Some(old_leader));
        // Jitter places the fault within [10s, 11s).
        assert!(fault.at >= SimTime::from_secs(10) && fault.at < SimTime::from_secs(11));
        let new_leader = run.sim.leader().expect("failover leader");
        assert_ne!(new_leader, old_leader);
    }

    #[test]
    fn sampling_observes_on_cadence() {
        let run = ScenarioDriver::new(stable(5))
            .sample_every(Duration::from_secs(1))
            .horizon(Horizon::At(Duration::from_secs(10)))
            .run();
        assert_eq!(run.samples.len(), 10);
        assert_eq!(run.samples[0].t, SimTime::from_secs(1));
        assert_eq!(run.samples[9].t, SimTime::from_secs(10));
        // Stable 100ms mesh: the probe RTT is constant.
        assert!((run.samples[3].rtt_ms - 100.0).abs() < 1e-9);
        // A leader exists by the late samples.
        assert!(run.samples.last().unwrap().leader.is_some());
    }

    #[test]
    fn symbolic_target_without_leader_is_skipped() {
        // t=0: no leader can exist yet.
        let plan = FaultPlan::new().crash_leader(Duration::ZERO);
        let run = ScenarioDriver::new(stable(6))
            .plan(plan)
            .horizon(Horizon::At(Duration::from_secs(5)))
            .run();
        assert_eq!(run.trace.len(), 1);
        assert!(run.trace[0].skipped);
        assert!(run.first_fault().is_none());
    }

    #[test]
    fn partition_and_heal_round_trip() {
        let plan = FaultPlan::new()
            .partition(
                Duration::from_secs(15),
                PartitionSpec::LeaderPlusFollowers(1),
            )
            .heal(Duration::from_secs(35));
        let run = ScenarioDriver::new(stable(7))
            .plan(plan)
            .horizon(Horizon::At(Duration::from_secs(55)))
            .run();
        assert_eq!(run.trace.len(), 2);
        let cut = &run.trace[0];
        assert_eq!(cut.targets.len(), 2, "leader plus one follower");
        let old_leader = cut.leader_before.expect("leader before partition");
        assert!(cut.targets.contains(&old_leader));
        // Majority elected a replacement; after healing the old leader is
        // a follower again.
        let final_leader = run.sim.leader().expect("leader after heal");
        assert_ne!(final_leader, old_leader);
        let role = run.sim.with_server(old_leader, |s| s.node().role());
        assert_eq!(role, Role::Follower);
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            let plan =
                FaultPlan::new().pause_leader(Duration::from_secs(10), Duration::from_secs(1));
            let run = ScenarioDriver::new(stable(8))
                .plan(plan)
                .sample_every(Duration::from_secs(2))
                .horizon(Horizon::AfterLastFault(Duration::from_secs(8)))
                .run();
            (run.trace, run.samples, run.sim.events().len())
        };
        let (t1, s1, e1) = go();
        let (t2, s2, e2) = go();
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        assert_eq!(e1, e2);
    }
}
