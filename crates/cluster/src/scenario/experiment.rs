//! The [`Experiment`] trait and [`RunCtx`]: the uniform interface every
//! registered scenario implements.
//!
//! An experiment is a named, self-describing unit that turns a [`RunCtx`]
//! (seed, scale, parallelism) into a [`Report`]. The registry
//! (`scenario::registry`) enumerates them; the `scenarios` binary and the
//! per-figure wrappers drive them.

use crate::scenario::report::Report;
use dynatune_simnet::rng::splitmix64;

/// Execution context shared by every experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCtx {
    /// Master seed; per-system and per-trial seeds derive from it via
    /// [`RunCtx::system_seed`] and the experiments' trial splitting.
    pub seed: u64,
    /// Scaled-down smoke run (fewer trials, shorter holds).
    pub quick: bool,
    /// Trial-count override (`None`: the experiment's default).
    pub trials: Option<usize>,
    /// Repeat-count override (`None`: the experiment's default).
    pub repeats: Option<usize>,
    /// Worker threads for trial fan-out; 0 means "all cores". Any value
    /// produces bit-identical reports (seeds derive from trial indices and
    /// results merge in input order).
    pub jobs: usize,
}

impl RunCtx {
    /// A context with the given seed, full scale, default parallelism.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            quick: false,
            trials: None,
            repeats: None,
            jobs: 0,
        }
    }

    /// Builder-style quick toggle.
    #[must_use]
    pub fn quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Builder-style jobs cap.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Pick between the full (paper-scale) and quick values.
    #[must_use]
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Trial count: the override if given, else full/quick defaults.
    #[must_use]
    pub fn trials_or(&self, full: usize, quick: usize) -> usize {
        self.trials.unwrap_or_else(|| self.scale(full, quick))
    }

    /// Repeat count: the override if given, else full/quick defaults.
    #[must_use]
    pub fn repeats_or(&self, full: usize, quick: usize) -> usize {
        self.repeats.unwrap_or_else(|| self.scale(full, quick))
    }

    /// Derive the master seed for one *system under test* (e.g. "raft" vs
    /// "dynatune") from a stable label.
    ///
    /// This replaces the ad-hoc `seed ^ 0xD1` splitting the figure
    /// binaries used to scatter: every label maps to an independent,
    /// documented seed stream (FNV-1a over the label, mixed with the
    /// master seed through splitmix64), so two systems in one experiment
    /// never share RNG streams and adding a third system cannot collide
    /// with the first two.
    #[must_use]
    pub fn system_seed(&self, label: &str) -> u64 {
        // FNV-1a 64-bit over the label bytes.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = self.seed ^ hash;
        splitmix64(&mut state)
    }

    /// Run an experiment under this context's `jobs` cap: parallel trial
    /// fan-out inside the experiment is limited to `jobs` worker threads
    /// (0 = all cores).
    #[must_use]
    pub fn run(&self, experiment: &dyn Experiment) -> Report {
        if self.jobs > 0 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(self.jobs)
                .build();
            match pool {
                Ok(pool) => pool.install(|| experiment.run(self)),
                // Results are bit-identical across thread counts, so an
                // inline run is a correct (merely slower) fallback.
                Err(_) => experiment.run(self),
            }
        } else {
            experiment.run(self)
        }
    }
}

/// A named, registered scenario.
///
/// The metadata methods feed the generated `SCENARIOS.md` catalog
/// (`scenarios --describe-md`), so every scenario documents its headline
/// metric and what CI enforces — in code, where it cannot rot apart from
/// the implementation.
pub trait Experiment: Sync {
    /// Registry key (`fig4`, `partition_churn`, ...).
    fn name(&self) -> &'static str;
    /// One-line description for `scenarios --list` (what it models).
    fn describe(&self) -> &'static str;
    /// The headline metric the report leads with.
    fn headline_metric(&self) -> &'static str;
    /// What the CI `--quick` smoke run enforces (a hard `assert!` inside
    /// `run`, or "reported, not asserted" for paper-comparison figures).
    fn ci_assertion(&self) -> &'static str;
    /// Execute and report.
    fn run(&self, ctx: &RunCtx) -> Report;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_seeds_differ_by_label_and_seed() {
        let ctx = RunCtx::new(42);
        let raft = ctx.system_seed("raft");
        let dynatune = ctx.system_seed("dynatune");
        assert_ne!(raft, dynatune);
        assert_ne!(raft, 42, "derived, not the raw master seed");
        // Stable across calls.
        assert_eq!(raft, ctx.system_seed("raft"));
        // Responds to the master seed.
        assert_ne!(raft, RunCtx::new(43).system_seed("raft"));
    }

    #[test]
    fn scale_and_overrides() {
        let mut ctx = RunCtx::new(1);
        assert_eq!(ctx.trials_or(1000, 50), 1000);
        ctx.quick = true;
        assert_eq!(ctx.trials_or(1000, 50), 50);
        ctx.trials = Some(7);
        assert_eq!(ctx.trials_or(1000, 50), 7);
        assert_eq!(ctx.repeats_or(10, 2), 2);
    }

    struct CountUp;
    impl Experiment for CountUp {
        fn name(&self) -> &'static str {
            "count_up"
        }
        fn describe(&self) -> &'static str {
            "test experiment"
        }
        fn headline_metric(&self) -> &'static str {
            "xor of derived seeds"
        }
        fn ci_assertion(&self) -> &'static str {
            "none (test-only)"
        }
        fn run(&self, ctx: &RunCtx) -> Report {
            use rayon::prelude::*;
            let v: Vec<u64> = (0..100u64)
                .into_par_iter()
                .map(|i| {
                    let mut s = ctx.seed ^ i;
                    dynatune_simnet::rng::splitmix64(&mut s)
                })
                .collect();
            let mut r = Report::new(self.name());
            r.note(format!("{:x}", v.iter().fold(0u64, |a, b| a ^ b)));
            r
        }
    }

    #[test]
    fn jobs_cap_does_not_change_results() {
        let exp = CountUp;
        let serial = RunCtx::new(9).jobs(1).run(&exp);
        let wide = RunCtx::new(9).jobs(4).run(&exp);
        let default = RunCtx::new(9).run(&exp);
        assert_eq!(serial, wide);
        assert_eq!(serial, default);
    }
}
