//! Declarative scenario API: describe *what* an experiment does, let a
//! generic driver execute it.
//!
//! The paper's evaluation (§IV) is a family of "build a cluster, disturb
//! it, measure" procedures. This module factors that family into four
//! orthogonal pieces:
//!
//! | Piece | Type | Role |
//! |-------|------|------|
//! | network plan | [`NetPlan`] | the network as data: uniform meshes, schedules, geo presets, asymmetric degradations |
//! | cluster assembly | [`ScenarioBuilder`] | typed, fluent construction of a `ClusterConfig` |
//! | fault plan | [`FaultPlan`] | timed pause/resume/crash/partition/heal events as data, with symbolic targets (`Leader`) resolved at fire time |
//! | driver | [`ScenarioDriver`] | executes the plan, samples observables on a cadence, records a trace of what fired (and the pre-fault state) |
//!
//! On top sit the [`Experiment`] trait and [`registry()`]: every §IV figure,
//! the ablations and the beyond-paper scenarios are registered, named,
//! self-describing units that map a [`RunCtx`] to a structured, comparable
//! [`Report`]. Trial fan-out inside experiments goes through rayon and is
//! capped by [`RunCtx::run`]'s `--jobs` pool; per-trial child seeds and
//! index-ordered merges make any parallelism level bit-identical to a
//! serial run.
//!
//! ```
//! use dynatune_cluster::scenario::{
//!     FaultPlan, Horizon, PartitionSpec, ScenarioBuilder, ScenarioDriver,
//! };
//! use dynatune_core::TuningConfig;
//! use std::time::Duration;
//!
//! // A cluster that loses its leader to a partition at t=20s, heals at
//! // t=40s, observed for 70s — no imperative injection loop.
//! let config = ScenarioBuilder::cluster(5)
//!     .tuning(TuningConfig::dynatune())
//!     .seed(7)
//!     .build();
//! let run = ScenarioDriver::new(config)
//!     .plan(
//!         FaultPlan::new()
//!             .partition(Duration::from_secs(20), PartitionSpec::LeaderPlusFollowers(1))
//!             .heal(Duration::from_secs(40)),
//!     )
//!     .horizon(Horizon::At(Duration::from_secs(70)))
//!     .run();
//! assert!(run.sim.leader().is_some());
//! ```

pub mod builder;
pub mod catalog;
pub mod driver;
pub mod experiment;
pub mod plan;
pub mod registry;
pub mod report;

pub use builder::{NetPlan, ScenarioBuilder};
pub use driver::{ExecutedFault, Horizon, Sample, ScenarioDriver, ScenarioRun};
pub use experiment::{Experiment, RunCtx};
pub use plan::{FaultAction, FaultEvent, FaultPlan, PartitionSpec, Target};
pub use registry::{catalog_json, catalog_markdown, find, registry};
pub use report::{compare_row, reduction_pct, Artifact, Headline, Report, ReportTable};
