//! Declarative fault plans: timed failure-injection events as data.
//!
//! The paper's experiments inject failures imperatively (pause the leader
//! after warm-up, cut a partition, heal it later). A [`FaultPlan`] captures
//! the same schedules as plain data — a sorted list of [`FaultEvent`]s —
//! which the [scenario driver](crate::scenario::driver) executes against a
//! running cluster. Targets may be symbolic ([`Target::Leader`],
//! [`PartitionSpec::LeaderPlusFollowers`]): they are resolved against the
//! live cluster state at the moment the event fires, which is what the
//! hand-written injection loops used to do inline.

use dynatune_raft::NodeId;
use std::time::Duration;

/// Who a pause/resume/crash applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A fixed node id.
    Node(NodeId),
    /// Whichever node leads when the event fires (skipped if none does).
    Leader,
}

/// Which nodes form the cut-off group of a partition event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// An explicit group of nodes.
    Nodes(Vec<NodeId>),
    /// The current leader plus the first `k` followers (by id). The classic
    /// "isolate the leader with a minority" cut.
    LeaderPlusFollowers(usize),
    /// The first `k` followers (by id), leader excluded: a minority that
    /// can never elect.
    FollowersOnly(usize),
}

/// One failure-injection action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Freeze a node (the paper's `docker pause` failure mode).
    Pause(Target),
    /// Unfreeze a paused node.
    Resume(Target),
    /// Resume every paused node.
    ResumeAll,
    /// Crash-restart a node: volatile state lost, persistent log kept.
    Crash(Target),
    /// Split the network: the spec'd group on one side, the rest on the
    /// other.
    Partition(PartitionSpec),
    /// Heal all partitions.
    Heal,
}

/// A timed action, optionally with a random phase offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Nominal fire time (relative to simulation start).
    pub at: Duration,
    /// Uniform random extra delay in `[0, jitter)`, drawn deterministically
    /// from the cluster seed. The failover experiments use this to average
    /// over the heartbeat phase, as the paper's 1000 repeated failures do.
    pub jitter: Duration,
    /// What happens.
    pub action: FaultAction,
}

impl FaultEvent {
    /// An event firing exactly at `at`.
    #[must_use]
    pub fn at(at: Duration, action: FaultAction) -> Self {
        Self {
            at,
            jitter: Duration::ZERO,
            action,
        }
    }

    /// Add a random phase offset in `[0, jitter)`.
    #[must_use]
    pub fn jittered(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }
}

/// A whole failure schedule: events sorted by nominal time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no failures — fluctuation-only scenarios).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (kept sorted by nominal time; ties keep insertion
    /// order).
    #[must_use]
    pub fn event(mut self, e: FaultEvent) -> Self {
        let pos = self.events.partition_point(|x| x.at <= e.at);
        self.events.insert(pos, e);
        self
    }

    /// Pause the current leader at `at` (phase-jittered by `jitter`).
    #[must_use]
    pub fn pause_leader(self, at: Duration, jitter: Duration) -> Self {
        self.event(FaultEvent::at(at, FaultAction::Pause(Target::Leader)).jittered(jitter))
    }

    /// Crash the current leader at `at`.
    #[must_use]
    pub fn crash_leader(self, at: Duration) -> Self {
        self.event(FaultEvent::at(at, FaultAction::Crash(Target::Leader)))
    }

    /// Pause a fixed node at `at`.
    #[must_use]
    pub fn pause_node(self, at: Duration, node: NodeId) -> Self {
        self.event(FaultEvent::at(at, FaultAction::Pause(Target::Node(node))))
    }

    /// Resume a fixed node at `at`.
    #[must_use]
    pub fn resume_node(self, at: Duration, node: NodeId) -> Self {
        self.event(FaultEvent::at(at, FaultAction::Resume(Target::Node(node))))
    }

    /// Partition at `at`.
    #[must_use]
    pub fn partition(self, at: Duration, spec: PartitionSpec) -> Self {
        self.event(FaultEvent::at(at, FaultAction::Partition(spec)))
    }

    /// Heal all partitions at `at`.
    #[must_use]
    pub fn heal(self, at: Duration) -> Self {
        self.event(FaultEvent::at(at, FaultAction::Heal))
    }

    /// A flapping partition: starting at `start`, cut `spec` for `down`,
    /// heal for `up`, repeated `cycles` times. The churn workload the old
    /// imperative API had no vocabulary for.
    #[must_use]
    pub fn flapping_partition(
        mut self,
        start: Duration,
        spec: PartitionSpec,
        down: Duration,
        up: Duration,
        cycles: usize,
    ) -> Self {
        let mut t = start;
        for _ in 0..cycles {
            self = self.partition(t, spec.clone());
            t += down;
            self = self.heal(t);
            t += up;
        }
        self
    }

    /// The events, sorted by nominal time.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Nominal time of the last event (`None` for an empty plan). The
    /// driver's [`Horizon::AfterLastFault`](crate::scenario::Horizon)
    /// anchors on the *resolved* time; this is the static bound used for
    /// validation and duration estimates.
    #[must_use]
    pub fn last_at(&self) -> Option<Duration> {
        self.events.last().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_sorted() {
        let plan = FaultPlan::new()
            .heal(Duration::from_secs(20))
            .pause_leader(Duration::from_secs(5), Duration::ZERO)
            .partition(Duration::from_secs(10), PartitionSpec::FollowersOnly(2));
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![5, 10, 20]);
        assert_eq!(plan.last_at(), Some(Duration::from_secs(20)));
    }

    #[test]
    fn flapping_partition_expands_to_cycles() {
        let plan = FaultPlan::new().flapping_partition(
            Duration::from_secs(30),
            PartitionSpec::LeaderPlusFollowers(1),
            Duration::from_secs(10),
            Duration::from_secs(15),
            3,
        );
        assert_eq!(plan.len(), 6);
        let kinds: Vec<bool> = plan
            .events()
            .iter()
            .map(|e| matches!(e.action, FaultAction::Partition(_)))
            .collect();
        assert_eq!(kinds, vec![true, false, true, false, true, false]);
        // Cycle period = down + up = 25s.
        assert_eq!(plan.events()[2].at, Duration::from_secs(55));
        assert_eq!(plan.last_at(), Some(Duration::from_secs(90)));
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.last_at(), None);
    }
}
