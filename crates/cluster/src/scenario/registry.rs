//! The experiment registry: every runnable scenario, by name.
//!
//! `scenarios --list` prints this; `scenarios --only NAME` and the thin
//! per-figure binaries look names up here. Adding a scenario means adding
//! a [`catalog`](crate::scenario::catalog) type and one line below.

use crate::scenario::catalog;
use crate::scenario::experiment::Experiment;

/// All registered experiments, in presentation order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(catalog::Fig4Failover),
        Box::new(catalog::Fig5Throughput),
        Box::new(catalog::Fig6aGradualRtt),
        Box::new(catalog::Fig6bRadicalRtt),
        Box::new(catalog::Fig7LossFluctuation),
        Box::new(catalog::Fig8GeoFailover),
        Box::new(catalog::Ablations),
        Box::new(catalog::Extensions),
        Box::new(catalog::GeoAsymmetricFailover),
        Box::new(catalog::PartitionChurn),
        Box::new(catalog::ShardedThroughput),
        Box::new(catalog::HotShard),
        Box::new(catalog::ShardLeaderFailover),
        Box::new(catalog::LaggingFollowerCatchup),
        Box::new(catalog::CompactionChurn),
    ]
}

/// Look an experiment up by registry name.
#[must_use]
pub fn find(name: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_findable() {
        let all = registry();
        assert!(all.len() >= 13);
        let mut names: Vec<&str> = all.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate registry names");
        for name in names {
            let found = find(name).expect("registered name resolves");
            assert_eq!(found.name(), name);
            assert!(!found.describe().is_empty());
        }
        assert!(find("no_such_experiment").is_none());
    }
}
