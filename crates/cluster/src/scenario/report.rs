//! Structured experiment output: tables, headline comparisons, notes and
//! CSV artifacts.
//!
//! A [`Report`] is plain data (and `PartialEq`), which is what makes the
//! parallel-trial guarantee testable: running an experiment with
//! `--jobs 1` and `--jobs N` must produce *equal* reports, not just
//! similar ones. Rendering to text and writing artifacts to disk are the
//! binary's job, not the experiment's.

use dynatune_stats::table::Table;

/// A titled text table (rows of pre-formatted cells).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

/// One paper-vs-measured headline ("detection reduction: paper 80%,
/// measured 85%").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Headline {
    /// What is being compared.
    pub label: String,
    /// The paper's value, pre-formatted.
    pub paper: String,
    /// Our value, pre-formatted.
    pub measured: String,
}

/// A named CSV payload for the output directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// File name (no directory), e.g. `fig4_cdf.csv`.
    pub filename: String,
    /// CSV content.
    pub csv: String,
}

/// Everything one experiment run produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Experiment name (registry key).
    pub name: String,
    /// Result tables, in presentation order.
    pub tables: Vec<ReportTable>,
    /// Headline paper-vs-measured comparisons.
    pub headlines: Vec<Headline>,
    /// Free-form interpretation notes, printed after the tables.
    pub notes: Vec<String>,
    /// CSV artifacts to write under the output directory.
    pub artifacts: Vec<Artifact>,
}

impl Report {
    /// An empty report for `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Append a table.
    pub fn table<S: Into<String>>(
        &mut self,
        title: &str,
        header: impl IntoIterator<Item = S>,
        rows: Vec<Vec<String>>,
    ) {
        self.tables.push(ReportTable {
            title: title.to_string(),
            header: header.into_iter().map(Into::into).collect(),
            rows,
        });
    }

    /// Append a headline comparison.
    pub fn headline(&mut self, label: &str, paper: &str, measured: &str) {
        self.headlines.push(Headline {
            label: label.to_string(),
            paper: paper.to_string(),
            measured: measured.to_string(),
        });
    }

    /// Append an interpretation note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Append a CSV artifact.
    pub fn artifact(&mut self, filename: &str, csv: String) {
        self.artifacts.push(Artifact {
            filename: filename.to_string(),
            csv,
        });
    }

    /// Render tables, headlines and notes as display text (artifacts are
    /// listed by name only; the binary writes their content to disk).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&format!("\n{}\n", t.title));
            let mut table = Table::new(t.header.iter().map(String::as_str));
            for row in &t.rows {
                table.row(row.clone());
            }
            out.push_str(&table.render());
        }
        if !self.headlines.is_empty() {
            out.push('\n');
            let mut table = Table::new(["headline", "paper", "measured"]);
            for h in &self.headlines {
                table.row([h.label.clone(), h.paper.clone(), h.measured.clone()]);
            }
            out.push_str(&table.render());
        }
        for note in &self.notes {
            out.push_str(&format!("\n{note}\n"));
        }
        out
    }
}

/// Format a paper-vs-measured row with a deviation ratio, for the
/// four-column `[metric, paper, measured, ratio]` tables the figure
/// experiments print.
#[must_use]
pub fn compare_row(metric: &str, paper: f64, measured: f64) -> Vec<String> {
    let ratio = if paper.abs() > 1e-12 {
        measured / paper
    } else {
        f64::NAN
    };
    vec![
        metric.to_string(),
        format!("{paper:.0}"),
        format!("{measured:.0}"),
        format!("{ratio:.2}x"),
    ]
}

/// Percentage reduction from `from` to `to` (the paper's headline metric
/// style: "reduces detection time by 80%").
#[must_use]
pub fn reduction_pct(from: f64, to: f64) -> f64 {
    if from.abs() < 1e-12 {
        0.0
    } else {
        (1.0 - to / from) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert!((reduction_pct(1205.0, 237.0) - 80.33).abs() < 0.1);
        assert!((reduction_pct(1449.0, 797.0) - 45.0).abs() < 0.1);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn compare_row_formats() {
        let row = compare_row("detection (ms)", 1205.0, 1100.0);
        assert_eq!(row, vec!["detection (ms)", "1205", "1100", "0.91x"]);
    }

    #[test]
    fn report_renders_all_sections() {
        let mut r = Report::new("demo");
        r.table(
            "numbers",
            ["a", "b"],
            vec![vec!["1".to_string(), "2".to_string()]],
        );
        r.headline("thing", "80%", "85%");
        r.note("a note");
        r.artifact("demo.csv", "x,y\n1,2\n".to_string());
        let text = r.render();
        assert!(text.contains("numbers"));
        assert!(text.contains("thing"));
        assert!(text.contains("a note"));
        // Artifacts are data, not display text.
        assert!(!text.contains("x,y"));
    }

    #[test]
    fn reports_compare_by_value() {
        let mut a = Report::new("x");
        let mut b = Report::new("x");
        a.headline("h", "1", "2");
        b.headline("h", "1", "2");
        assert_eq!(a, b);
        b.note("divergence");
        assert_ne!(a, b);
    }
}
