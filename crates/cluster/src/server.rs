//! The server host: a Raft node + replicated state machine + CPU meter
//! behind the simulator's [`Host`](dynatune_simnet::Host) interface.
//!
//! Generic over the [`App`] being served (KV store by default, broker via
//! `ServerHost<BrokerApp>`): the propose path, reply-cache dedupe, CPU
//! admission, log-free read path and compaction policy are identical for
//! every application; only the five seams named by [`App`] differ.

use crate::app::{App, KvApp};
use crate::cpu::{CostModel, CpuMeter};
use crate::msg::{ClusterMsg, RaftPayload};
use dynatune_raft::{
    ConfChange, LogIndex, NodeEffects, NodeId, Payload, RaftConfig, RaftEvent, RaftNode, ReadPath,
    Role, StateMachine, Term,
};
use dynatune_simnet::{Channel, HostCtx, SimTime};
use std::collections::BTreeMap;
use std::time::Duration;

/// A proposal made on behalf of a client, waiting for its entry to apply.
#[derive(Debug, Clone)]
struct PendingReq {
    term: Term,
    client: NodeId,
    req_id: u64,
    /// Read replicated through the log (the [`ReadStrategy::Log`]
    /// baseline) — counted separately so the read-path mix is observable.
    is_read: bool,
}

/// How this server serves linearizable reads (`Get`/`Range`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadStrategy {
    /// Replicate reads through the Raft log like writes (etcd quorum
    /// reads; the pre-read-path baseline). Full quorum-append cost per
    /// read, and read traffic grows the log.
    Log,
    /// Log-free reads via ReadIndex only: every read batch pays one
    /// leadership-confirmation round (piggy-backed on append traffic).
    ReadIndex,
    /// Log-free reads via the leader lease, falling back to ReadIndex when
    /// the lease is cold or expired (the default: reads cost no network
    /// round while heartbeat acks keep the lease fresh).
    #[default]
    Lease,
}

impl ReadStrategy {
    /// True when reads bypass the Raft log.
    #[must_use]
    pub fn log_free(self) -> bool {
        !matches!(self, ReadStrategy::Log)
    }
}

/// Served-read counters, by path. `lease`/`read_index` count reads this
/// server granted and answered as leader; `follower` counts forwarded
/// reads answered from this server's own state machine after a leader
/// grant; `log` counts reads replicated through the log (the baseline
/// strategy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCounters {
    /// Reads served inside the leader lease.
    pub lease: u64,
    /// Reads served after a ReadIndex confirmation round.
    pub read_index: u64,
    /// Forwarded reads served locally on this (follower) server.
    pub follower: u64,
    /// Reads that went through the log (`ReadStrategy::Log`).
    pub log: u64,
}

impl ReadCounters {
    /// Total reads this server answered, over every path.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.lease + self.read_index + self.follower + self.log
    }

    /// Element-wise sum (cluster-level aggregation).
    #[must_use]
    pub fn merged(self, other: ReadCounters) -> ReadCounters {
        ReadCounters {
            lease: self.lease + other.lease,
            read_index: self.read_index + other.read_index,
            follower: self.follower + other.follower,
            log: self.log + other.log,
        }
    }
}

/// One in-flight forwarded-read wave: a single `ReadIndexReq` covering
/// every read the follower admitted before the wave left.
#[derive(Debug, Clone)]
struct FwdWave {
    wave_id: u64,
    ids: Vec<u64>,
    sent_at: SimTime,
}

/// Re-send an unanswered forwarded-read wave after this long (the covered
/// reads' clients are on their own retry timers anyway).
const FWD_WAVE_RESEND: Duration = Duration::from_secs(1);

/// Where a leader-side read grant must be delivered.
enum ReadOrigin<A: App> {
    /// A client read this server answers from its own state machine.
    Local {
        client: NodeId,
        req_id: u64,
        cmd: A::Command,
    },
    /// A read forwarded by a follower; the grant's `read_index` is sent
    /// back and the follower serves locally.
    Remote { follower: NodeId, read_id: u64 },
}

/// A client request admitted through the CPU queue, waiting to execute.
struct AdmittedReq<A: App> {
    ready_at: SimTime,
    client: NodeId,
    req_id: u64,
    cmd: A::Command,
}

/// Compact when the live log exceeds this many entries (default).
pub const COMPACT_THRESHOLD: usize = 131_072;
/// Keep this many recent entries when compacting (default), so
/// briefly-lagging followers catch up via cheap appends instead of a full
/// snapshot transfer.
pub const COMPACT_TAIL: u64 = 8_192;

/// When to compact the log and how much slack to keep. Compaction is
/// bounded only by `last_applied` — snapshots catch up anyone further
/// behind — so the leader's live log stays within
/// `threshold + tail` entries no matter how long a follower is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once the live log exceeds this many entries.
    pub threshold: usize,
    /// Keep this many applied entries below the compaction point.
    pub tail: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            threshold: COMPACT_THRESHOLD,
            tail: COMPACT_TAIL,
        }
    }
}

/// One simulated etcd-like server, serving the application `A` (the KV
/// store by default).
pub struct ServerHost<A: App = KvApp> {
    node: RaftNode<A::Sm>,
    cost: CostModel,
    cpu: CpuMeter,
    compaction: CompactionPolicy,
    tunes: bool,
    /// Global host id of this group's first member. Raft node ids are
    /// group-local (`0..n`); in a multi-group (sharded) world the group
    /// occupies a contiguous block of host ids starting here, so protocol
    /// traffic translates by one addition/subtraction. Zero for the
    /// single-group layout, where host ids and node ids coincide.
    peer_base: NodeId,
    /// Observable event log: `(time, event)`.
    events: Vec<(SimTime, RaftEvent)>,
    /// Proposals awaiting application, keyed by log index.
    pending: BTreeMap<LogIndex, PendingReq>,
    /// CPU-admitted client requests not yet proposed (FIFO by ready_at).
    admit: std::collections::VecDeque<AdmittedReq<A>>,
    /// How reads are served (log-replicated vs lease/ReadIndex).
    read_strategy: ReadStrategy,
    /// Serve forwarded reads on followers (log-free strategies only).
    follower_reads: bool,
    /// Grant-token allocator for reads registered with the Raft node.
    next_read_token: u64,
    /// Outstanding read grants, by token.
    read_origins: BTreeMap<u64, ReadOrigin<A>>,
    /// Local-id allocator for reads this follower forwarded to the leader.
    next_fwd_id: u64,
    /// Reads forwarded to the leader, awaiting a `ReadIndexResp`.
    forwarded: BTreeMap<u64, (NodeId, u64, A::Command)>,
    /// Wave-id allocator for forwarded-read batches.
    next_fwd_wave: u64,
    /// Forwarded reads admitted but not yet covered by a wave.
    fwd_pending: Vec<u64>,
    /// The single in-flight forwarded wave, if any.
    fwd_inflight: Option<FwdWave>,
    /// Granted forwarded reads waiting for local apply to reach their
    /// read index: `read_index -> local read ids`.
    follower_wait: BTreeMap<LogIndex, Vec<u64>>,
    /// Served-read counters by path.
    reads_served: ReadCounters,
    /// Configuration changes queued from outside the dispatch loop (the
    /// rebalancer); proposed on the next wake while this node leads.
    pending_conf: std::collections::VecDeque<ConfChange>,
    /// Conf changes the node rejected (not leader / in flight / learner
    /// behind) — the orchestrator's signal to re-submit.
    conf_rejections: u64,
}

impl<A: App> ServerHost<A> {
    /// Build a server from its Raft config and cost model.
    #[must_use]
    pub fn new(config: RaftConfig, cost: CostModel, cores: usize, window: Duration) -> Self {
        let tunes = config.tuning.mode.tunes();
        let sm = A::fresh_sm(&config);
        Self {
            node: RaftNode::new(config, sm, SimTime::ZERO),
            cost,
            cpu: CpuMeter::new(cores, window),
            compaction: CompactionPolicy::default(),
            tunes,
            peer_base: 0,
            events: Vec::new(),
            pending: BTreeMap::new(),
            admit: std::collections::VecDeque::new(),
            read_strategy: ReadStrategy::default(),
            follower_reads: true,
            next_read_token: 0,
            read_origins: BTreeMap::new(),
            next_fwd_id: 0,
            forwarded: BTreeMap::new(),
            next_fwd_wave: 0,
            fwd_pending: Vec::new(),
            fwd_inflight: None,
            follower_wait: BTreeMap::new(),
            reads_served: ReadCounters::default(),
            pending_conf: std::collections::VecDeque::new(),
            conf_rejections: 0,
        }
    }

    /// Select the read-serving strategy and whether followers answer
    /// forwarded reads locally (`follower_reads` is ignored under
    /// [`ReadStrategy::Log`], where a non-leader can only redirect).
    #[must_use]
    pub fn with_reads(mut self, strategy: ReadStrategy, follower_reads: bool) -> Self {
        self.read_strategy = strategy;
        self.follower_reads = follower_reads;
        self
    }

    /// Place this server's Raft group at a block of host ids starting at
    /// `base` (sharded worlds; see `peer_base`).
    #[must_use]
    pub fn with_peer_base(mut self, base: NodeId) -> Self {
        self.peer_base = base;
        self
    }

    /// Override the log-compaction policy (scenarios shrink it to exercise
    /// snapshot transfer at simulation-friendly write volumes).
    #[must_use]
    pub fn with_compaction(mut self, compaction: CompactionPolicy) -> Self {
        self.compaction = compaction;
        self
    }

    /// The wrapped Raft node (observers).
    #[must_use]
    pub fn node(&self) -> &RaftNode<A::Sm> {
        &self.node
    }

    /// Mutable access for failure injection (crash/restart).
    pub fn node_mut(&mut self) -> &mut RaftNode<A::Sm> {
        &mut self.node
    }

    /// Live (un-compacted) log length — the memory-bound observable.
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.node.log().len()
    }

    /// `InstallSnapshot` transfers started by this server as leader.
    #[must_use]
    pub fn snapshots_sent(&self) -> u64 {
        self.node.snapshots_sent()
    }

    /// Reads answered by this server, by path.
    #[must_use]
    pub fn reads_served(&self) -> ReadCounters {
        self.reads_served
    }

    /// Recorded events (time-stamped).
    #[must_use]
    pub fn events(&self) -> &[(SimTime, RaftEvent)] {
        &self.events
    }

    /// The CPU meter (utilization series).
    #[must_use]
    pub fn cpu(&self) -> &CpuMeter {
        &self.cpu
    }

    /// Queue a configuration change for proposal on the next wake. The
    /// queue is volatile (a crash drops it) and only a leader proposes:
    /// a change drained while this node follows is counted as a rejection
    /// for the orchestrator to re-submit against the real leader.
    pub fn enqueue_conf_change(&mut self, change: ConfChange) {
        self.pending_conf.push_back(change);
    }

    /// Conf changes this server dropped or the node rejected.
    #[must_use]
    pub fn conf_rejections(&self) -> u64 {
        self.conf_rejections
    }

    /// Crash this server: persistent Raft state (term, vote, log, retained
    /// snapshot) survives, everything else (pending requests, admission
    /// queue) is lost; the state machine is rebuilt from the snapshot plus
    /// log replay.
    pub fn crash_restart(&mut self, now: SimTime) {
        let sm = A::fresh_sm(self.node.config());
        self.node.restart(now, sm);
        self.pending.clear();
        self.admit.clear();
        self.read_origins.clear();
        self.forwarded.clear();
        self.fwd_pending.clear();
        self.fwd_inflight = None;
        self.follower_wait.clear();
        self.pending_conf.clear();
    }

    fn msg_recv_cost(&self, payload: &RaftPayload<A>) -> Duration {
        let mut c = self.cost.per_message_recv;
        if self.tunes {
            c += self.cost.tuning_per_message;
        }
        if let Payload::InstallSnapshot(s) = payload {
            // Size-aware install: restoring a big store takes real time.
            c += self.cost.snapshot_cost(A::snapshot_bytes(&s.data));
        }
        c
    }

    fn msg_send_cost(&self, payload: &RaftPayload<A>) -> Duration {
        let mut c = self.cost.per_message_send;
        if self.tunes {
            c += self.cost.tuning_per_message;
        }
        match payload {
            Payload::AppendEntries(ae) => {
                // Byte-based replication charge: a group-committed append
                // carrying many coalesced proposals costs its payload, not
                // a per-entry tax — the sim-side half of the group-commit
                // payoff (the other half is fewer messages).
                let bytes: usize = ae
                    .entries
                    .iter()
                    .filter_map(|e| e.data.as_ref())
                    .map(<A::Sm as StateMachine>::command_bytes)
                    .sum();
                c += self.cost.append_cost(bytes);
            }
            Payload::InstallSnapshot(s) => {
                // Size-aware serialization of the full state.
                c += self.cost.snapshot_cost(A::snapshot_bytes(&s.data));
            }
            _ => {}
        }
        c
    }

    /// Route node effects out to the network and bookkeeping.
    fn route_effects(&mut self, ctx: &mut HostCtx<'_, ClusterMsg<A>>, fx: NodeEffects<A::Sm>) {
        let now = ctx.now;
        for ev in &fx.events {
            self.events.push((now, *ev));
        }
        for m in fx.messages {
            self.cpu.charge(now, self.msg_send_cost(&m.payload));
            ctx.send(
                self.peer_base + m.to,
                m.channel,
                ClusterMsg::Raft(m.payload),
            );
        }
        for applied in fx.applied {
            self.cpu.charge(now, self.cost.per_apply);
            if let Some(p) = self.pending.remove(&applied.index) {
                let result = if p.term == applied.term {
                    if p.is_read && applied.response.is_some() {
                        self.reads_served.log += 1;
                    }
                    applied.response
                } else {
                    None // our proposal was displaced by another leader's entry
                };
                ctx.send(
                    p.client,
                    Channel::Tcp,
                    ClusterMsg::ClientResp {
                        req_id: p.req_id,
                        result,
                    },
                );
            }
        }
        // Log-free read grants: answer local reads from our state machine,
        // relay forwarded grants back to their followers.
        for grant in fx.reads {
            match self.read_origins.remove(&grant.id) {
                Some(ReadOrigin::Local {
                    client,
                    req_id,
                    cmd,
                }) => {
                    // Execution cost was charged at admission (per_read).
                    // The grant was apply-gated, so the state machine
                    // covers read_index; reply-cache invariant: the read
                    // executes fresh, never from (or into) sessions.
                    let result = A::read(self.node.state_machine(), &cmd);
                    debug_assert!(result.is_some(), "grants are only taken for reads");
                    match grant.path {
                        ReadPath::Lease => self.reads_served.lease += 1,
                        ReadPath::ReadIndex => self.reads_served.read_index += 1,
                    }
                    ctx.send(
                        client,
                        Channel::Tcp,
                        ClusterMsg::ClientResp { req_id, result },
                    );
                }
                Some(ReadOrigin::Remote { follower, read_id }) => {
                    self.cpu.charge(now, self.cost.per_message_send);
                    ctx.send(
                        follower,
                        Channel::Tcp,
                        ClusterMsg::ReadIndexResp {
                            read_id,
                            read_index: Some(grant.read_index),
                        },
                    );
                }
                None => {} // origin dropped by a crash-restart
            }
        }
        // Reads whose leader gave up on them (leadership lost before the
        // grant): clients get a redirect, followers a denial to relay.
        for id in fx.aborted_reads {
            if let Some(origin) = self.read_origins.remove(&id) {
                self.deny_read_origin(ctx, origin);
            }
        }
        // Forwarded reads whose grant arrived earlier than our apply index:
        // serve every one the state machine now covers.
        self.drain_follower_wait(ctx);
        // If leadership was lost, fail whatever is still pending. The entry
        // may still commit under the new leader; the client's retry of the
        // same req_id is deduplicated by the app's replicated reply cache,
        // so reporting failure here cannot cause a duplicate apply.
        if self.node.role() != Role::Leader && !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            for (_, p) in pending {
                ctx.send(
                    p.client,
                    Channel::Tcp,
                    ClusterMsg::ClientResp {
                        req_id: p.req_id,
                        result: None,
                    },
                );
            }
        }
        // Opportunistic log compaction keeps memory bounded. Not pinned by
        // slow followers: anyone behind the horizon is caught up by an
        // InstallSnapshot stream, so only the policy's tail of slack is
        // retained for cheap append-based catch-up.
        if self.node.log().len() > self.compaction.threshold {
            let upto = self
                .node
                .safe_compact_index()
                .saturating_sub(self.compaction.tail);
            self.node.compact_log(upto);
        }
    }

    /// Propose (or, for reads under a log-free strategy, register) admitted
    /// requests whose CPU-queue delay has elapsed.
    fn drain_admitted(&mut self, ctx: &mut HostCtx<'_, ClusterMsg<A>>) {
        let now = ctx.now;
        while let Some(front) = self.admit.front() {
            if front.ready_at > now {
                break;
            }
            let Some(req) = self.admit.pop_front() else {
                break; // unreachable: front() above was Some
            };
            if self.read_strategy.log_free() && A::is_read(&req.cmd) {
                self.start_read(ctx, req.client, req.req_id, req.cmd);
                continue;
            }
            let is_read = A::is_read(&req.cmd);
            let request = A::request(req.client as u64, req.req_id, req.cmd.clone());
            let (result, fx) = self.node.propose(now, request);
            match result {
                Ok((term, index)) => {
                    self.pending.insert(
                        index,
                        PendingReq {
                            term,
                            client: req.client,
                            req_id: req.req_id,
                            is_read,
                        },
                    );
                }
                Err(not_leader) => {
                    ctx.send(
                        req.client,
                        Channel::Tcp,
                        ClusterMsg::ClientRedirect {
                            req_id: req.req_id,
                            // The node's hint is group-local; clients
                            // address hosts, so translate it.
                            hint: not_leader.hint.map(|h| h + self.peer_base),
                            cmd: req.cmd,
                        },
                    );
                }
            }
            self.route_effects(ctx, fx);
        }
    }

    /// Route one read around the log: leaders register it with the Raft
    /// node (lease or ReadIndex grant), followers forward a ReadIndex
    /// request and answer locally once their apply index catches up.
    fn start_read(
        &mut self,
        ctx: &mut HostCtx<'_, ClusterMsg<A>>,
        client: NodeId,
        req_id: u64,
        cmd: A::Command,
    ) {
        if self.node.role() == Role::Leader {
            self.register_read(
                ctx,
                ReadOrigin::Local {
                    client,
                    req_id,
                    cmd,
                },
                true,
            );
            return;
        }
        if self.follower_reads && self.node.leader_id().is_some() {
            self.next_fwd_id += 1;
            let read_id = self.next_fwd_id;
            self.forwarded.insert(read_id, (client, req_id, cmd));
            self.fwd_pending.push(read_id);
            self.flush_forwarded(ctx);
            return;
        }
        self.deny_read_origin(
            ctx,
            ReadOrigin::Local {
                client,
                req_id,
                cmd,
            },
        );
    }

    /// Register one read with the Raft node under a fresh grant token
    /// (local reads wait for this node's apply; remote grants are relayed
    /// raw), unwinding with the origin-appropriate denial when leadership
    /// was lost between the caller's role check and registration.
    fn register_read(
        &mut self,
        ctx: &mut HostCtx<'_, ClusterMsg<A>>,
        origin: ReadOrigin<A>,
        wait_apply: bool,
    ) {
        self.next_read_token += 1;
        let token = self.next_read_token;
        self.read_origins.insert(token, origin);
        let (result, fx) = self.node.request_read(ctx.now, token, wait_apply);
        if result.is_err() {
            if let Some(origin) = self.read_origins.remove(&token) {
                self.deny_read_origin(ctx, origin);
            }
        }
        self.route_effects(ctx, fx);
    }

    /// Deny a read we cannot serve (no leader known, leadership lost
    /// before the grant): local clients get a redirect with our best
    /// leader hint, forwarding followers a `ReadIndexResp` denial to
    /// relay. The single place the denial semantics live.
    fn deny_read_origin(&mut self, ctx: &mut HostCtx<'_, ClusterMsg<A>>, origin: ReadOrigin<A>) {
        match origin {
            ReadOrigin::Local {
                client,
                req_id,
                cmd,
            } => {
                ctx.send(
                    client,
                    Channel::Tcp,
                    ClusterMsg::ClientRedirect {
                        req_id,
                        hint: self.node.leader_id().map(|h| h + self.peer_base),
                        cmd,
                    },
                );
            }
            ReadOrigin::Remote { follower, read_id } => {
                ctx.send(
                    follower,
                    Channel::Tcp,
                    ClusterMsg::ReadIndexResp {
                        read_id,
                        read_index: None,
                    },
                );
            }
        }
    }

    /// Send (at most) one `ReadIndexReq` covering every pending forwarded
    /// read. One wave flies at a time; reads arriving meanwhile queue
    /// behind it and ride the next wave — the Nagle-style batching that
    /// amortizes the leader's per-message cost over whole batches of
    /// follower reads (a wave must not cover reads admitted *after* it was
    /// sent: the leader's registration could predate them, and serving
    /// them at its read index could miss a write that completed in
    /// between). A wave unanswered for [`FWD_WAVE_RESEND`] (lost message,
    /// dead leader) is merged back and re-sent.
    fn flush_forwarded(&mut self, ctx: &mut HostCtx<'_, ClusterMsg<A>>) {
        let now = ctx.now;
        let stale = self
            .fwd_inflight
            .take_if(|w| now >= w.sent_at + FWD_WAVE_RESEND);
        if let Some(stale) = stale {
            self.fwd_pending.extend(stale.ids);
        } else if self.fwd_inflight.is_some() {
            return; // a fresh wave is still in flight
        }
        if self.fwd_pending.is_empty() {
            return;
        }
        let Some(leader) = self.node.leader_id() else {
            return; // re-flushed on the next admission once a leader is known
        };
        self.next_fwd_wave += 1;
        let wave_id = self.next_fwd_wave;
        let ids = std::mem::take(&mut self.fwd_pending);
        self.cpu.charge(now, self.cost.per_message_send);
        ctx.send(
            self.peer_base + leader,
            Channel::Tcp,
            ClusterMsg::ReadIndexReq { read_id: wave_id },
        );
        self.fwd_inflight = Some(FwdWave {
            wave_id,
            ids,
            sent_at: now,
        });
    }

    /// Answer a forwarded read from the local state machine (the grant's
    /// read index is known to be applied).
    fn serve_follower_read(&mut self, ctx: &mut HostCtx<'_, ClusterMsg<A>>, read_id: u64) {
        let Some((client, req_id, cmd)) = self.forwarded.remove(&read_id) else {
            return; // superseded by a crash-restart
        };
        // Reply-cache invariant holds here too: forwarded reads execute
        // fresh against the follower's applied state.
        let result = A::read(self.node.state_machine(), &cmd);
        self.reads_served.follower += 1;
        ctx.send(
            client,
            Channel::Tcp,
            ClusterMsg::ClientResp { req_id, result },
        );
    }

    /// Serve every granted forwarded read the apply index now covers.
    fn drain_follower_wait(&mut self, ctx: &mut HostCtx<'_, ClusterMsg<A>>) {
        let applied = self.node.last_applied();
        while let Some((&idx, _)) = self.follower_wait.iter().next() {
            if idx > applied {
                break;
            }
            let Some(ids) = self.follower_wait.remove(&idx) else {
                break; // unreachable: `idx` was just read from the map
            };
            for id in ids {
                self.serve_follower_read(ctx, id);
            }
        }
    }

    /// Deliver a message to this server.
    pub fn handle_message(
        &mut self,
        ctx: &mut HostCtx<'_, ClusterMsg<A>>,
        from: NodeId,
        msg: ClusterMsg<A>,
    ) {
        match msg {
            ClusterMsg::Raft(payload) => {
                self.cpu.charge(ctx.now, self.msg_recv_cost(&payload));
                let fx = self.node.step(ctx.now, from - self.peer_base, payload);
                self.route_effects(ctx, fx);
                self.drain_admitted(ctx);
            }
            ClusterMsg::ClientReq { req_id, cmd } => {
                let ready_at = self.cpu.charge(ctx.now, self.admission_cost(&cmd));
                self.admit.push_back(AdmittedReq {
                    ready_at,
                    client: from,
                    req_id,
                    cmd,
                });
                self.drain_admitted(ctx);
            }
            ClusterMsg::ClientBatch { reqs } => {
                // Batching saves network round trips, not CPU: each item
                // pays its full admission cost.
                for (req_id, cmd) in reqs {
                    let ready_at = self.cpu.charge(ctx.now, self.admission_cost(&cmd));
                    self.admit.push_back(AdmittedReq {
                        ready_at,
                        client: from,
                        req_id,
                        cmd,
                    });
                }
                self.drain_admitted(ctx);
            }
            ClusterMsg::ReadIndexReq { read_id } => {
                self.cpu.charge(ctx.now, self.cost.per_message_recv);
                if self.node.role() == Role::Leader {
                    self.register_read(
                        ctx,
                        ReadOrigin::Remote {
                            follower: from,
                            read_id,
                        },
                        false,
                    );
                } else {
                    // Not the leader (any more): the follower redirects.
                    ctx.send(
                        from,
                        Channel::Tcp,
                        ClusterMsg::ReadIndexResp {
                            read_id,
                            read_index: None,
                        },
                    );
                }
            }
            ClusterMsg::ReadIndexResp {
                read_id,
                read_index,
            } => {
                self.cpu.charge(ctx.now, self.cost.per_message_recv);
                let wave = self.fwd_inflight.take_if(|w| w.wave_id == read_id);
                if let Some(wave) = wave {
                    match read_index {
                        Some(idx) => {
                            for id in wave.ids {
                                if self.node.last_applied() >= idx {
                                    self.serve_follower_read(ctx, id);
                                } else {
                                    self.follower_wait.entry(idx).or_default().push(id);
                                }
                            }
                        }
                        None => {
                            // The contacted server cannot confirm
                            // leadership: every covered read redirects.
                            for id in wave.ids {
                                if let Some((client, req_id, cmd)) = self.forwarded.remove(&id) {
                                    ctx.send(
                                        client,
                                        Channel::Tcp,
                                        ClusterMsg::ClientRedirect {
                                            req_id,
                                            hint: self.node.leader_id().map(|h| h + self.peer_base),
                                            cmd,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                // A resolved (or stale) wave unblocks the next one.
                self.flush_forwarded(ctx);
            }
            // Servers never receive client-bound messages.
            ClusterMsg::ClientResp { .. } | ClusterMsg::ClientRedirect { .. } => {}
        }
    }

    /// CPU cost of admitting one client command: log-free reads cost
    /// heartbeat-weight work (`per_read`), everything else the full
    /// propose-path `per_request` (+ the tuning tax).
    fn admission_cost(&self, cmd: &A::Command) -> Duration {
        let mut cost = if self.read_strategy.log_free() && A::is_read(cmd) {
            self.cost.per_read
        } else {
            self.cost.per_request
        };
        if self.tunes {
            cost += self.cost.tuning_per_request;
        }
        cost
    }

    /// Propose every queued configuration change. Non-leaders cannot
    /// propose; their queued changes are dropped (and counted) so a stale
    /// enqueue against a deposed leader cannot linger forever.
    fn drain_conf(&mut self, ctx: &mut HostCtx<'_, ClusterMsg<A>>) {
        while let Some(change) = self.pending_conf.pop_front() {
            if self.node.role() != Role::Leader {
                self.conf_rejections += 1;
                continue;
            }
            self.cpu.charge(ctx.now, self.cost.per_request);
            let (result, fx) = self.node.propose_conf_change(ctx.now, change);
            if result.is_err() {
                self.conf_rejections += 1;
            }
            self.route_effects(ctx, fx);
        }
    }

    /// Timer wake-up.
    pub fn handle_wake(&mut self, ctx: &mut HostCtx<'_, ClusterMsg<A>>) {
        self.cpu.charge(ctx.now, self.cost.per_timer_wake);
        self.drain_conf(ctx);
        self.drain_admitted(ctx);
        self.flush_forwarded(ctx); // wave resend on silence
        let fx = self.node.tick(ctx.now);
        self.route_effects(ctx, fx);
    }

    /// Earliest instant this server needs a wake-up.
    #[must_use]
    pub fn wake_deadline(&self) -> Option<SimTime> {
        // A queued conf change wants an immediate wake (the kernel clamps
        // past deadlines to `now`); `handle_wake` fully drains the queue,
        // so this cannot spin.
        let conf_wake = (!self.pending_conf.is_empty()).then_some(SimTime::ZERO);
        let node_wake = self.node.next_wake();
        let admit_wake = self.admit.front().map(|a| a.ready_at);
        let wave_wake = self
            .fwd_inflight
            .as_ref()
            .map(|w| w.sent_at + FWD_WAVE_RESEND);
        [conf_wake, node_wake, admit_wake, wave_wake]
            .into_iter()
            .flatten()
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_core::TuningConfig;
    use dynatune_kv::KvCommand;

    // ServerHost is exercised end-to-end through ClusterSim (sim.rs tests
    // and the integration suite); here we test the pieces that don't need a
    // network.

    fn server() -> ServerHost {
        ServerHost::new(
            RaftConfig::new(0, 1, TuningConfig::raft_default()),
            CostModel::free(),
            2,
            Duration::from_secs(5),
        )
    }

    #[test]
    fn single_node_server_elects_itself_and_serves() {
        let mut s = server();
        let mut outbox = Vec::new();
        // Let its election timer fire: single-node cluster becomes leader.
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        assert_eq!(s.node().role(), Role::Leader);
        // A client request commits immediately.
        let mut ctx = HostCtx::test_ctx(deadline + Duration::from_millis(1), 0, &mut outbox);
        s.handle_message(
            &mut ctx,
            7,
            ClusterMsg::ClientReq {
                req_id: 42,
                cmd: KvCommand::Put {
                    key: bytes::Bytes::from_static(b"k"),
                    value: bytes::Bytes::from_static(b"v"),
                },
            },
        );
        let resp = outbox
            .iter()
            .find(|(to, _, m)| *to == 7 && matches!(m, ClusterMsg::ClientResp { .. }));
        assert!(resp.is_some(), "client got a response: {outbox:?}");
    }

    #[test]
    fn events_are_recorded_with_timestamps() {
        let mut s = server();
        let mut outbox = Vec::new();
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        assert!(!s.events().is_empty());
        assert!(s
            .events()
            .iter()
            .any(|(_, e)| matches!(e, RaftEvent::BecameLeader { .. })));
        assert!(s.events().iter().all(|(t, _)| *t == deadline));
    }

    #[test]
    fn client_retry_of_same_req_id_applies_once() {
        let mut s = server();
        let mut outbox = Vec::new();
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        assert_eq!(s.node().role(), Role::Leader);
        let req = ClusterMsg::ClientReq {
            req_id: 42,
            cmd: KvCommand::Put {
                key: bytes::Bytes::from_static(b"k"),
                value: bytes::Bytes::from_static(b"v"),
            },
        };
        let t1 = deadline + Duration::from_millis(1);
        let mut ctx = HostCtx::test_ctx(t1, 0, &mut outbox);
        s.handle_message(&mut ctx, 7, req.clone());
        // The client timed out (response lost) and retried the SAME req_id:
        // the proposal commits a second entry, but the replicated reply
        // cache recognises the duplicate at apply time.
        let t2 = deadline + Duration::from_millis(2);
        let mut ctx = HostCtx::test_ctx(t2, 0, &mut outbox);
        s.handle_message(&mut ctx, 7, req);
        let responses: Vec<_> = outbox
            .iter()
            .filter_map(|(to, _, m)| match m {
                ClusterMsg::ClientResp { req_id: 42, result } if *to == 7 => Some(result.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(responses.len(), 2, "both attempts are answered");
        assert_eq!(responses[0], responses[1], "retry sees the same response");
        let v = s.node().state_machine().peek(b"k").expect("key written");
        assert_eq!(v.version, 1, "the write applied exactly once");
    }

    #[test]
    fn crash_restart_clears_volatile_state() {
        let mut s = server();
        let mut outbox = Vec::new();
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        let term_before = s.node().term();
        s.crash_restart(deadline + Duration::from_secs(1));
        assert_eq!(s.node().role(), Role::Follower);
        assert_eq!(s.node().term(), term_before, "term is persistent");
        assert!(s.node().state_machine().is_empty());
    }
}
