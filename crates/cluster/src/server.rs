//! The server host: a Raft node + KV store + CPU meter behind the
//! simulator's [`Host`](dynatune_simnet::Host) interface.

use crate::cpu::{CostModel, CpuMeter};
use crate::msg::ClusterMsg;
use dynatune_kv::{KvCommand, KvStore};
use dynatune_raft::{
    LogIndex, NodeEffects, NodeId, Payload, RaftConfig, RaftEvent, RaftNode, Role, Term,
};
use dynatune_simnet::{Channel, HostCtx, SimTime};
use std::collections::BTreeMap;
use std::time::Duration;

/// A proposal made on behalf of a client, waiting for its entry to apply.
#[derive(Debug, Clone)]
struct PendingReq {
    term: Term,
    client: NodeId,
    req_id: u64,
}

/// A client request admitted through the CPU queue, waiting to execute.
#[derive(Debug, Clone)]
struct AdmittedReq {
    ready_at: SimTime,
    client: NodeId,
    req_id: u64,
    cmd: KvCommand,
}

/// Compact when the live log exceeds this many entries.
const COMPACT_THRESHOLD: usize = 131_072;
/// Keep this many recent entries when compacting.
const COMPACT_TAIL: u64 = 8_192;

/// One simulated etcd-like server.
pub struct ServerHost {
    node: RaftNode<KvStore>,
    cost: CostModel,
    cpu: CpuMeter,
    tunes: bool,
    /// Global host id of this group's first member. Raft node ids are
    /// group-local (`0..n`); in a multi-group (sharded) world the group
    /// occupies a contiguous block of host ids starting here, so protocol
    /// traffic translates by one addition/subtraction. Zero for the
    /// single-group layout, where host ids and node ids coincide.
    peer_base: NodeId,
    /// Observable event log: `(time, event)`.
    events: Vec<(SimTime, RaftEvent)>,
    /// Proposals awaiting application, keyed by log index.
    pending: BTreeMap<LogIndex, PendingReq>,
    /// CPU-admitted client requests not yet proposed (FIFO by ready_at).
    admit: std::collections::VecDeque<AdmittedReq>,
}

impl ServerHost {
    /// Build a server from its Raft config and cost model.
    #[must_use]
    pub fn new(config: RaftConfig, cost: CostModel, cores: usize, window: Duration) -> Self {
        let tunes = config.tuning.mode.tunes();
        Self {
            node: RaftNode::new(config, KvStore::new(), SimTime::ZERO),
            cost,
            cpu: CpuMeter::new(cores, window),
            tunes,
            peer_base: 0,
            events: Vec::new(),
            pending: BTreeMap::new(),
            admit: std::collections::VecDeque::new(),
        }
    }

    /// Place this server's Raft group at a block of host ids starting at
    /// `base` (sharded worlds; see `peer_base`).
    #[must_use]
    pub fn with_peer_base(mut self, base: NodeId) -> Self {
        self.peer_base = base;
        self
    }

    /// The wrapped Raft node (observers).
    #[must_use]
    pub fn node(&self) -> &RaftNode<KvStore> {
        &self.node
    }

    /// Mutable access for failure injection (crash/restart).
    pub fn node_mut(&mut self) -> &mut RaftNode<KvStore> {
        &mut self.node
    }

    /// Recorded events (time-stamped).
    #[must_use]
    pub fn events(&self) -> &[(SimTime, RaftEvent)] {
        &self.events
    }

    /// The CPU meter (utilization series).
    #[must_use]
    pub fn cpu(&self) -> &CpuMeter {
        &self.cpu
    }

    /// Crash this server: persistent Raft state survives, everything else
    /// (state machine, pending requests, admission queue) is lost.
    pub fn crash_restart(&mut self, now: SimTime) {
        self.node.restart(now, KvStore::new());
        self.pending.clear();
        self.admit.clear();
    }

    fn msg_recv_cost(&self) -> Duration {
        let mut c = self.cost.per_message_recv;
        if self.tunes {
            c += self.cost.tuning_per_message;
        }
        c
    }

    fn msg_send_cost(&self, payload: &Payload<KvCommand>) -> Duration {
        let mut c = self.cost.per_message_send;
        if self.tunes {
            c += self.cost.tuning_per_message;
        }
        if let Payload::AppendEntries(ae) = payload {
            c += self.cost.per_append_entry * ae.entries.len() as u32;
        }
        c
    }

    /// Route node effects out to the network and bookkeeping.
    fn route_effects(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>, fx: NodeEffects<KvStore>) {
        let now = ctx.now;
        for ev in &fx.events {
            self.events.push((now, *ev));
        }
        for m in fx.messages {
            self.cpu.charge(now, self.msg_send_cost(&m.payload));
            ctx.send(
                self.peer_base + m.to,
                m.channel,
                ClusterMsg::Raft(m.payload),
            );
        }
        for applied in fx.applied {
            self.cpu.charge(now, self.cost.per_apply);
            if let Some(p) = self.pending.remove(&applied.index) {
                let result = if p.term == applied.term {
                    applied.response
                } else {
                    None // our proposal was displaced by another leader's entry
                };
                ctx.send(
                    p.client,
                    Channel::Tcp,
                    ClusterMsg::ClientResp {
                        req_id: p.req_id,
                        result,
                    },
                );
            }
        }
        // If leadership was lost, fail whatever is still pending.
        if self.node.role() != Role::Leader && !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            for (_, p) in pending {
                ctx.send(
                    p.client,
                    Channel::Tcp,
                    ClusterMsg::ClientResp {
                        req_id: p.req_id,
                        result: None,
                    },
                );
            }
        }
        // Opportunistic log compaction keeps long experiments bounded.
        if self.node.log().len() > COMPACT_THRESHOLD {
            let upto = self.node.safe_compact_index().saturating_sub(COMPACT_TAIL);
            self.node.compact_log(upto);
        }
    }

    /// Propose admitted requests whose CPU-queue delay has elapsed.
    fn drain_admitted(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        let now = ctx.now;
        while let Some(front) = self.admit.front() {
            if front.ready_at > now {
                break;
            }
            let req = self.admit.pop_front().expect("non-empty");
            let (result, fx) = self.node.propose(now, req.cmd.clone());
            match result {
                Ok((term, index)) => {
                    self.pending.insert(
                        index,
                        PendingReq {
                            term,
                            client: req.client,
                            req_id: req.req_id,
                        },
                    );
                }
                Err(not_leader) => {
                    ctx.send(
                        req.client,
                        Channel::Tcp,
                        ClusterMsg::ClientRedirect {
                            req_id: req.req_id,
                            // The node's hint is group-local; clients
                            // address hosts, so translate it.
                            hint: not_leader.hint.map(|h| h + self.peer_base),
                            cmd: req.cmd,
                        },
                    );
                }
            }
            self.route_effects(ctx, fx);
        }
    }

    /// Deliver a message to this server.
    pub fn handle_message(
        &mut self,
        ctx: &mut HostCtx<'_, ClusterMsg>,
        from: NodeId,
        msg: ClusterMsg,
    ) {
        match msg {
            ClusterMsg::Raft(payload) => {
                self.cpu.charge(ctx.now, self.msg_recv_cost());
                let fx = self.node.step(ctx.now, from - self.peer_base, payload);
                self.route_effects(ctx, fx);
                self.drain_admitted(ctx);
            }
            ClusterMsg::ClientReq { req_id, cmd } => {
                let mut cost = self.cost.per_request;
                if self.tunes {
                    cost += self.cost.tuning_per_request;
                }
                let ready_at = self.cpu.charge(ctx.now, cost);
                self.admit.push_back(AdmittedReq {
                    ready_at,
                    client: from,
                    req_id,
                    cmd,
                });
                self.drain_admitted(ctx);
            }
            ClusterMsg::ClientBatch { reqs } => {
                // Batching saves network round trips, not CPU: each item
                // pays the full per-request admission cost.
                let mut cost = self.cost.per_request;
                if self.tunes {
                    cost += self.cost.tuning_per_request;
                }
                for (req_id, cmd) in reqs {
                    let ready_at = self.cpu.charge(ctx.now, cost);
                    self.admit.push_back(AdmittedReq {
                        ready_at,
                        client: from,
                        req_id,
                        cmd,
                    });
                }
                self.drain_admitted(ctx);
            }
            // Servers never receive client-bound messages.
            ClusterMsg::ClientResp { .. } | ClusterMsg::ClientRedirect { .. } => {}
        }
    }

    /// Timer wake-up.
    pub fn handle_wake(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        self.cpu.charge(ctx.now, self.cost.per_timer_wake);
        self.drain_admitted(ctx);
        let fx = self.node.tick(ctx.now);
        self.route_effects(ctx, fx);
    }

    /// Earliest instant this server needs a wake-up.
    #[must_use]
    pub fn wake_deadline(&self) -> Option<SimTime> {
        let node_wake = self.node.next_wake();
        let admit_wake = self.admit.front().map(|a| a.ready_at);
        match (node_wake, admit_wake) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_core::TuningConfig;

    // ServerHost is exercised end-to-end through ClusterSim (sim.rs tests
    // and the integration suite); here we test the pieces that don't need a
    // network.

    fn server() -> ServerHost {
        ServerHost::new(
            RaftConfig::new(0, 1, TuningConfig::raft_default()),
            CostModel::free(),
            2,
            Duration::from_secs(5),
        )
    }

    #[test]
    fn single_node_server_elects_itself_and_serves() {
        let mut s = server();
        let mut outbox = Vec::new();
        // Let its election timer fire: single-node cluster becomes leader.
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        assert_eq!(s.node().role(), Role::Leader);
        // A client request commits immediately.
        let mut ctx = HostCtx::test_ctx(deadline + Duration::from_millis(1), 0, &mut outbox);
        s.handle_message(
            &mut ctx,
            7,
            ClusterMsg::ClientReq {
                req_id: 42,
                cmd: KvCommand::Put {
                    key: bytes::Bytes::from_static(b"k"),
                    value: bytes::Bytes::from_static(b"v"),
                },
            },
        );
        let resp = outbox
            .iter()
            .find(|(to, _, m)| *to == 7 && matches!(m, ClusterMsg::ClientResp { .. }));
        assert!(resp.is_some(), "client got a response: {outbox:?}");
    }

    #[test]
    fn events_are_recorded_with_timestamps() {
        let mut s = server();
        let mut outbox = Vec::new();
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        assert!(!s.events().is_empty());
        assert!(s
            .events()
            .iter()
            .any(|(_, e)| matches!(e, RaftEvent::BecameLeader { .. })));
        assert!(s.events().iter().all(|(t, _)| *t == deadline));
    }

    #[test]
    fn crash_restart_clears_volatile_state() {
        let mut s = server();
        let mut outbox = Vec::new();
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        let term_before = s.node().term();
        s.crash_restart(deadline + Duration::from_secs(1));
        assert_eq!(s.node().role(), Role::Follower);
        assert_eq!(s.node().term(), term_before, "term is persistent");
        assert!(s.node().state_machine().is_empty());
    }
}
