//! The server host: a Raft node + KV store + CPU meter behind the
//! simulator's [`Host`](dynatune_simnet::Host) interface.

use crate::cpu::{CostModel, CpuMeter};
use crate::msg::{ClusterMsg, RaftPayload};
use dynatune_kv::{KvCommand, KvRequest, Store};
use dynatune_raft::{
    LogIndex, NodeEffects, NodeId, Payload, RaftConfig, RaftEvent, RaftNode, Role, Term,
};
use dynatune_simnet::{Channel, HostCtx, SimTime};
use std::collections::BTreeMap;
use std::time::Duration;

/// A proposal made on behalf of a client, waiting for its entry to apply.
#[derive(Debug, Clone)]
struct PendingReq {
    term: Term,
    client: NodeId,
    req_id: u64,
}

/// A client request admitted through the CPU queue, waiting to execute.
#[derive(Debug, Clone)]
struct AdmittedReq {
    ready_at: SimTime,
    client: NodeId,
    req_id: u64,
    cmd: KvCommand,
}

/// Compact when the live log exceeds this many entries (default).
pub const COMPACT_THRESHOLD: usize = 131_072;
/// Keep this many recent entries when compacting (default), so
/// briefly-lagging followers catch up via cheap appends instead of a full
/// snapshot transfer.
pub const COMPACT_TAIL: u64 = 8_192;

/// When to compact the log and how much slack to keep. Compaction is
/// bounded only by `last_applied` — snapshots catch up anyone further
/// behind — so the leader's live log stays within
/// `threshold + tail` entries no matter how long a follower is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact once the live log exceeds this many entries.
    pub threshold: usize,
    /// Keep this many applied entries below the compaction point.
    pub tail: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            threshold: COMPACT_THRESHOLD,
            tail: COMPACT_TAIL,
        }
    }
}

/// One simulated etcd-like server.
pub struct ServerHost {
    node: RaftNode<Store>,
    cost: CostModel,
    cpu: CpuMeter,
    compaction: CompactionPolicy,
    tunes: bool,
    /// Global host id of this group's first member. Raft node ids are
    /// group-local (`0..n`); in a multi-group (sharded) world the group
    /// occupies a contiguous block of host ids starting here, so protocol
    /// traffic translates by one addition/subtraction. Zero for the
    /// single-group layout, where host ids and node ids coincide.
    peer_base: NodeId,
    /// Observable event log: `(time, event)`.
    events: Vec<(SimTime, RaftEvent)>,
    /// Proposals awaiting application, keyed by log index.
    pending: BTreeMap<LogIndex, PendingReq>,
    /// CPU-admitted client requests not yet proposed (FIFO by ready_at).
    admit: std::collections::VecDeque<AdmittedReq>,
}

impl ServerHost {
    /// Build a server from its Raft config and cost model.
    #[must_use]
    pub fn new(config: RaftConfig, cost: CostModel, cores: usize, window: Duration) -> Self {
        let tunes = config.tuning.mode.tunes();
        Self {
            node: RaftNode::new(config, Store::new(), SimTime::ZERO),
            cost,
            cpu: CpuMeter::new(cores, window),
            compaction: CompactionPolicy::default(),
            tunes,
            peer_base: 0,
            events: Vec::new(),
            pending: BTreeMap::new(),
            admit: std::collections::VecDeque::new(),
        }
    }

    /// Place this server's Raft group at a block of host ids starting at
    /// `base` (sharded worlds; see `peer_base`).
    #[must_use]
    pub fn with_peer_base(mut self, base: NodeId) -> Self {
        self.peer_base = base;
        self
    }

    /// Override the log-compaction policy (scenarios shrink it to exercise
    /// snapshot transfer at simulation-friendly write volumes).
    #[must_use]
    pub fn with_compaction(mut self, compaction: CompactionPolicy) -> Self {
        self.compaction = compaction;
        self
    }

    /// The wrapped Raft node (observers).
    #[must_use]
    pub fn node(&self) -> &RaftNode<Store> {
        &self.node
    }

    /// Mutable access for failure injection (crash/restart).
    pub fn node_mut(&mut self) -> &mut RaftNode<Store> {
        &mut self.node
    }

    /// Live (un-compacted) log length — the memory-bound observable.
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.node.log().len()
    }

    /// `InstallSnapshot` transfers started by this server as leader.
    #[must_use]
    pub fn snapshots_sent(&self) -> u64 {
        self.node.snapshots_sent()
    }

    /// Recorded events (time-stamped).
    #[must_use]
    pub fn events(&self) -> &[(SimTime, RaftEvent)] {
        &self.events
    }

    /// The CPU meter (utilization series).
    #[must_use]
    pub fn cpu(&self) -> &CpuMeter {
        &self.cpu
    }

    /// Crash this server: persistent Raft state (term, vote, log, retained
    /// snapshot) survives, everything else (pending requests, admission
    /// queue) is lost; the state machine is rebuilt from the snapshot plus
    /// log replay.
    pub fn crash_restart(&mut self, now: SimTime) {
        self.node.restart(now, Store::new());
        self.pending.clear();
        self.admit.clear();
    }

    fn msg_recv_cost(&self, payload: &RaftPayload) -> Duration {
        let mut c = self.cost.per_message_recv;
        if self.tunes {
            c += self.cost.tuning_per_message;
        }
        if let Payload::InstallSnapshot(s) = payload {
            // Size-aware install: restoring a big store takes real time.
            c += self.cost.snapshot_cost(s.data.approx_bytes());
        }
        c
    }

    fn msg_send_cost(&self, payload: &RaftPayload) -> Duration {
        let mut c = self.cost.per_message_send;
        if self.tunes {
            c += self.cost.tuning_per_message;
        }
        match payload {
            Payload::AppendEntries(ae) => {
                c += self.cost.per_append_entry * ae.entries.len() as u32;
            }
            Payload::InstallSnapshot(s) => {
                // Size-aware serialization of the full state.
                c += self.cost.snapshot_cost(s.data.approx_bytes());
            }
            _ => {}
        }
        c
    }

    /// Route node effects out to the network and bookkeeping.
    fn route_effects(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>, fx: NodeEffects<Store>) {
        let now = ctx.now;
        for ev in &fx.events {
            self.events.push((now, *ev));
        }
        for m in fx.messages {
            self.cpu.charge(now, self.msg_send_cost(&m.payload));
            ctx.send(
                self.peer_base + m.to,
                m.channel,
                ClusterMsg::Raft(m.payload),
            );
        }
        for applied in fx.applied {
            self.cpu.charge(now, self.cost.per_apply);
            if let Some(p) = self.pending.remove(&applied.index) {
                let result = if p.term == applied.term {
                    applied.response
                } else {
                    None // our proposal was displaced by another leader's entry
                };
                ctx.send(
                    p.client,
                    Channel::Tcp,
                    ClusterMsg::ClientResp {
                        req_id: p.req_id,
                        result,
                    },
                );
            }
        }
        // If leadership was lost, fail whatever is still pending. The entry
        // may still commit under the new leader; the client's retry of the
        // same req_id is deduplicated by the replicated reply cache
        // (`dynatune_kv::Store`), so reporting failure here cannot cause a
        // duplicate apply.
        if self.node.role() != Role::Leader && !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            for (_, p) in pending {
                ctx.send(
                    p.client,
                    Channel::Tcp,
                    ClusterMsg::ClientResp {
                        req_id: p.req_id,
                        result: None,
                    },
                );
            }
        }
        // Opportunistic log compaction keeps memory bounded. Not pinned by
        // slow followers: anyone behind the horizon is caught up by an
        // InstallSnapshot stream, so only the policy's tail of slack is
        // retained for cheap append-based catch-up.
        if self.node.log().len() > self.compaction.threshold {
            let upto = self
                .node
                .safe_compact_index()
                .saturating_sub(self.compaction.tail);
            self.node.compact_log(upto);
        }
    }

    /// Propose admitted requests whose CPU-queue delay has elapsed.
    fn drain_admitted(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        let now = ctx.now;
        while let Some(front) = self.admit.front() {
            if front.ready_at > now {
                break;
            }
            let req = self.admit.pop_front().expect("non-empty");
            let request = KvRequest::from_client(req.client as u64, req.req_id, req.cmd.clone());
            let (result, fx) = self.node.propose(now, request);
            match result {
                Ok((term, index)) => {
                    self.pending.insert(
                        index,
                        PendingReq {
                            term,
                            client: req.client,
                            req_id: req.req_id,
                        },
                    );
                }
                Err(not_leader) => {
                    ctx.send(
                        req.client,
                        Channel::Tcp,
                        ClusterMsg::ClientRedirect {
                            req_id: req.req_id,
                            // The node's hint is group-local; clients
                            // address hosts, so translate it.
                            hint: not_leader.hint.map(|h| h + self.peer_base),
                            cmd: req.cmd,
                        },
                    );
                }
            }
            self.route_effects(ctx, fx);
        }
    }

    /// Deliver a message to this server.
    pub fn handle_message(
        &mut self,
        ctx: &mut HostCtx<'_, ClusterMsg>,
        from: NodeId,
        msg: ClusterMsg,
    ) {
        match msg {
            ClusterMsg::Raft(payload) => {
                self.cpu.charge(ctx.now, self.msg_recv_cost(&payload));
                let fx = self.node.step(ctx.now, from - self.peer_base, payload);
                self.route_effects(ctx, fx);
                self.drain_admitted(ctx);
            }
            ClusterMsg::ClientReq { req_id, cmd } => {
                let mut cost = self.cost.per_request;
                if self.tunes {
                    cost += self.cost.tuning_per_request;
                }
                let ready_at = self.cpu.charge(ctx.now, cost);
                self.admit.push_back(AdmittedReq {
                    ready_at,
                    client: from,
                    req_id,
                    cmd,
                });
                self.drain_admitted(ctx);
            }
            ClusterMsg::ClientBatch { reqs } => {
                // Batching saves network round trips, not CPU: each item
                // pays the full per-request admission cost.
                let mut cost = self.cost.per_request;
                if self.tunes {
                    cost += self.cost.tuning_per_request;
                }
                for (req_id, cmd) in reqs {
                    let ready_at = self.cpu.charge(ctx.now, cost);
                    self.admit.push_back(AdmittedReq {
                        ready_at,
                        client: from,
                        req_id,
                        cmd,
                    });
                }
                self.drain_admitted(ctx);
            }
            // Servers never receive client-bound messages.
            ClusterMsg::ClientResp { .. } | ClusterMsg::ClientRedirect { .. } => {}
        }
    }

    /// Timer wake-up.
    pub fn handle_wake(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        self.cpu.charge(ctx.now, self.cost.per_timer_wake);
        self.drain_admitted(ctx);
        let fx = self.node.tick(ctx.now);
        self.route_effects(ctx, fx);
    }

    /// Earliest instant this server needs a wake-up.
    #[must_use]
    pub fn wake_deadline(&self) -> Option<SimTime> {
        let node_wake = self.node.next_wake();
        let admit_wake = self.admit.front().map(|a| a.ready_at);
        match (node_wake, admit_wake) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_core::TuningConfig;

    // ServerHost is exercised end-to-end through ClusterSim (sim.rs tests
    // and the integration suite); here we test the pieces that don't need a
    // network.

    fn server() -> ServerHost {
        ServerHost::new(
            RaftConfig::new(0, 1, TuningConfig::raft_default()),
            CostModel::free(),
            2,
            Duration::from_secs(5),
        )
    }

    #[test]
    fn single_node_server_elects_itself_and_serves() {
        let mut s = server();
        let mut outbox = Vec::new();
        // Let its election timer fire: single-node cluster becomes leader.
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        assert_eq!(s.node().role(), Role::Leader);
        // A client request commits immediately.
        let mut ctx = HostCtx::test_ctx(deadline + Duration::from_millis(1), 0, &mut outbox);
        s.handle_message(
            &mut ctx,
            7,
            ClusterMsg::ClientReq {
                req_id: 42,
                cmd: KvCommand::Put {
                    key: bytes::Bytes::from_static(b"k"),
                    value: bytes::Bytes::from_static(b"v"),
                },
            },
        );
        let resp = outbox
            .iter()
            .find(|(to, _, m)| *to == 7 && matches!(m, ClusterMsg::ClientResp { .. }));
        assert!(resp.is_some(), "client got a response: {outbox:?}");
    }

    #[test]
    fn events_are_recorded_with_timestamps() {
        let mut s = server();
        let mut outbox = Vec::new();
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        assert!(!s.events().is_empty());
        assert!(s
            .events()
            .iter()
            .any(|(_, e)| matches!(e, RaftEvent::BecameLeader { .. })));
        assert!(s.events().iter().all(|(t, _)| *t == deadline));
    }

    #[test]
    fn client_retry_of_same_req_id_applies_once() {
        let mut s = server();
        let mut outbox = Vec::new();
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        assert_eq!(s.node().role(), Role::Leader);
        let req = ClusterMsg::ClientReq {
            req_id: 42,
            cmd: KvCommand::Put {
                key: bytes::Bytes::from_static(b"k"),
                value: bytes::Bytes::from_static(b"v"),
            },
        };
        let t1 = deadline + Duration::from_millis(1);
        let mut ctx = HostCtx::test_ctx(t1, 0, &mut outbox);
        s.handle_message(&mut ctx, 7, req.clone());
        // The client timed out (response lost) and retried the SAME req_id:
        // the proposal commits a second entry, but the replicated reply
        // cache recognises the duplicate at apply time.
        let t2 = deadline + Duration::from_millis(2);
        let mut ctx = HostCtx::test_ctx(t2, 0, &mut outbox);
        s.handle_message(&mut ctx, 7, req);
        let responses: Vec<_> = outbox
            .iter()
            .filter_map(|(to, _, m)| match m {
                ClusterMsg::ClientResp { req_id: 42, result } if *to == 7 => Some(result.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(responses.len(), 2, "both attempts are answered");
        assert_eq!(responses[0], responses[1], "retry sees the same response");
        let v = s.node().state_machine().peek(b"k").expect("key written");
        assert_eq!(v.version, 1, "the write applied exactly once");
    }

    #[test]
    fn crash_restart_clears_volatile_state() {
        let mut s = server();
        let mut outbox = Vec::new();
        let deadline = s.wake_deadline().unwrap();
        let mut ctx = HostCtx::test_ctx(deadline, 0, &mut outbox);
        s.handle_wake(&mut ctx);
        let term_before = s.node().term();
        s.crash_restart(deadline + Duration::from_secs(1));
        assert_eq!(s.node().role(), Role::Follower);
        assert_eq!(s.node().term(), term_before, "term is persistent");
        assert!(s.node().state_machine().is_empty());
    }
}
