//! Shard-aware open-loop client: hash-routes every command to its owning
//! Raft group and coalesces the arrivals of each wake into one batch per
//! shard.
//!
//! The single-group [`ClientHost`](crate::client::ClientHost) tracks one
//! leader guess; this client tracks one per shard, follows redirects per
//! shard, and retries timeouts round-robin *within* the owning group (a
//! request must never leave its shard — the data is only there). Per-shard
//! counters are cumulative, so experiments can snapshot them at any two
//! instants and difference for a windowed throughput.

use crate::msg::ClusterMsg;
use dynatune_kv::{KvCommand, ShardId, ShardMap, ShardRouter, WorkloadGen};
use dynatune_raft::NodeId;
use dynatune_simnet::{Channel, HostCtx, SimTime};
use dynatune_stats::{Histogram, OnlineStats};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// Maximum redirect/timeout-driven retries per request (matches the
/// single-group client).
const MAX_RETRIES: u8 = 3;

/// Default batching window: arrivals within this span of the first pending
/// arrival ride the same per-shard batch. Small against the 100 ms server
/// RTT (at most a ~2 ms latency tax) but wide enough to coalesce under
/// load, where inter-arrival gaps shrink below it.
pub const DEFAULT_BATCH_WINDOW: Duration = Duration::from_millis(2);

/// Cumulative per-shard outcome counters.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Requests routed to this shard.
    pub sent: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed (leadership change, retries exhausted).
    pub failed: u64,
    /// Batch messages sent to this shard's group.
    pub batches: u64,
    /// Latency of completed requests in milliseconds.
    pub latency_ms: OnlineStats,
}

#[derive(Debug, Clone)]
struct Outstanding {
    sent_at: SimTime,
    shard: ShardId,
    retries: u8,
    cmd: KvCommand,
}

/// An open-loop client over a sharded cluster.
pub struct ShardClient {
    workload: WorkloadGen,
    router: ShardRouter,
    /// Per-shard replica placement (global host ids). Seeded from the
    /// static [`ShardMap`] but **dynamic**: [`ShardClient::repoint`]
    /// rewrites a row when the rebalancer moves a replica, so routing,
    /// redirect validation and read fan-out never assume the contiguous
    /// genesis universe.
    placement: Vec<Vec<NodeId>>,
    /// Per-shard leader guess (global host id within the shard's group).
    leader_guess: Vec<NodeId>,
    next_req_id: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    stats: Vec<ShardStats>,
    /// Per-shard latency histogram (µs) since the last
    /// [`ShardClient::take_latency_window`] — windowed tail-latency
    /// measurements for before/after comparisons the cumulative
    /// [`ShardStats`] moments cannot express.
    window_hist: Vec<Histogram>,
    request_timeout: Option<Duration>,
    /// FIFO of `(deadline, req_id)`; constant timeout keeps it ordered.
    timeout_queue: VecDeque<(SimTime, u64)>,
    timed_out: u64,
    /// Spread reads round-robin over the owning shard's replicas instead
    /// of batching them to the leader guess (follower-read offload; writes
    /// still batch to the leader).
    read_fanout: bool,
    /// Per-shard round-robin cursor for `read_fanout`.
    read_rr: Vec<usize>,
    /// Pending batch buffers, one per shard, flushed together at
    /// `flush_at`.
    batch_scratch: Vec<Vec<(u64, KvCommand)>>,
    /// Flush deadline: first pending arrival's nominal time plus the batch
    /// window (`None` when nothing is pending). Anchoring on the arrival
    /// time, not the wake time, keeps a late wake from deferring overdue
    /// work another window.
    flush_at: Option<SimTime>,
    batch_window: Duration,
}

impl ShardClient {
    /// Create a client over the placement in `map`; each shard's initial
    /// leader guess is its replica 0.
    #[must_use]
    pub fn new(workload: WorkloadGen, map: ShardMap) -> Self {
        let shards = map.shards();
        let placement: Vec<Vec<NodeId>> =
            (0..shards).map(|s| map.servers_of(s).collect()).collect();
        Self {
            workload,
            router: ShardRouter::new(shards),
            leader_guess: placement.iter().map(|row| row[0]).collect(),
            placement,
            next_req_id: 0,
            outstanding: BTreeMap::new(),
            stats: vec![ShardStats::default(); shards],
            window_hist: vec![Histogram::new(); shards],
            request_timeout: Some(Duration::from_secs(1)),
            timeout_queue: VecDeque::new(),
            timed_out: 0,
            read_fanout: false,
            read_rr: vec![0; shards],
            batch_scratch: vec![Vec::new(); shards],
            flush_at: None,
            batch_window: DEFAULT_BATCH_WINDOW,
        }
    }

    /// Override (or disable) the per-request response timeout.
    #[must_use]
    pub fn with_request_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Override the batching window (`Duration::ZERO` sends every arrival
    /// unbatched, like the single-group client).
    #[must_use]
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Spread reads round-robin over each shard's replicas (follower-read
    /// offload). Reads then travel as single requests; writes keep
    /// batching to the shard's leader guess.
    #[must_use]
    pub fn with_read_fanout(mut self, fanout: bool) -> Self {
        self.read_fanout = fanout;
        self
    }

    /// Per-shard cumulative counters.
    #[must_use]
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Completed requests per shard (snapshot-friendly).
    #[must_use]
    pub fn completed_per_shard(&self) -> Vec<u64> {
        self.stats.iter().map(|s| s.completed).collect()
    }

    /// Total completed requests across all shards.
    #[must_use]
    pub fn total_completed(&self) -> u64 {
        self.stats.iter().map(|s| s.completed).sum()
    }

    /// Requests still in flight.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Requests abandoned after exhausting timeout retries.
    #[must_use]
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Rotate a shard's leader guess to the next replica in its placement
    /// row. A guess no longer in the row (just repointed away) restarts at
    /// the row's first replica.
    fn rotate_guess(&mut self, shard: ShardId) {
        let row = &self.placement[shard];
        let next = match row.iter().position(|&r| r == self.leader_guess[shard]) {
            Some(i) => (i + 1) % row.len(),
            None => 0,
        };
        self.leader_guess[shard] = row[next];
    }

    /// Rewrite the placement row of `shard`: replica `from` is replaced by
    /// `to` (the rebalancer's cut-over). A leader guess or in-flight
    /// retry pointing at `from` moves to `to`; requests already sent to
    /// `from` resolve through the ordinary redirect/timeout paths.
    pub fn repoint(&mut self, shard: ShardId, from: NodeId, to: NodeId) {
        for slot in &mut self.placement[shard] {
            if *slot == from {
                *slot = to;
            }
        }
        if self.leader_guess[shard] == from {
            self.leader_guess[shard] = to;
        }
    }

    /// Current placement row of one shard (observers / tests).
    #[must_use]
    pub fn placement_of(&self, shard: ShardId) -> &[NodeId] {
        &self.placement[shard]
    }

    /// Take (and reset) the latency histogram one shard accumulated since
    /// the previous take: completed-request latencies in microseconds.
    /// Call once to discard warm-up, again after a window of interest.
    pub fn take_latency_window(&mut self, shard: ShardId) -> Histogram {
        std::mem::take(&mut self.window_hist[shard])
    }

    fn arm_timeout(&mut self, now: SimTime, req_id: u64) {
        if let Some(t) = self.request_timeout {
            self.timeout_queue.push_back((now + t, req_id));
        }
    }

    /// Retry (or abandon) overdue requests. The guess rotates at most once
    /// per shard per expiry wave, exactly like the single-group client.
    fn expire_timeouts(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        let mut rotated = vec![false; self.placement.len()];
        while let Some(&(deadline, req_id)) = self.timeout_queue.front() {
            if deadline > ctx.now {
                break;
            }
            self.timeout_queue.pop_front();
            let Some(o) = self.outstanding.get_mut(&req_id) else {
                continue; // already answered
            };
            let shard = o.shard;
            if o.retries >= MAX_RETRIES {
                self.outstanding.remove(&req_id);
                self.stats[shard].failed += 1;
                self.timed_out += 1;
                continue;
            }
            o.retries += 1;
            let cmd = o.cmd.clone();
            if !rotated[shard] {
                self.rotate_guess(shard);
                rotated[shard] = true;
            }
            let target = self.leader_guess[shard];
            ctx.send(target, Channel::Tcp, ClusterMsg::ClientReq { req_id, cmd });
            self.arm_timeout(ctx.now, req_id);
        }
    }

    /// Send every due arrival, coalesced into one batch per shard, and
    /// expire overdue requests.
    pub fn handle_wake(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        self.expire_timeouts(ctx);
        while let Some(at) = self.workload.peek_next() {
            if at > ctx.now {
                break;
            }
            let Some((_, cmd)) = self.workload.next_request() else {
                break;
            };
            let shard = self.router.shard_of_command(&cmd);
            let req_id = self.next_req_id;
            self.next_req_id += 1;
            self.outstanding.insert(
                req_id,
                Outstanding {
                    sent_at: ctx.now,
                    shard,
                    retries: 0,
                    cmd: cmd.clone(),
                },
            );
            self.stats[shard].sent += 1;
            self.arm_timeout(ctx.now, req_id);
            if self.read_fanout && cmd.is_read() {
                let row = &self.placement[shard];
                self.read_rr[shard] = (self.read_rr[shard] + 1) % row.len();
                let target = row[self.read_rr[shard]];
                ctx.send(target, Channel::Tcp, ClusterMsg::ClientReq { req_id, cmd });
                continue;
            }
            if self.flush_at.is_none() {
                self.flush_at = Some(at + self.batch_window);
            }
            self.batch_scratch[shard].push((req_id, cmd));
        }
        if self.flush_at.is_some_and(|t| t <= ctx.now) {
            self.flush_at = None;
            for shard in 0..self.placement.len() {
                if self.batch_scratch[shard].is_empty() {
                    continue;
                }
                let reqs = std::mem::take(&mut self.batch_scratch[shard]);
                self.stats[shard].batches += 1;
                ctx.send(
                    self.leader_guess[shard],
                    Channel::Tcp,
                    ClusterMsg::ClientBatch { reqs },
                );
            }
        }
    }

    /// Process a server response.
    pub fn handle_message(
        &mut self,
        ctx: &mut HostCtx<'_, ClusterMsg>,
        _from: NodeId,
        msg: ClusterMsg,
    ) {
        match msg {
            ClusterMsg::ClientResp { req_id, result } => {
                if let Some(o) = self.outstanding.remove(&req_id) {
                    let rec = &mut self.stats[o.shard];
                    if result.is_some() {
                        rec.completed += 1;
                        let elapsed = ctx.now - o.sent_at;
                        rec.latency_ms.push(elapsed.as_secs_f64() * 1e3);
                        self.window_hist[o.shard].record(elapsed.as_micros() as u64);
                    } else {
                        rec.failed += 1;
                    }
                }
            }
            ClusterMsg::ClientRedirect { req_id, hint, cmd } => {
                let Some(o) = self.outstanding.get_mut(&req_id) else {
                    return;
                };
                let shard = o.shard;
                let exhausted = o.retries >= MAX_RETRIES;
                if !exhausted {
                    o.retries += 1;
                }
                match hint {
                    // Hints are global host ids (the server translates);
                    // trust only hints inside the shard's current placement
                    // row — which may name a spare the rebalancer admitted,
                    // never a host of a foreign group.
                    Some(h) if self.placement[shard].contains(&h) => {
                        self.leader_guess[shard] = h;
                    }
                    _ => self.rotate_guess(shard),
                }
                if exhausted {
                    self.outstanding.remove(&req_id);
                    self.stats[shard].failed += 1;
                    return;
                }
                let target = self.leader_guess[shard];
                ctx.send(target, Channel::Tcp, ClusterMsg::ClientReq { req_id, cmd });
                self.arm_timeout(ctx.now, req_id);
            }
            // Clients ignore protocol traffic.
            ClusterMsg::Raft(_)
            | ClusterMsg::ClientReq { .. }
            | ClusterMsg::ClientBatch { .. }
            | ClusterMsg::ReadIndexReq { .. }
            | ClusterMsg::ReadIndexResp { .. } => {}
        }
    }

    /// Next workload arrival, batch flush or timeout check, whichever is
    /// sooner.
    #[must_use]
    pub fn wake_deadline(&self) -> Option<SimTime> {
        let arrival = self.workload.peek_next();
        let timeout = self.timeout_queue.front().map(|&(d, _)| d);
        [arrival, timeout, self.flush_at]
            .into_iter()
            .flatten()
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynatune_kv::{KvResponse, OpMix, RateStep};
    use dynatune_simnet::rng::Rng;

    fn client(shards: usize, replicas: usize, rps: f64) -> ShardClient {
        let wl = WorkloadGen::new(
            vec![RateStep {
                rps,
                hold: Duration::from_secs(1),
            }],
            OpMix::write_heavy(),
            1000,
            0.0,
            16,
            Rng::new(5),
            SimTime::ZERO,
        );
        ShardClient::new(wl, ShardMap::new(shards, replicas))
    }

    #[test]
    fn wake_batches_per_shard() {
        let mut c = client(4, 3, 400.0);
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(500), 0, &mut out);
        c.handle_wake(&mut ctx);
        // All arrivals of [0, 500ms) coalesce into at most one batch per
        // shard, addressed to each shard's replica 0.
        assert!(!out.is_empty() && out.len() <= 4, "batches: {}", out.len());
        let map = ShardMap::new(4, 3);
        let mut items = 0;
        for (to, _, msg) in &out {
            let ClusterMsg::ClientBatch { reqs } = msg else {
                panic!("expected batch, got {msg:?}");
            };
            let shard = map.shard_of_server(*to).expect("batch sent to a server");
            assert_eq!(*to, map.server(shard, 0), "initial guess is replica 0");
            items += reqs.len();
        }
        assert_eq!(items as u64, c.shard_stats().iter().map(|s| s.sent).sum());
        assert_eq!(c.outstanding(), items);
    }

    #[test]
    fn completion_lands_in_the_owning_shard() {
        let mut c = client(2, 3, 100.0);
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(200), 0, &mut out);
        c.handle_wake(&mut ctx);
        let (to, _, first) = &out[0];
        let shard = ShardMap::new(2, 3).shard_of_server(*to).unwrap();
        let ClusterMsg::ClientBatch { reqs } = first else {
            panic!("unexpected {first:?}");
        };
        let req_id = reqs[0].0;
        let mut out2 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(250), 0, &mut out2);
        c.handle_message(
            &mut ctx,
            *to,
            ClusterMsg::ClientResp {
                req_id,
                result: Some(KvResponse::Put {
                    prev: None,
                    revision: 1,
                }),
            },
        );
        assert_eq!(c.shard_stats()[shard].completed, 1);
        assert!(c.shard_stats()[shard].latency_ms.mean() > 0.0);
        let other = 1 - shard;
        assert_eq!(c.shard_stats()[other].completed, 0);
    }

    #[test]
    fn redirect_stays_inside_the_group() {
        let mut c = client(2, 3, 100.0);
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(200), 0, &mut out);
        c.handle_wake(&mut ctx);
        let (to, _, first) = &out[0];
        let map = ShardMap::new(2, 3);
        let shard = map.shard_of_server(*to).unwrap();
        let ClusterMsg::ClientBatch { reqs } = first else {
            panic!("unexpected {first:?}");
        };
        let (req_id, _) = reqs[0].clone();
        // A valid in-group hint is adopted.
        let hint = map.server(shard, 2);
        let mut out2 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(210), 0, &mut out2);
        c.handle_message(
            &mut ctx,
            *to,
            ClusterMsg::ClientRedirect {
                req_id,
                hint: Some(hint),
                cmd: KvCommand::Get {
                    key: bytes::Bytes::from_static(b"k"),
                },
            },
        );
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].0, hint, "resent to the hinted replica");
        // A hint pointing outside the group is ignored: rotate instead.
        let foreign = map.server(1 - shard, 0);
        let mut out3 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(220), 0, &mut out3);
        c.handle_message(
            &mut ctx,
            hint,
            ClusterMsg::ClientRedirect {
                req_id,
                hint: Some(foreign),
                cmd: KvCommand::Get {
                    key: bytes::Bytes::from_static(b"k"),
                },
            },
        );
        assert_eq!(out3.len(), 1);
        assert_eq!(
            map.shard_of_server(out3[0].0),
            Some(shard),
            "retry must stay in the owning group"
        );
    }

    #[test]
    fn repoint_breaks_the_static_universe_assumption() {
        // Regression: routing used to be pure ShardMap arithmetic
        // (base + (local+1) % replicas), which cannot address a replica
        // outside the contiguous genesis block. After a repoint the row
        // names a spare host beyond map.n_servers(), and every routing
        // path — guess, rotation, hints, fan-out — must follow it.
        let mut c = client(2, 3, 100.0);
        let map = ShardMap::new(2, 3);
        let spare = map.n_servers() + 1; // outside the static universe
        let retired = map.server(0, 1);
        c.repoint(0, retired, spare);
        assert_eq!(
            c.placement_of(0),
            &[map.server(0, 0), spare, map.server(0, 2)]
        );
        assert!(map.shard_of_server(spare).is_none(), "spare is unmapped");
        // Rotation cycles through the spare instead of the retired host.
        c.leader_guess[0] = map.server(0, 0);
        c.rotate_guess(0);
        assert_eq!(c.leader_guess[0], spare);
        c.rotate_guess(0);
        assert_eq!(c.leader_guess[0], map.server(0, 2));
        c.leader_guess[0] = map.server(0, 0);
        // A redirect hint naming the spare is now trusted...
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(500), 0, &mut out);
        c.handle_wake(&mut ctx);
        let mut shard0_req = None;
        for (to, _, m) in &out {
            if let ClusterMsg::ClientBatch { reqs } = m {
                if c.placement_of(0).contains(to) {
                    shard0_req = Some(reqs[0].clone());
                    break;
                }
            }
        }
        let (req_id, cmd) = shard0_req.expect("some request routed to shard 0");
        let mut out2 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(210), 0, &mut out2);
        c.handle_message(
            &mut ctx,
            map.server(0, 0),
            ClusterMsg::ClientRedirect {
                req_id,
                hint: Some(spare),
                cmd,
            },
        );
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].0, spare, "hint to the admitted spare is adopted");
        // ...while a hint to the retired host is rejected (rotate instead).
        let mut out3 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(220), 0, &mut out3);
        c.handle_message(
            &mut ctx,
            spare,
            ClusterMsg::ClientRedirect {
                req_id,
                hint: Some(retired),
                cmd: KvCommand::Get {
                    key: bytes::Bytes::from_static(b"k"),
                },
            },
        );
        assert_eq!(out3.len(), 1);
        assert_ne!(out3[0].0, retired, "retired replica is never re-targeted");
        assert!(c.placement_of(0).contains(&out3[0].0));
    }

    #[test]
    fn timeouts_rotate_within_the_group_and_eventually_fail() {
        let mut c = client(2, 3, 200.0).with_request_timeout(Some(Duration::from_millis(100)));
        let mut out = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(100), 0, &mut out);
        c.handle_wake(&mut ctx);
        assert!(c.outstanding() > 0);
        let map = ShardMap::new(2, 3);
        // First expiry wave: retries go out as singles, still in-group.
        let mut out2 = Vec::new();
        let mut ctx = HostCtx::test_ctx(SimTime::from_millis(300), 0, &mut out2);
        c.handle_wake(&mut ctx);
        let retries: Vec<_> = out2
            .iter()
            .filter(|(_, _, m)| matches!(m, ClusterMsg::ClientReq { .. }))
            .collect();
        assert!(!retries.is_empty());
        for (to, _, _) in &retries {
            assert!(map.shard_of_server(*to).is_some());
        }
        // Exhaust every retry budget without a single response.
        for wave in 1..=10u64 {
            let mut o = Vec::new();
            let mut ctx = HostCtx::test_ctx(SimTime::from_millis(300 + wave * 200), 0, &mut o);
            c.expire_timeouts(&mut ctx);
        }
        assert!(c.timed_out() > 0);
        assert_eq!(c.outstanding(), 0);
        let failed: u64 = c.shard_stats().iter().map(|s| s.failed).sum();
        assert_eq!(failed, c.timed_out());
    }
}
