//! Multi-group (sharded) cluster assembly: N independent Raft groups and a
//! shard-aware client inside one simulated [`World`].
//!
//! The single-group [`ClusterSim`](crate::sim::ClusterSim) funnels every
//! write through one leader, so its throughput is capped by one machine's
//! CPU no matter how many hosts the fabric models. [`ShardedClusterSim`]
//! lifts that cap: the keyspace is hash-partitioned by a
//! [`ShardRouter`](dynatune_kv::ShardRouter), each partition is replicated
//! by its own Raft group (own leader, own tuner state, own election
//! timers), and a [`ShardClient`] routes and batches requests per shard.
//! Groups share nothing but the network fabric — a fault in one group's
//! leader leaves the other groups' commit pipelines untouched, which the
//! `shard_leader_failover` scenario measures.
//!
//! Host layout (world ids): replicas of shard `g` occupy the contiguous
//! block `[g·R, (g+1)·R)` per the [`ShardMap`]; the optional client is the
//! last host. Raft node ids stay group-local (`0..R`); [`ServerHost`]
//! translates via its peer base.

use crate::cpu::CostModel;
use crate::server::{CompactionPolicy, ReadCounters, ReadStrategy, ServerHost};
use crate::shard_client::{ShardClient, ShardStats};
use crate::sim::{ClusterHost, WorkloadSpec};
use dynatune_core::{invariant_violated, TuningConfig, TuningSnapshot};
use dynatune_kv::{ShardId, ShardMap, WorkloadGen};
use dynatune_raft::{
    ConfChange, Membership, NodeId, RaftConfig, RaftEvent, Role, TimerQuantization,
};
use dynatune_simnet::{
    CongestionConfig, LinkSchedule, NetParams, Network, Rng, SimTime, Topology, World,
};
use std::time::Duration;

/// Full description of one sharded cluster run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Shard count and replicas per shard (the genesis placement).
    pub map: ShardMap,
    /// Spare outsider servers, one entry per spare naming the shard it can
    /// join. Spare `k` occupies world id `map.n_servers() + k`, speaks its
    /// shard's group-local protocol, and belongs to no quorum until a
    /// configuration change admits it. The topology must cover
    /// `map.n_servers() + spares.len()` hosts.
    pub spares: Vec<ShardId>,
    /// Tuning mode, applied to every group independently.
    pub tuning: TuningConfig,
    /// Server-to-server topology over all `map.n_servers()` hosts.
    pub topology: Topology,
    /// Congestion-burst model applied per egress.
    pub congestion: CongestionConfig,
    /// Election-timer quantization.
    pub quantization: TimerQuantization,
    /// Heartbeats over UDP (paper hybrid transport) or TCP.
    pub udp_heartbeats: bool,
    /// Pre-vote enabled.
    pub pre_vote: bool,
    /// Check-quorum enabled.
    pub check_quorum: bool,
    /// CPU cost model (per server).
    pub cost: CostModel,
    /// Log-compaction policy (threshold + retained tail).
    pub compaction: CompactionPolicy,
    /// How servers serve linearizable reads (log vs lease/ReadIndex).
    pub read_strategy: ReadStrategy,
    /// Followers answer forwarded reads locally (log-free strategies).
    pub follower_reads: bool,
    /// Shard clients spread reads over each shard's replicas.
    pub read_fanout: bool,
    /// Max unacked appends in flight per follower (1 = ping-pong).
    pub pipeline_window: usize,
    /// Group-commit byte cap per leader.
    pub max_batch_bytes: usize,
    /// Group-commit latency cap per leader.
    pub max_batch_delay: Duration,
    /// Hard cap on entries carried by a single `AppendEntries`.
    pub max_entries_per_append: usize,
    /// Cores per server.
    pub cores: usize,
    /// Utilization sampling window.
    pub cpu_window: Duration,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Optional client workload, routed and batched per shard.
    pub workload: Option<WorkloadSpec>,
    /// Network parameters of client↔server links.
    pub client_link: NetParams,
}

/// A running sharded cluster.
pub struct ShardedClusterSim {
    world: World<ClusterHost>,
    map: ShardMap,
    /// Shard each spare host (world id `map.n_servers() + k`) belongs to.
    spares: Vec<ShardId>,
}

impl ShardedClusterSim {
    /// Build the sharded cluster.
    ///
    /// # Panics
    /// Panics when the topology size does not match `map.n_servers()`.
    #[must_use]
    pub fn new(config: &ShardedConfig) -> Self {
        let map = config.map;
        let n_servers = map.n_servers() + config.spares.len();
        assert_eq!(
            config.topology.len(),
            n_servers,
            "topology must cover exactly the servers (mapped replicas + spares)"
        );
        let master = Rng::new(config.seed);
        let n_total = n_servers + usize::from(config.workload.is_some());
        let topology = if config.workload.is_some() {
            config
                .topology
                .extend_with(1, LinkSchedule::constant(config.client_link))
        } else {
            config.topology.clone()
        };
        let net = Network::new(n_total, &master.child(1), config.congestion, |f, t| {
            topology.schedule(f, t)
        });
        let node_seed_root = master.child(2);
        let mut hosts: Vec<ClusterHost> = Vec::with_capacity(n_total);
        for shard in 0..map.shards() {
            for replica in 0..map.replicas() {
                let mut rc = RaftConfig::new(replica, map.replicas(), config.tuning);
                rc.pre_vote = config.pre_vote;
                rc.check_quorum = config.check_quorum;
                rc.quantization = config.quantization;
                rc.udp_heartbeats = config.udp_heartbeats;
                rc.lease_reads = config.read_strategy == ReadStrategy::Lease;
                rc.pipeline_window = config.pipeline_window;
                rc.max_batch_bytes = config.max_batch_bytes;
                rc.max_batch_delay = config.max_batch_delay;
                rc.max_entries_per_append = config.max_entries_per_append;
                // Seed per world id, so every (shard, replica) pair gets an
                // independent stream and runs stay deterministic.
                let mut stream = node_seed_root.child(map.server(shard, replica) as u64);
                rc.seed = stream.next_u64();
                hosts.push(ClusterHost::Server(Box::new(
                    ServerHost::new(rc, config.cost, config.cores, config.cpu_window)
                        .with_peer_base(map.group_base(shard))
                        .with_compaction(config.compaction)
                        .with_reads(config.read_strategy, config.follower_reads),
                )));
            }
        }
        // Spare outsiders: same group-local protocol as their shard (the
        // peer-base translation is pure addition, so a local id past the
        // mapped replicas addresses a host outside the shard's block), no
        // quorum membership until a conf change admits them.
        for (k, &shard) in config.spares.iter().enumerate() {
            let global = map.n_servers() + k;
            let local = global - map.group_base(shard);
            let mut rc =
                RaftConfig::with_peers(local, (0..map.replicas()).collect(), config.tuning);
            rc.pre_vote = config.pre_vote;
            rc.check_quorum = config.check_quorum;
            rc.quantization = config.quantization;
            rc.udp_heartbeats = config.udp_heartbeats;
            rc.lease_reads = config.read_strategy == ReadStrategy::Lease;
            rc.pipeline_window = config.pipeline_window;
            rc.max_batch_bytes = config.max_batch_bytes;
            rc.max_batch_delay = config.max_batch_delay;
            rc.max_entries_per_append = config.max_entries_per_append;
            let mut stream = node_seed_root.child(global as u64);
            rc.seed = stream.next_u64();
            hosts.push(ClusterHost::Server(Box::new(
                ServerHost::new(rc, config.cost, config.cores, config.cpu_window)
                    .with_peer_base(map.group_base(shard))
                    .with_compaction(config.compaction)
                    .with_reads(config.read_strategy, config.follower_reads),
            )));
        }
        if let Some(spec) = &config.workload {
            let wl = WorkloadGen::new(
                spec.steps.clone(),
                spec.mix,
                spec.key_space,
                spec.zipf_theta,
                spec.value_size,
                master.child(3),
                SimTime::ZERO + spec.start_offset,
            );
            hosts.push(ClusterHost::ShardClient(Box::new(
                ShardClient::new(wl, map)
                    .with_request_timeout(spec.request_timeout)
                    .with_read_fanout(config.read_fanout || spec.read_fanout),
            )));
        }
        Self {
            world: World::new(hosts, net),
            map,
            spares: config.spares.clone(),
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The replica placement.
    #[must_use]
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of shards (Raft groups).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// Number of server hosts, spares included (clients excluded).
    #[must_use]
    pub fn n_servers(&self) -> usize {
        self.map.n_servers() + self.spares.len()
    }

    /// World ids of every server belonging to `shard`: the mapped replica
    /// block plus any spares attached to the shard.
    #[must_use]
    pub fn members_of(&self, shard: ShardId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.map.servers_of(shard).collect();
        for (k, &s) in self.spares.iter().enumerate() {
            if s == shard {
                out.push(self.map.n_servers() + k);
            }
        }
        out
    }

    /// Advance the simulation to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.world.run_until(deadline);
    }

    /// Advance by `delta`.
    pub fn run_for(&mut self, delta: Duration) {
        let target = self.world.now() + delta;
        self.world.run_until(target);
    }

    fn server(&self, id: NodeId) -> &ServerHost {
        match self.world.host(id) {
            ClusterHost::Server(s) => s,
            _ => invariant_violated!(
                "host {id} is not a server — shard topology maps groups onto \
                 the leading server slots"
            ),
        }
    }

    /// Run a closure against a server (by global host id).
    pub fn with_server<T>(&self, id: NodeId, f: impl FnOnce(&ServerHost) -> T) -> T {
        f(self.server(id))
    }

    /// The live leader of one shard's group (global host id), if exactly
    /// one exists at the group's highest leading term.
    #[must_use]
    pub fn leader_of(&self, shard: ShardId) -> Option<NodeId> {
        let mut best: Option<(u64, NodeId)> = None;
        for id in self.members_of(shard) {
            if self.world.is_paused(id) {
                continue;
            }
            let node = self.server(id).node();
            if node.role() == Role::Leader {
                let term = node.term();
                if best.is_none_or(|(t, _)| term > t) {
                    best = Some((term, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Leaders of all shards, indexed by shard id.
    #[must_use]
    pub fn leaders(&self) -> Vec<Option<NodeId>> {
        (0..self.map.shards()).map(|s| self.leader_of(s)).collect()
    }

    /// Pause a server (global host id).
    pub fn pause(&mut self, id: NodeId) {
        self.world.pause(id);
    }

    /// Resume a paused server.
    pub fn resume(&mut self, id: NodeId) {
        self.world.resume(id);
    }

    /// Crash a server: volatile state lost, persistent log kept.
    pub fn crash(&mut self, id: NodeId) {
        crate::sim::crash_server(&mut self.world, id);
    }

    /// Recorded events of one shard's group, with *group-local* node ids —
    /// the shape [`extract_failover`](crate::observers::extract_failover)
    /// and the safety checks expect.
    #[must_use]
    pub fn shard_events(&self, shard: ShardId) -> Vec<(SimTime, NodeId, RaftEvent)> {
        let base = self.map.group_base(shard);
        let mut out = Vec::new();
        for id in self.members_of(shard) {
            for &(t, e) in self.server(id).events() {
                out.push((t, id - base, e));
            }
        }
        out.sort_by_key(|&(t, id, _)| (t, id));
        out
    }

    /// Queue a configuration change on `shard`'s current leader (node ids
    /// inside the change are group-local). Returns `false` when the shard
    /// has no live leader; see
    /// [`ClusterSim::propose_conf_change`](crate::sim::ClusterSim::propose_conf_change)
    /// for the re-submission contract.
    pub fn propose_conf_change(&mut self, shard: ShardId, change: ConfChange) -> bool {
        let Some(leader) = self.leader_of(shard) else {
            return false;
        };
        match self.world.host_mut(leader) {
            ClusterHost::Server(s) => s.enqueue_conf_change(change),
            _ => invariant_violated!("leader {leader} is not a server host"),
        }
        self.world.reschedule_wake(leader);
        true
    }

    /// The membership one server currently acts under (global host id).
    #[must_use]
    pub fn membership(&self, id: NodeId) -> Membership {
        self.server(id).node().membership().clone()
    }

    /// Conf changes dropped or rejected across all servers.
    #[must_use]
    pub fn conf_rejections(&self) -> u64 {
        (0..self.n_servers())
            .map(|id| self.server(id).conf_rejections())
            .sum()
    }

    /// Repoint the shard client's placement row for `shard`: replica `from`
    /// (world id) is replaced by `to`. Called by the rebalancer after the
    /// final configuration commits, so client traffic follows the data.
    /// No-op without a workload client.
    pub fn repoint_shard(&mut self, shard: ShardId, from: NodeId, to: NodeId) {
        let last = self.world.len() - 1;
        if let ClusterHost::ShardClient(c) = self.world.host_mut(last) {
            c.repoint(shard, from, to);
        }
    }

    /// Tuning snapshot of one server (global host id).
    #[must_use]
    pub fn tuning_snapshot(&self, id: NodeId) -> TuningSnapshot {
        self.server(id).node().tuning_snapshot()
    }

    /// Take (and reset) one shard's windowed latency histogram (µs) from
    /// the workload client (`None` without one). Take once to discard
    /// warm-up, again after the window of interest.
    pub fn take_latency_window(&mut self, shard: ShardId) -> Option<dynatune_stats::Histogram> {
        let last = self.world.len() - 1;
        match self.world.host_mut(last) {
            ClusterHost::ShardClient(c) => Some(c.take_latency_window(shard)),
            _ => None,
        }
    }

    /// Per-shard client counters (`None` without a workload).
    #[must_use]
    pub fn shard_stats(&self) -> Option<Vec<ShardStats>> {
        match self.world.host(self.world.len() - 1) {
            ClusterHost::ShardClient(c) => Some(c.shard_stats().to_vec()),
            _ => None,
        }
    }

    /// Completed requests per shard (`None` without a workload).
    #[must_use]
    pub fn completed_per_shard(&self) -> Option<Vec<u64>> {
        match self.world.host(self.world.len() - 1) {
            ClusterHost::ShardClient(c) => Some(c.completed_per_shard()),
            _ => None,
        }
    }

    /// Total completed requests across shards (0 without a workload).
    #[must_use]
    pub fn total_completed(&self) -> u64 {
        match self.world.host(self.world.len() - 1) {
            ClusterHost::ShardClient(c) => c.total_completed(),
            _ => 0,
        }
    }

    /// Network counters (sent/delivered/dropped).
    #[must_use]
    pub fn net_counters(&self) -> dynatune_simnet::NetCounters {
        self.world.counters()
    }

    /// Largest live log across all servers (leader-memory bound).
    #[must_use]
    pub fn max_log_len(&self) -> usize {
        (0..self.n_servers())
            .map(|id| self.server(id).log_len())
            .max()
            .unwrap_or(0)
    }

    /// Total `InstallSnapshot` transfers started across all servers.
    #[must_use]
    pub fn total_snapshots_sent(&self) -> u64 {
        (0..self.n_servers())
            .map(|id| self.server(id).snapshots_sent())
            .sum()
    }

    /// Served-read counters aggregated over all servers (by path).
    #[must_use]
    pub fn read_counters(&self) -> ReadCounters {
        (0..self.n_servers())
            .map(|id| self.server(id).reads_served())
            .fold(ReadCounters::default(), ReadCounters::merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observers::election_safety_violations;
    use crate::scenario::builder::ScenarioBuilder;

    fn sharded(shards: usize, seed: u64, rps: f64) -> ShardedClusterSim {
        let mut builder = ScenarioBuilder::cluster(3)
            .tuning(TuningConfig::raft_default())
            .shards(shards)
            .seed(seed);
        if rps > 0.0 {
            builder = builder.workload(
                WorkloadSpec::steady(rps, Duration::from_secs(20))
                    .starting_at(Duration::from_secs(5)),
            );
        }
        builder.build_sharded_sim()
    }

    #[test]
    fn every_shard_elects_its_own_leader() {
        let mut sim = sharded(4, 1, 0.0);
        sim.run_until(SimTime::from_secs(10));
        let leaders = sim.leaders();
        for (shard, leader) in leaders.iter().enumerate() {
            let leader = leader.unwrap_or_else(|| panic!("shard {shard} must elect"));
            assert!(sim.map().servers_of(shard).contains(&leader));
        }
        // Leaders are distinct hosts and each group's log is safe.
        for shard in 0..4 {
            assert_eq!(election_safety_violations(&sim.shard_events(shard)), 0);
        }
    }

    #[test]
    fn workload_spreads_across_all_shards() {
        let mut sim = sharded(4, 2, 800.0);
        sim.run_until(SimTime::from_secs(15));
        let stats = sim.shard_stats().expect("client attached");
        assert_eq!(stats.len(), 4);
        for (shard, s) in stats.iter().enumerate() {
            assert!(s.sent > 500, "shard {shard} sent {}", s.sent);
            assert!(s.completed > 300, "shard {shard} completed {}", s.completed);
            assert!(s.batches > 0, "shard {shard} never batched");
            assert!(
                s.batches < s.sent,
                "shard {shard}: batching must coalesce ({} batches / {} sent)",
                s.batches,
                s.sent
            );
        }
    }

    #[test]
    fn crashing_one_leader_leaves_other_shards_serving() {
        let mut sim = sharded(2, 3, 600.0);
        sim.run_until(SimTime::from_secs(10));
        let victim = sim.leader_of(0).expect("shard 0 leader");
        let before = sim.completed_per_shard().unwrap();
        sim.crash(victim);
        sim.run_for(Duration::from_secs(5));
        let after = sim.completed_per_shard().unwrap();
        // Shard 1 kept committing throughout the shard-0 outage.
        assert!(
            after[1] - before[1] > 800,
            "shard 1 progressed only {} ops during shard 0's outage",
            after[1] - before[1]
        );
        // Shard 0 recovers: a leader re-emerges and commits resume.
        sim.run_for(Duration::from_secs(5));
        assert!(sim.leader_of(0).is_some(), "shard 0 re-elects");
        let healed = sim.completed_per_shard().unwrap();
        assert!(healed[0] > after[0], "shard 0 resumes committing");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = sharded(3, seed, 300.0);
            sim.run_until(SimTime::from_secs(12));
            (sim.leaders(), sim.completed_per_shard(), sim.net_counters())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).2, run(8).2);
    }
}
