//! Cluster assembly and simulation driver.

use crate::client::{ClientHost, OpRecord, StepRecord};
use crate::cpu::CostModel;
use crate::msg::ClusterMsg;
use crate::server::{CompactionPolicy, ReadCounters, ReadStrategy, ServerHost};
use dynatune_core::{invariant_violated, TuningConfig, TuningSnapshot};
use dynatune_kv::{OpMix, RateStep, WorkloadGen};
use dynatune_raft::{
    ConfChange, Membership, NodeId, RaftConfig, RaftEvent, Role, TimerQuantization,
};
use dynatune_simnet::{
    CongestionConfig, Host, HostCtx, LinkSchedule, NetParams, Network, Rng, SimTime, Topology,
    World,
};
use std::time::Duration;

/// Client workload specification.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Offered-load schedule.
    pub steps: Vec<RateStep>,
    /// Operation mix.
    pub mix: OpMix,
    /// Number of distinct keys.
    pub key_space: usize,
    /// Zipf skew (0 = uniform).
    pub zipf_theta: f64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Delay before the first arrival (lets the cluster elect a leader).
    pub start_offset: Duration,
    /// Client-side response timeout (`None` disables retries-on-silence).
    pub request_timeout: Option<Duration>,
    /// Spread reads round-robin over all servers (follower-read offload);
    /// writes still chase the leader.
    pub read_fanout: bool,
    /// Record completed `Get`/`Put` operations for linearizability checks
    /// (see [`ClusterSim::client_trace`]).
    pub record_trace: bool,
}

impl WorkloadSpec {
    /// A steady-rate workload.
    #[must_use]
    pub fn steady(rps: f64, hold: Duration) -> Self {
        Self {
            steps: vec![RateStep { rps, hold }],
            mix: OpMix::write_heavy(),
            key_space: 10_000,
            zipf_theta: 0.99,
            value_size: 128,
            start_offset: Duration::ZERO,
            request_timeout: Some(Duration::from_secs(1)),
            read_fanout: false,
            record_trace: false,
        }
    }

    /// Builder: delay the workload start.
    #[must_use]
    pub fn starting_at(mut self, offset: Duration) -> Self {
        self.start_offset = offset;
        self
    }

    /// Builder: set the operation mix.
    #[must_use]
    pub fn mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }

    /// Builder: spread reads round-robin over all servers.
    #[must_use]
    pub fn fanout_reads(mut self) -> Self {
        self.read_fanout = true;
        self
    }

    /// Builder: record the client's operation trace.
    #[must_use]
    pub fn recording(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Builder: override (or disable) the response timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: Option<Duration>) -> Self {
        self.request_timeout = timeout;
        self
    }
}

/// Full description of one simulated cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of genesis Raft voters.
    pub n: usize,
    /// Extra outsider servers beyond the genesis voters. Spares share the
    /// fabric from t=0 but belong to no quorum and never campaign; they
    /// join live through replicated configuration changes
    /// ([`ClusterSim::propose_conf_change`]). The topology must cover
    /// `n + spare_servers` hosts.
    pub spare_servers: usize,
    /// Tuning mode + parameters (selects Raft / Raft-Low / Fix-K / Dynatune).
    pub tuning: TuningConfig,
    /// Server-to-server network topology (must have exactly `n` nodes).
    pub topology: Topology,
    /// Congestion-burst model applied per egress.
    pub congestion: CongestionConfig,
    /// Election-timer quantization.
    pub quantization: TimerQuantization,
    /// Heartbeats over UDP (the paper's hybrid transport) or TCP (ablation).
    pub udp_heartbeats: bool,
    /// Pre-vote enabled (etcd default: yes).
    pub pre_vote: bool,
    /// Check-quorum enabled (etcd default: yes).
    pub check_quorum: bool,
    /// §IV-E extension 1: suppress heartbeats while replicating.
    pub suppress_heartbeats: bool,
    /// §IV-E extension 2: single consolidated heartbeat timer.
    pub consolidated_timer: bool,
    /// CPU cost model.
    pub cost: CostModel,
    /// Log-compaction policy (threshold + retained tail).
    pub compaction: CompactionPolicy,
    /// How servers serve linearizable reads (log vs lease/ReadIndex).
    pub read_strategy: ReadStrategy,
    /// Followers answer forwarded reads locally (log-free strategies).
    pub follower_reads: bool,
    /// Max unacked appends in flight per follower (1 = ping-pong).
    pub pipeline_window: usize,
    /// Group-commit byte cap: buffered proposals flush once this many
    /// payload bytes accumulate.
    pub max_batch_bytes: usize,
    /// Group-commit latency cap: buffered proposals flush at most this
    /// long after the first one arrives.
    pub max_batch_delay: Duration,
    /// Hard cap on entries carried by a single `AppendEntries`.
    pub max_entries_per_append: usize,
    /// Cores per server (paper: 4 for Figs. 4–6, 2 for Fig. 7).
    pub cores: usize,
    /// Utilization sampling window (paper: 5 s).
    pub cpu_window: Duration,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Optional client workload (adds one client node to the fabric).
    pub workload: Option<WorkloadSpec>,
    /// Network parameters of client↔server links.
    pub client_link: NetParams,
}

impl ClusterConfig {
    /// A stable-network cluster matching the paper's §IV-A setup: `n`
    /// servers, uniform RTT, no loss, 4 cores each.
    #[must_use]
    pub fn stable(n: usize, tuning: TuningConfig, rtt: Duration, seed: u64) -> Self {
        // "Without intentionally introducing jitter" (§IV-B) — still a real
        // kernel/bridge, so a small residual jitter remains.
        let params = NetParams::clean(rtt).with_jitter(0.02);
        Self {
            n,
            spare_servers: 0,
            tuning,
            topology: Topology::uniform_constant(n, params),
            congestion: CongestionConfig::disabled(),
            quantization: TimerQuantization::Tick,
            udp_heartbeats: true,
            pre_vote: true,
            check_quorum: true,
            suppress_heartbeats: false,
            consolidated_timer: false,
            cost: CostModel::default(),
            compaction: CompactionPolicy::default(),
            read_strategy: ReadStrategy::default(),
            follower_reads: true,
            // Replication defaults mirror `RaftConfig::new` (etcd-style
            // pipelining on, generous batches).
            pipeline_window: 4,
            max_batch_bytes: 64 * 1024,
            max_batch_delay: Duration::from_millis(1),
            max_entries_per_append: 8192,
            cores: 4,
            cpu_window: Duration::from_secs(5),
            seed,
            workload: None,
            client_link: NetParams::lan(),
        }
    }

    /// Attach a client workload.
    #[must_use]
    pub fn with_workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }
}

/// A node in the simulated world: server or benchmark client.
pub enum ClusterHost {
    /// A Raft/KV server.
    Server(Box<ServerHost>),
    /// An open-loop client.
    Client(Box<ClientHost>),
    /// A shard-aware open-loop client (multi-group worlds).
    ShardClient(Box<crate::shard_client::ShardClient>),
}

impl Host for ClusterHost {
    type Msg = ClusterMsg;

    fn on_message(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>, from: usize, msg: ClusterMsg) {
        match self {
            ClusterHost::Server(s) => s.handle_message(ctx, from, msg),
            ClusterHost::Client(c) => c.handle_message(ctx, from, msg),
            ClusterHost::ShardClient(c) => c.handle_message(ctx, from, msg),
        }
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_, ClusterMsg>) {
        match self {
            ClusterHost::Server(s) => s.handle_wake(ctx),
            ClusterHost::Client(c) => c.handle_wake(ctx),
            ClusterHost::ShardClient(c) => c.handle_wake(ctx),
        }
    }

    fn next_wake(&self) -> Option<SimTime> {
        match self {
            ClusterHost::Server(s) => s.wake_deadline(),
            ClusterHost::Client(c) => c.wake_deadline(),
            ClusterHost::ShardClient(c) => c.wake_deadline(),
        }
    }
}

/// Crash-restart a server host inside a cluster world: buffered traffic
/// and volatile state are dropped (in that order — the pause buffer must
/// not replay into the restarted node), the persistent log survives, and
/// the wake is rescheduled for the fresh election timer. Shared by the
/// single-group and sharded sims so crash semantics cannot diverge.
pub(crate) fn crash_server(world: &mut World<ClusterHost>, id: NodeId) {
    world.clear_pause_buffer(id);
    let now = world.now();
    match world.host_mut(id) {
        ClusterHost::Server(s) => s.crash_restart(now),
        _ => invariant_violated!(
            "host {id} is not a server — fault schedules only target server ids"
        ),
    }
    world.reschedule_wake(id);
}

/// A running simulated cluster.
pub struct ClusterSim {
    world: World<ClusterHost>,
    n_servers: usize,
}

impl ClusterSim {
    /// Build the cluster.
    ///
    /// # Panics
    /// Panics when the topology size does not match `config.n`.
    #[must_use]
    pub fn new(config: &ClusterConfig) -> Self {
        let n_servers = config.n + config.spare_servers;
        assert_eq!(
            config.topology.len(),
            n_servers,
            "topology must cover exactly the servers (voters + spares)"
        );
        let master = Rng::new(config.seed);
        let n_total = n_servers + usize::from(config.workload.is_some());
        // Extend the topology with the client node if needed.
        let topology = if config.workload.is_some() {
            config
                .topology
                .extend_with(1, LinkSchedule::constant(config.client_link))
        } else {
            config.topology.clone()
        };
        let net = Network::new(n_total, &master.child(1), config.congestion, |f, t| {
            topology.schedule(f, t)
        });
        let node_seed_root = master.child(2);
        let mut hosts: Vec<ClusterHost> = (0..n_servers)
            .map(|id| {
                // Voters get the genesis membership; ids beyond it build
                // outsider spares that idle until a conf change admits them.
                let mut rc = RaftConfig::with_peers(id, (0..config.n).collect(), config.tuning);
                rc.pre_vote = config.pre_vote;
                rc.check_quorum = config.check_quorum;
                rc.quantization = config.quantization;
                rc.udp_heartbeats = config.udp_heartbeats;
                rc.suppress_heartbeats_when_replicating = config.suppress_heartbeats;
                rc.consolidated_heartbeat_timer = config.consolidated_timer;
                // The lease fast path only when the strategy asks for it;
                // under ReadIndex every read pays a confirmation round.
                rc.lease_reads = config.read_strategy == ReadStrategy::Lease;
                rc.pipeline_window = config.pipeline_window;
                rc.max_batch_bytes = config.max_batch_bytes;
                rc.max_batch_delay = config.max_batch_delay;
                rc.max_entries_per_append = config.max_entries_per_append;
                let mut stream = node_seed_root.child(id as u64);
                rc.seed = stream.next_u64();
                ClusterHost::Server(Box::new(
                    ServerHost::new(rc, config.cost, config.cores, config.cpu_window)
                        .with_compaction(config.compaction)
                        .with_reads(config.read_strategy, config.follower_reads),
                ))
            })
            .collect();
        if let Some(spec) = &config.workload {
            let wl = WorkloadGen::new(
                spec.steps.clone(),
                spec.mix,
                spec.key_space,
                spec.zipf_theta,
                spec.value_size,
                master.child(3),
                SimTime::ZERO + spec.start_offset,
            );
            hosts.push(ClusterHost::Client(Box::new(
                ClientHost::new(wl, n_servers, SimTime::ZERO + spec.start_offset)
                    .with_request_timeout(spec.request_timeout)
                    .with_read_fanout(spec.read_fanout)
                    .with_trace(spec.record_trace),
            )));
        }
        Self {
            world: World::new(hosts, net),
            n_servers,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Number of servers (clients excluded).
    #[must_use]
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Advance the simulation to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.world.run_until(deadline);
    }

    /// Advance by `delta`.
    pub fn run_for(&mut self, delta: Duration) {
        let target = self.world.now() + delta;
        self.world.run_until(target);
    }

    fn server(&self, id: NodeId) -> &ServerHost {
        match self.world.host(id) {
            ClusterHost::Server(s) => s,
            _ => invariant_violated!(
                "node {id} is a client — server ids are the first n_servers slots"
            ),
        }
    }

    /// Run a closure against a server (observers).
    pub fn with_server<T>(&self, id: NodeId, f: impl FnOnce(&ServerHost) -> T) -> T {
        f(self.server(id))
    }

    /// Run a closure against the client host, if one exists.
    #[must_use]
    pub fn client_steps(&self) -> Option<Vec<StepRecord>> {
        match self.world.host(self.world.len() - 1) {
            ClusterHost::Client(c) => Some(c.steps().to_vec()),
            _ => None,
        }
    }

    /// The live leader (not paused), if exactly one exists at the highest
    /// leading term.
    #[must_use]
    pub fn leader(&self) -> Option<NodeId> {
        let mut best: Option<(u64, NodeId)> = None;
        for id in 0..self.n_servers {
            if self.world.is_paused(id) {
                continue;
            }
            let node = self.server(id).node();
            if node.role() == Role::Leader {
                let term = node.term();
                if best.is_none_or(|(t, _)| term > t) {
                    best = Some((term, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Pause a server (the paper's container-sleep failure).
    pub fn pause(&mut self, id: NodeId) {
        self.world.pause(id);
    }

    /// Resume a paused server.
    pub fn resume(&mut self, id: NodeId) {
        self.world.resume(id);
    }

    /// Whether a server is paused.
    #[must_use]
    pub fn is_paused(&self, id: NodeId) -> bool {
        self.world.is_paused(id)
    }

    /// Crash a server: drops buffered traffic and volatile state; the node
    /// rejoins as follower with its persistent log.
    pub fn crash(&mut self, id: NodeId) {
        crash_server(&mut self.world, id);
    }

    /// Queue a configuration change on the current leader. Returns `false`
    /// when no live leader exists (retry after the next election) — the
    /// queued change may still be dropped if leadership moves before the
    /// leader's next wake, so orchestrators re-submit until the membership
    /// they observe reflects the change.
    pub fn propose_conf_change(&mut self, change: ConfChange) -> bool {
        let Some(leader) = self.leader() else {
            return false;
        };
        match self.world.host_mut(leader) {
            ClusterHost::Server(s) => s.enqueue_conf_change(change),
            _ => invariant_violated!("leader {leader} is not a server host"),
        }
        self.world.reschedule_wake(leader);
        true
    }

    /// The membership one server currently acts under (its latest appended
    /// configuration — Raft configs take effect at append time).
    #[must_use]
    pub fn membership(&self, id: NodeId) -> Membership {
        self.server(id).node().membership().clone()
    }

    /// Conf changes dropped or rejected across all servers (stale-leader
    /// submissions the orchestrator had to re-issue).
    #[must_use]
    pub fn conf_rejections(&self) -> u64 {
        (0..self.n_servers)
            .map(|id| self.server(id).conf_rejections())
            .sum()
    }

    /// All recorded events, merged and sorted by time.
    #[must_use]
    pub fn events(&self) -> Vec<(SimTime, NodeId, RaftEvent)> {
        let mut out = Vec::new();
        for id in 0..self.n_servers {
            for &(t, e) in self.server(id).events() {
                out.push((t, id, e));
            }
        }
        out.sort_by_key(|&(t, id, _)| (t, id));
        out
    }

    /// Randomized timeout of each live server (paused servers excluded →
    /// `None`), for the paper's Fig. 6 third-smallest metric.
    #[must_use]
    pub fn randomized_timeouts(&self) -> Vec<Option<Duration>> {
        (0..self.n_servers)
            .map(|id| {
                (!self.world.is_paused(id)).then(|| self.server(id).node().randomized_timeout())
            })
            .collect()
    }

    /// Tuning snapshot of one server.
    #[must_use]
    pub fn tuning_snapshot(&self, id: NodeId) -> TuningSnapshot {
        self.server(id).node().tuning_snapshot()
    }

    /// Mean heartbeat interval the leader currently applies across its
    /// followers (Fig. 7a metric). `None` when there is no leader.
    #[must_use]
    pub fn leader_mean_heartbeat_interval(&self) -> Option<Duration> {
        let leader = self.leader()?;
        let node = self.server(leader).node();
        let mut total = Duration::ZERO;
        let mut count = 0u32;
        for id in 0..self.n_servers {
            if id != leader {
                if let Some(h) = node.pacer_interval(id) {
                    total += h;
                    count += 1;
                }
            }
        }
        (count > 0).then(|| total / count)
    }

    /// Current scheduled RTT of the 0→1 link (the uniform-topology probe
    /// used for Fig. 6's RTT trace).
    #[must_use]
    pub fn probe_rtt(&self) -> Duration {
        self.world.network().params_at(0, 1, self.world.now()).rtt
    }

    /// Current scheduled loss rate of the 0→1 link (Fig. 7's loss trace).
    #[must_use]
    pub fn probe_loss(&self) -> f64 {
        self.world.network().params_at(0, 1, self.world.now()).loss
    }

    /// Network counters (sent/delivered/dropped).
    #[must_use]
    pub fn net_counters(&self) -> dynatune_simnet::NetCounters {
        self.world.counters()
    }

    /// Largest live log across servers — the leader-memory-bound
    /// observable the compaction scenarios assert on.
    #[must_use]
    pub fn max_log_len(&self) -> usize {
        (0..self.n_servers)
            .map(|id| self.server(id).log_len())
            .max()
            .unwrap_or(0)
    }

    /// Total `InstallSnapshot` transfers started across servers.
    #[must_use]
    pub fn total_snapshots_sent(&self) -> u64 {
        (0..self.n_servers)
            .map(|id| self.server(id).snapshots_sent())
            .sum()
    }

    /// Served-read counters aggregated over all servers (by path).
    #[must_use]
    pub fn read_counters(&self) -> ReadCounters {
        (0..self.n_servers)
            .map(|id| self.server(id).reads_served())
            .fold(ReadCounters::default(), ReadCounters::merged)
    }

    /// The client's recorded operation trace (`None` without a client;
    /// empty unless the workload set `record_trace`).
    #[must_use]
    pub fn client_trace(&self) -> Option<Vec<OpRecord>> {
        match self.world.host(self.world.len() - 1) {
            ClusterHost::Client(c) => Some(c.trace().to_vec()),
            _ => None,
        }
    }

    /// Partition the network: `group` forms one side, the rest the other.
    pub fn partition(&mut self, group: &[NodeId]) {
        self.world.partition(group);
    }

    /// Partition only the *servers*: `group` vs the remaining servers,
    /// while client hosts keep reaching both sides. This models a
    /// replication-plane cut where clients still see every server — the
    /// dangerous window for lease reads (an isolated leader keeps serving
    /// clients while a new leader is elected behind its back).
    pub fn partition_servers(&mut self, group: &[NodeId]) {
        self.world.partition(group);
        for id in self.n_servers..self.world.len() {
            self.world.exempt_from_partition(id);
        }
    }

    /// Heal all partitions.
    pub fn heal_partition(&mut self) {
        self.world.heal_partition();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observers::election_safety_violations;

    fn stable_cluster(tuning: TuningConfig, seed: u64) -> ClusterSim {
        let cfg = ClusterConfig::stable(5, tuning, Duration::from_millis(100), seed);
        ClusterSim::new(&cfg)
    }

    #[test]
    fn cluster_elects_a_leader() {
        let mut sim = stable_cluster(TuningConfig::raft_default(), 1);
        sim.run_until(SimTime::from_secs(10));
        let leader = sim.leader().expect("a leader must emerge");
        assert!(leader < 5);
        // Exactly one BecameLeader event chain; all servers agree.
        for id in 0..5 {
            let node_leader = sim.with_server(id, |s| s.node().leader_id());
            assert_eq!(node_leader, Some(leader), "server {id} agrees on leader");
        }
    }

    #[test]
    fn dynatune_cluster_warms_up_tuners() {
        let mut sim = stable_cluster(TuningConfig::dynatune(), 2);
        sim.run_until(SimTime::from_secs(30));
        let leader = sim.leader().expect("leader");
        for id in 0..5 {
            if id == leader {
                continue;
            }
            let snap = sim.tuning_snapshot(id);
            assert!(snap.warmed, "follower {id} tuner warmed: {snap:?}");
            // RTT 100ms, tiny jitter: Et close to 100ms, far below default.
            let et_ms = snap.election_timeout.as_secs_f64() * 1e3;
            assert!((90.0..200.0).contains(&et_ms), "follower {id} Et {et_ms}ms");
        }
        // The leader paces followers at the tuned interval (K=1 ⇒ h=Et).
        let h = sim.leader_mean_heartbeat_interval().unwrap();
        assert!(h >= Duration::from_millis(90), "tuned h = {h:?}");
    }

    #[test]
    fn static_raft_keeps_default_parameters() {
        let mut sim = stable_cluster(TuningConfig::raft_default(), 3);
        sim.run_until(SimTime::from_secs(20));
        for id in 0..5 {
            let snap = sim.tuning_snapshot(id);
            assert!(!snap.warmed);
            assert_eq!(snap.election_timeout, Duration::from_millis(1000));
        }
        let h = sim.leader_mean_heartbeat_interval().unwrap();
        assert_eq!(h, Duration::from_millis(100));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = stable_cluster(TuningConfig::dynatune(), seed);
            sim.run_until(SimTime::from_secs(15));
            (sim.leader(), sim.events().len(), sim.net_counters())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn pause_and_failover() {
        let mut sim = stable_cluster(TuningConfig::raft_default(), 4);
        sim.run_until(SimTime::from_secs(10));
        let old_leader = sim.leader().expect("initial leader");
        sim.pause(old_leader);
        sim.run_for(Duration::from_secs(10));
        let new_leader = sim.leader().expect("failover leader");
        assert_ne!(new_leader, old_leader);
        // Resume: the old leader rejoins as follower.
        sim.resume(old_leader);
        sim.run_for(Duration::from_secs(5));
        let role = sim.with_server(old_leader, |s| s.node().role());
        assert_eq!(role, Role::Follower);
    }

    #[test]
    fn spares_join_live_via_joint_consensus() {
        // 3 genesis voters + 2 spare outsiders; grow to 5 voters online.
        let params = NetParams::clean(Duration::from_millis(50)).with_jitter(0.02);
        let mut cfg = ClusterConfig::stable(
            3,
            TuningConfig::raft_default(),
            Duration::from_millis(50),
            9,
        );
        cfg.spare_servers = 2;
        cfg.topology = Topology::uniform_constant(5, params);
        let mut sim = ClusterSim::new(&cfg);
        sim.run_until(SimTime::from_secs(10));
        let leader = sim.leader().expect("genesis voters elect");
        assert!(leader < 3, "spares cannot lead before joining");
        for id in 3..5 {
            assert_eq!(sim.with_server(id, |s| s.node().role()), Role::Follower);
            assert!(!sim.membership(leader).contains(id));
        }
        // Learners first (one conf change may be uncommitted at a time)...
        assert!(sim.propose_conf_change(ConfChange::AddLearner(3)));
        sim.run_for(Duration::from_secs(3));
        assert!(sim.propose_conf_change(ConfChange::AddLearner(4)));
        sim.run_for(Duration::from_secs(3));
        let leader = sim.leader().expect("leader");
        let m = sim.membership(leader);
        assert!(
            m.is_learner(3) && m.is_learner(4),
            "learners admitted: {m:?}"
        );
        // ...then promote both through one joint change.
        assert!(sim.propose_conf_change(ConfChange::Begin {
            add: vec![3, 4],
            remove: vec![],
        }));
        sim.run_for(Duration::from_secs(3));
        assert!(sim.propose_conf_change(ConfChange::Finalize));
        sim.run_for(Duration::from_secs(5));
        for id in 0..5 {
            let m = sim.membership(id);
            assert!(!m.is_joint(), "server {id} still joint");
            assert_eq!(
                m.voting_members().len(),
                5,
                "server {id} sees the 5-voter config"
            );
        }
        assert_eq!(sim.conf_rejections(), 0, "stable run needs no re-issues");
        // The grown cluster survives two failures — impossible at n=3.
        sim.crash(0);
        sim.pause(1);
        sim.run_for(Duration::from_secs(15));
        assert!(sim.leader().is_some(), "5-voter cluster rides out 2 faults");
        assert_eq!(election_safety_violations(&sim.events()), 0);
    }

    #[test]
    fn workload_flows_end_to_end() {
        let cfg = ClusterConfig::stable(
            3,
            TuningConfig::raft_default(),
            Duration::from_millis(10),
            5,
        )
        .with_workload(WorkloadSpec::steady(200.0, Duration::from_secs(5)));
        let mut sim = ClusterSim::new(&cfg);
        // Schedule starts at t=0; leader takes ~1-2s to emerge, so early
        // requests are redirected/failed; later ones complete.
        sim.run_until(SimTime::from_secs(10));
        let steps = sim.client_steps().expect("client attached");
        assert_eq!(steps.len(), 1);
        let s = &steps[0];
        assert!(s.sent > 800, "sent {}", s.sent);
        assert!(s.completed > 500, "completed {}", s.completed);
        // Latency at 10ms RTT and light load: a few tens of ms tops.
        assert!(
            s.latency_ms.mean() < 100.0,
            "latency {}",
            s.latency_ms.mean()
        );
    }
}
