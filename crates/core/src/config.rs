//! Tuning configuration and operating modes.

use std::time::Duration;

/// Which tuning policy a server runs.
///
/// The paper's evaluation compares four systems; all four are this enum plus
/// a [`TuningConfig`]:
///
/// | Paper name | Mode | Defaults |
/// |------------|------|----------|
/// | Raft       | `Static` | Et = 1000 ms, h = 100 ms |
/// | Raft-Low   | `Static` | Et = 100 ms, h = 10 ms |
/// | Fix-K      | `FixK(10)` | Et tuned from RTT, h = Et/10 |
/// | Dynatune   | `Dynatune` | Et = µ+s·σ, h = Et/K(p, x) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningMode {
    /// No measurement, no tuning: the configured defaults are used forever.
    Static,
    /// Tune the election timeout from RTT, but keep `K = Et/h` fixed
    /// (heartbeat-interval tuning disabled). The paper's Fix-K baseline.
    FixK(u32),
    /// Full Dynatune: tune Et from RTT and h from the packet loss rate.
    Dynatune,
}

impl TuningMode {
    /// Whether this mode performs any measurement/tuning at all.
    #[must_use]
    pub fn tunes(&self) -> bool {
        !matches!(self, TuningMode::Static)
    }
}

/// Runtime parameters of the tuner (the paper's runtime arguments, §III-E,
/// with the experimental defaults of §IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningConfig {
    /// Operating mode.
    pub mode: TuningMode,
    /// Safety factor `s` in `Et = µ_RTT + s·σ_RTT` (paper default: 2).
    pub safety_factor: f64,
    /// Target heartbeat arrival probability `x` (paper default: 0.999).
    pub arrival_probability: f64,
    /// Minimum samples before tuning starts (`minListSize`, default 10).
    pub min_list_size: usize,
    /// Maximum samples retained (`maxListSize`, default 1000).
    pub max_list_size: usize,
    /// Conservative default election timeout (paper/etcd default: 1000 ms).
    /// Also the fallback applied after any election-timer expiry.
    pub default_election_timeout: Duration,
    /// Conservative default heartbeat interval (paper/etcd default: 100 ms).
    pub default_heartbeat_interval: Duration,
    /// Hard floor for a tuned election timeout.
    pub election_timeout_floor: Duration,
    /// Hard ceiling for a tuned election timeout.
    pub election_timeout_ceiling: Duration,
    /// Hard floor for a tuned heartbeat interval.
    pub heartbeat_floor: Duration,
    /// Upper clamp on `K` (guards `log_p(1-x)` blow-up as p → 1).
    pub k_max: u32,
}

impl TuningConfig {
    /// The paper's baseline "Raft": etcd defaults, no tuning.
    #[must_use]
    pub fn raft_default() -> Self {
        Self {
            mode: TuningMode::Static,
            safety_factor: 2.0,
            arrival_probability: 0.999,
            min_list_size: 10,
            max_list_size: 1000,
            default_election_timeout: Duration::from_millis(1000),
            default_heartbeat_interval: Duration::from_millis(100),
            election_timeout_floor: Duration::from_millis(10),
            election_timeout_ceiling: Duration::from_secs(60),
            heartbeat_floor: Duration::from_millis(1),
            k_max: 100,
        }
    }

    /// The paper's "Raft-Low": all election parameters at 1/10 of default.
    #[must_use]
    pub fn raft_low() -> Self {
        Self {
            default_election_timeout: Duration::from_millis(100),
            default_heartbeat_interval: Duration::from_millis(10),
            ..Self::raft_default()
        }
    }

    /// Full Dynatune with the paper's experimental settings (§IV-A):
    /// s = 2, x = 0.999, minListSize = 10, maxListSize = 1000, falling back
    /// to the Raft defaults.
    #[must_use]
    pub fn dynatune() -> Self {
        Self {
            mode: TuningMode::Dynatune,
            ..Self::raft_default()
        }
    }

    /// The paper's "Fix-K" baseline: Et tuned, `K` pinned (default K = 10,
    /// matching Raft's Et/h ratio).
    #[must_use]
    pub fn fix_k(k: u32) -> Self {
        Self {
            mode: TuningMode::FixK(k),
            ..Self::raft_default()
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!(self.safety_factor >= 0.0, "negative safety factor");
        assert!(
            (0.0..1.0).contains(&self.arrival_probability),
            "arrival probability must be in [0, 1): {}",
            self.arrival_probability
        );
        assert!(self.min_list_size >= 2, "min_list_size must be >= 2");
        assert!(
            self.max_list_size >= self.min_list_size,
            "max_list_size below min_list_size"
        );
        assert!(self.k_max >= 1, "k_max must be >= 1");
        assert!(
            self.election_timeout_floor <= self.election_timeout_ceiling,
            "election timeout floor above ceiling"
        );
        assert!(
            self.default_heartbeat_interval > Duration::ZERO,
            "heartbeat interval must be positive"
        );
        assert!(
            self.default_election_timeout > Duration::ZERO,
            "election timeout must be positive"
        );
        if let TuningMode::FixK(k) = self.mode {
            assert!(k >= 1, "Fix-K requires K >= 1");
        }
    }
}

impl Default for TuningConfig {
    fn default() -> Self {
        Self::dynatune()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_section_iv_a() {
        let raft = TuningConfig::raft_default();
        assert_eq!(raft.mode, TuningMode::Static);
        assert_eq!(raft.default_election_timeout, Duration::from_millis(1000));
        assert_eq!(raft.default_heartbeat_interval, Duration::from_millis(100));

        let low = TuningConfig::raft_low();
        assert_eq!(low.default_election_timeout, Duration::from_millis(100));
        assert_eq!(low.default_heartbeat_interval, Duration::from_millis(10));

        let dt = TuningConfig::dynatune();
        assert_eq!(dt.mode, TuningMode::Dynatune);
        assert_eq!(dt.safety_factor, 2.0);
        assert_eq!(dt.arrival_probability, 0.999);
        assert_eq!(dt.min_list_size, 10);
        assert_eq!(dt.max_list_size, 1000);
        // Dynatune falls back to the same defaults as Raft (§IV-A).
        assert_eq!(dt.default_election_timeout, raft.default_election_timeout);

        let fk = TuningConfig::fix_k(10);
        assert_eq!(fk.mode, TuningMode::FixK(10));
        assert!(fk.mode.tunes());
        assert!(!raft.mode.tunes());
    }

    #[test]
    fn presets_validate() {
        TuningConfig::raft_default().validate();
        TuningConfig::raft_low().validate();
        TuningConfig::dynatune().validate();
        TuningConfig::fix_k(10).validate();
    }

    #[test]
    #[should_panic(expected = "arrival probability")]
    fn x_equal_one_rejected() {
        TuningConfig {
            arrival_probability: 1.0,
            ..TuningConfig::dynatune()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min_list_size")]
    fn tiny_min_list_rejected() {
        TuningConfig {
            min_list_size: 1,
            ..TuningConfig::dynatune()
        }
        .validate();
    }
}
