//! The panic policy for protocol code: crash only on a *stated* invariant.
//!
//! `dynatune_lint` denies bare `panic!`/`unreachable!`/`unwrap()` in the
//! protocol crates (`raft`, `cluster`, `broker` — rules P001/P002):
//! every reachable failure must propagate a typed error, and every
//! *unreachable* one must say why it is unreachable. These macros are the
//! sanctioned way to say why. They are not a loophole around the lint —
//! they are the lint's fix suggestion: the message argument is mandatory,
//! the panic text is greppably prefixed with `invariant violated:`, and a
//! reviewer sees the stated invariant at the crash site instead of a bare
//! `.unwrap()`.
//!
//! Crash-on-broken-invariant is deliberate (and standard for replicated
//! state machines): a replica whose in-memory state has diverged from its
//! own invariants must not keep serving — continuing risks acking writes
//! from corrupt state, which is strictly worse than a crash the cluster
//! is designed to fail over from.
//!
//! ```rust
//! use dynatune_core::{invariant, invariant_violated};
//!
//! fn commit(applied: u64, committed: u64, entry: Option<u64>) -> u64 {
//!     invariant!(applied <= committed, "applied {applied} passed commit {committed}");
//!     match entry {
//!         Some(e) => e,
//!         None => invariant_violated!("committed index {committed} missing from the log"),
//!     }
//! }
//! assert_eq!(commit(1, 2, Some(7)), 7);
//! ```

/// Panic with a stated invariant. Use in the `else`/`None` arm a typed
/// error cannot reach: the argument is the *reason the arm is
/// unreachable*, not a description of the crash.
#[macro_export]
macro_rules! invariant_violated {
    ($($why:tt)+) => {
        ::std::panic!("invariant violated: {}", ::std::format_args!($($why)+))
    };
}

/// Assert a stated invariant (a message is mandatory — that is the point).
/// Equivalent to `assert!` with the `invariant violated:` prefix, so
/// protocol-crate invariants are uniform and greppable.
#[macro_export]
macro_rules! invariant {
    ($cond:expr, $($why:tt)+) => {
        if !$cond {
            $crate::invariant_violated!($($why)+);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn holding_invariant_is_silent() {
        invariant!(1 + 1 == 2, "arithmetic works");
    }

    #[test]
    #[should_panic(expected = "invariant violated: count 3 exceeds cap 2")]
    fn broken_invariant_panics_with_prefixed_message() {
        let (count, cap) = (3, 2);
        invariant!(count <= cap, "count {count} exceeds cap {cap}");
    }

    #[test]
    #[should_panic(expected = "invariant violated: reached the unreachable")]
    fn violated_macro_panics_directly() {
        invariant_violated!("reached the {}", "unreachable");
    }
}
