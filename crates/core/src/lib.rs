//! # Dynatune core
//!
//! The paper's primary contribution (§III): dynamic tuning of leader-based
//! consensus election parameters from network metrics measured over the
//! existing heartbeat exchange. This crate is deliberately independent of
//! any particular consensus implementation — it models exactly the two
//! endpoints of the paper's protocol and the tuning rules:
//!
//! * **Measurement (§III-C).** The leader stamps every heartbeat with a
//!   sequential id and its local send timestamp ([`HeartbeatMeta`]); the
//!   follower echoes the timestamp back ([`HeartbeatReply`]), letting the
//!   leader compute the RTT against its *own* clock (no clock sync needed,
//!   robust to loss and reordering — Fig. 3a). The measured RTT rides on
//!   the *next* heartbeat to the follower. Sequential ids let the follower
//!   estimate the packet loss rate from gaps (Fig. 3b).
//! * **Tuning (§III-D).** The follower sets its election timeout
//!   `Et = µ_RTT + s·σ_RTT` and derives the heartbeat interval `h = Et / K`
//!   where `K = ⌈log_p(1 − x)⌉` heartbeats guarantee at least one arrival
//!   with probability ≥ x under loss rate p. The tuned `h` is piggybacked
//!   on the heartbeat response and applied by the leader per follower.
//! * **Fallback (§III-B).** On any election-timer expiry the follower
//!   discards its measurements and reverts to the conservative defaults,
//!   so a mis-tuned `Et < RTT` can never wedge the cluster.
//!
//! The consensus-side integration (etcd-style Raft) lives in
//! `dynatune-raft`; baselines (static Raft, Raft-Low, Fix-K) are expressed
//! as [`TuningMode`]s so every evaluated system shares this code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod invariant;
pub mod loss;
pub mod math;
pub mod meta;
pub mod pacer;
pub mod rtt;
pub mod tuner;

pub use config::{TuningConfig, TuningMode};
pub use loss::LossEstimator;
pub use math::{election_timeout_from_rtt, required_heartbeats};
pub use meta::{HeartbeatMeta, HeartbeatReply};
pub use pacer::LeaderPacer;
pub use rtt::RttEstimator;
pub use tuner::{FollowerTuner, TuningSnapshot};
