//! Follower-side packet-loss estimation (§III-C2): the `ids` list.
//!
//! The follower keeps the ids of received heartbeats in ascending order.
//! The loss rate is `1 − received / expected` where
//! `expected = ids[-1] − ids[0] + 1`. Out-of-order arrivals are inserted in
//! position; duplicates are ignored (paper's reordering/duplication rules).

use std::collections::VecDeque;

/// Windowed packet-loss estimator over sequential heartbeat ids.
#[derive(Debug, Clone)]
pub struct LossEstimator {
    /// Received ids, ascending, unique.
    ids: VecDeque<u64>,
    max_size: usize,
    min_size: usize,
}

impl LossEstimator {
    /// Create an estimator retaining at most `max_size` ids and reporting
    /// warm-up after `min_size`.
    ///
    /// # Panics
    /// Panics if `min_size == 0` or `max_size < min_size`.
    #[must_use]
    pub fn new(min_size: usize, max_size: usize) -> Self {
        assert!(min_size > 0, "min_size must be positive");
        assert!(max_size >= min_size, "max below min");
        Self {
            ids: VecDeque::with_capacity(max_size.min(4096)),
            max_size,
            min_size,
        }
    }

    /// Record a received heartbeat id.
    ///
    /// Returns `false` when the id is a duplicate (ignored, per §III-C2) or
    /// older than the retained window (stale reordering, also ignored).
    pub fn record(&mut self, id: u64) -> bool {
        // Fast path: strictly increasing arrivals.
        match self.ids.back() {
            None => self.ids.push_back(id),
            Some(&last) if id > last => self.ids.push_back(id),
            Some(_) => {
                // Out-of-order or duplicate: binary-insert in position.
                let pos = self.ids.partition_point(|&v| v < id);
                if self.ids.get(pos) == Some(&id) {
                    return false; // duplicate
                }
                if pos == 0 && self.ids.len() >= self.max_size {
                    return false; // older than the window, would be evicted
                }
                self.ids.insert(pos, id);
            }
        }
        while self.ids.len() > self.max_size {
            self.ids.pop_front();
        }
        true
    }

    /// True once enough ids are stored to trust the estimate.
    #[must_use]
    pub fn is_warmed(&self) -> bool {
        self.ids.len() >= self.min_size
    }

    /// Number of stored ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no ids are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Estimated loss rate `p = 1 − received/expected` over the window.
    /// Returns 0 with fewer than two ids.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        if self.ids.len() < 2 {
            return 0.0;
        }
        let first = *self.ids.front().expect("non-empty");
        let last = *self.ids.back().expect("non-empty");
        let expected = (last - first + 1) as f64;
        let received = self.ids.len() as f64;
        (1.0 - received / expected).clamp(0.0, 1.0)
    }

    /// Discard all ids (paper's reset-on-election).
    pub fn reset(&mut self) {
        self.ids.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_loss_when_contiguous() {
        let mut e = LossEstimator::new(2, 100);
        for id in 0..50 {
            assert!(e.record(id));
        }
        assert_eq!(e.loss_rate(), 0.0);
        assert!(e.is_warmed());
    }

    #[test]
    fn loss_rate_from_gaps() {
        let mut e = LossEstimator::new(2, 100);
        // Receive 0,2,4,6,8: 5 of 9 expected -> p = 4/9.
        for id in [0u64, 2, 4, 6, 8] {
            e.record(id);
        }
        assert!((e.loss_rate() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_ignored() {
        let mut e = LossEstimator::new(2, 100);
        assert!(e.record(1));
        assert!(e.record(2));
        assert!(!e.record(1));
        assert!(!e.record(2));
        assert_eq!(e.len(), 2);
        assert_eq!(e.loss_rate(), 0.0);
    }

    #[test]
    fn out_of_order_inserted_in_position() {
        let mut e = LossEstimator::new(2, 100);
        e.record(5);
        e.record(1);
        e.record(3);
        // ids = [1,3,5]: 3 of 5 expected -> p = 2/5
        assert!((e.loss_rate() - 0.4).abs() < 1e-12);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn window_eviction_drops_oldest() {
        let mut e = LossEstimator::new(2, 3);
        for id in [10u64, 11, 12, 13] {
            e.record(id);
        }
        assert_eq!(e.len(), 3);
        // ids = [11,12,13]
        assert_eq!(e.loss_rate(), 0.0);
        // An id older than the retained window is rejected.
        assert!(!e.record(5));
    }

    #[test]
    fn reset_clears() {
        let mut e = LossEstimator::new(2, 10);
        e.record(1);
        e.record(4);
        e.reset();
        assert!(e.is_empty());
        assert_eq!(e.loss_rate(), 0.0);
        assert!(!e.is_warmed());
    }

    #[test]
    fn single_id_reports_zero_loss() {
        let mut e = LossEstimator::new(2, 10);
        e.record(42);
        assert_eq!(e.loss_rate(), 0.0);
        assert!(!e.is_warmed());
    }

    proptest! {
        /// Feeding ids 0..n with each id independently "lost" produces a
        /// loss estimate equal to the true fraction of dropped ids between
        /// the first and last received id.
        #[test]
        fn prop_estimate_matches_ground_truth(mask in proptest::collection::vec(prop::bool::ANY, 2..200)) {
            let mut e = LossEstimator::new(2, 1000);
            let received: Vec<u64> = mask.iter().enumerate()
                .filter(|(_, &keep)| keep)
                .map(|(i, _)| i as u64)
                .collect();
            for &id in &received {
                e.record(id);
            }
            if received.len() >= 2 {
                let first = received[0];
                let last = *received.last().unwrap();
                let expected = (last - first + 1) as f64;
                let truth = 1.0 - received.len() as f64 / expected;
                prop_assert!((e.loss_rate() - truth).abs() < 1e-12);
            } else {
                prop_assert_eq!(e.loss_rate(), 0.0);
            }
        }

        /// Arrival order never changes the estimate (reordering tolerance).
        #[test]
        fn prop_order_independent(ids in proptest::collection::btree_set(0u64..500, 2..50), seed in 0u64..1000) {
            let sorted: Vec<u64> = ids.iter().copied().collect();
            let mut shuffled = sorted.clone();
            // Deterministic Fisher-Yates from the seed.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for i in (1..shuffled.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            let mut a = LossEstimator::new(2, 1000);
            let mut b = LossEstimator::new(2, 1000);
            for &id in &sorted { a.record(id); }
            for &id in &shuffled { b.record(id); }
            prop_assert_eq!(a.len(), b.len());
            prop_assert!((a.loss_rate() - b.loss_rate()).abs() < 1e-12);
        }
    }
}
