//! The tuning formulas of §III-D.

use std::time::Duration;

/// Number of heartbeats `K` that must be sent within one election timeout so
/// that at least one arrives with probability ≥ `x` under i.i.d. loss rate
/// `p` (§III-D2):
///
/// `1 − p^K ≥ x  ⇒  K = ⌈log_p(1 − x)⌉`
///
/// Guard rails:
/// * `p ≤ 0` (no loss): one heartbeat suffices, `K = 1`.
/// * `p ≥ 1`: the formula diverges; clamp to `k_max`.
/// * result is always in `[1, k_max]`.
#[must_use]
pub fn required_heartbeats(loss: f64, x: f64, k_max: u32) -> u32 {
    let k_max = k_max.max(1);
    if loss <= 0.0 || loss.is_nan() {
        return 1;
    }
    if loss >= 1.0 {
        return k_max;
    }
    let x = x.clamp(0.0, 1.0 - f64::EPSILON);
    if x <= 0.0 {
        return 1;
    }
    // log_p(1-x) = ln(1-x) / ln(p); both logs negative, ratio positive.
    let k = ((1.0 - x).ln() / loss.ln()).ceil();
    if !k.is_finite() {
        return k_max;
    }
    (k as i64).clamp(1, i64::from(k_max)) as u32
}

/// Election timeout from RTT statistics (§III-D1):
/// `Et = µ_RTT + s·σ_RTT`, clamped to `[floor, ceiling]`.
#[must_use]
pub fn election_timeout_from_rtt(
    mean_rtt: Duration,
    std_rtt: Duration,
    safety_factor: f64,
    floor: Duration,
    ceiling: Duration,
) -> Duration {
    let et = mean_rtt.as_secs_f64() + safety_factor * std_rtt.as_secs_f64();
    let et = Duration::from_secs_f64(et.max(0.0));
    et.clamp(floor, ceiling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn k_is_one_without_loss() {
        assert_eq!(required_heartbeats(0.0, 0.999, 100), 1);
        assert_eq!(required_heartbeats(-0.1, 0.999, 100), 1);
    }

    #[test]
    fn k_matches_paper_examples() {
        // x = 0.999: p=0.05 -> ceil(ln(0.001)/ln(0.05)) = ceil(2.31) = 3
        assert_eq!(required_heartbeats(0.05, 0.999, 100), 3);
        // p=0.10 -> ceil(3.0) = 3
        assert_eq!(required_heartbeats(0.10, 0.999, 100), 3);
        // p=0.30 -> ceil(5.74) = 6 (the Fig. 7a dip to ~Et/6)
        assert_eq!(required_heartbeats(0.30, 0.999, 100), 6);
        // p=0.50 -> ceil(9.97) = 10
        assert_eq!(required_heartbeats(0.50, 0.999, 100), 10);
    }

    #[test]
    fn k_exact_boundary_is_not_overshot() {
        // p=0.1, x=0.999: p^3 = 1e-3 exactly meets 1-p^K >= x, so K=3.
        assert_eq!(required_heartbeats(0.1, 0.999, 100), 3);
        // Slightly stricter x forces K=4.
        assert_eq!(required_heartbeats(0.1, 0.9991, 100), 4);
    }

    #[test]
    fn k_clamps_at_k_max() {
        assert_eq!(required_heartbeats(0.999_999, 0.999, 100), 100);
        assert_eq!(required_heartbeats(1.0, 0.999, 64), 64);
        assert_eq!(required_heartbeats(2.0, 0.999, 64), 64);
    }

    #[test]
    fn degenerate_x_values() {
        assert_eq!(required_heartbeats(0.5, 0.0, 100), 1);
        assert_eq!(required_heartbeats(0.5, -1.0, 100), 1);
        // x = 1.0 is clamped just below 1 (1 - eps): K = ceil(ln(eps)/ln(0.5)) = 52.
        assert_eq!(required_heartbeats(0.5, 1.0, 100), 52);
        // With a small k_max the clamp engages.
        assert_eq!(required_heartbeats(0.5, 1.0, 16), 16);
    }

    #[test]
    fn et_formula_and_clamps() {
        let floor = Duration::from_millis(10);
        let ceiling = Duration::from_secs(60);
        // 100ms mean, 5ms std, s=2 -> 110ms
        assert_eq!(
            election_timeout_from_rtt(
                Duration::from_millis(100),
                Duration::from_millis(5),
                2.0,
                floor,
                ceiling
            ),
            Duration::from_millis(110)
        );
        // tiny values clamp to the floor
        assert_eq!(
            election_timeout_from_rtt(
                Duration::from_micros(100),
                Duration::ZERO,
                2.0,
                floor,
                ceiling
            ),
            floor
        );
        // huge values clamp to the ceiling
        assert_eq!(
            election_timeout_from_rtt(
                Duration::from_secs(120),
                Duration::ZERO,
                2.0,
                floor,
                ceiling
            ),
            ceiling
        );
    }

    proptest! {
        /// The defining property: K heartbeats reach the follower with
        /// probability >= x (unless clamped by k_max).
        #[test]
        fn prop_k_guarantees_arrival_probability(
            loss in 0.0f64..0.95,
            x in 0.5f64..0.9999,
        ) {
            let k = required_heartbeats(loss, x, 1000);
            if k < 1000 {
                let arrival = 1.0 - loss.powi(k as i32);
                prop_assert!(arrival >= x - 1e-12, "p={loss} x={x} k={k} arrival={arrival}");
            }
        }

        /// Minimality: K-1 heartbeats would NOT meet the target.
        #[test]
        fn prop_k_is_minimal(
            loss in 0.01f64..0.95,
            x in 0.5f64..0.9999,
        ) {
            let k = required_heartbeats(loss, x, 1000);
            if k > 1 {
                let arrival_with_less = 1.0 - loss.powi(k as i32 - 1);
                prop_assert!(arrival_with_less < x + 1e-9, "p={loss} x={x} k={k}");
            }
        }

        /// K is monotone in the loss rate.
        #[test]
        fn prop_k_monotone_in_loss(a in 0.0f64..0.95, b in 0.0f64..0.95) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(required_heartbeats(lo, 0.999, 1000) <= required_heartbeats(hi, 0.999, 1000));
        }

        /// Et is monotone in both mean and std, and always within clamps.
        #[test]
        fn prop_et_monotone_and_clamped(
            mean_ms in 0.0f64..10_000.0,
            std_ms in 0.0f64..5_000.0,
            s in 0.0f64..10.0,
        ) {
            let floor = Duration::from_millis(10);
            let ceiling = Duration::from_secs(60);
            let et = election_timeout_from_rtt(
                Duration::from_secs_f64(mean_ms / 1e3),
                Duration::from_secs_f64(std_ms / 1e3),
                s, floor, ceiling,
            );
            prop_assert!(et >= floor && et <= ceiling);
            let et_bigger_mean = election_timeout_from_rtt(
                Duration::from_secs_f64((mean_ms + 1.0) / 1e3),
                Duration::from_secs_f64(std_ms / 1e3),
                s, floor, ceiling,
            );
            prop_assert!(et_bigger_mean >= et);
        }
    }
}
