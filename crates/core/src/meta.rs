//! Wire metadata carried on heartbeats and their responses (paper Fig. 3).
//!
//! Timestamps are opaque `u64` nanosecond readings of the *leader's* local
//! clock; the follower never interprets them, it only echoes them back.
//! This is what makes the measurement correct under partial synchrony: the
//! RTT is computed as the difference of two readings of one clock.

use std::time::Duration;

/// Metadata the leader attaches to each heartbeat sent to one follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatMeta {
    /// Sequential heartbeat id on this leader→follower path (per term).
    /// Gaps in the sequence let the follower measure the loss rate.
    pub id: u64,
    /// Leader-local send timestamp (nanoseconds, opaque to the follower).
    pub sent_at_nanos: u64,
    /// The most recent RTT the leader measured for this follower, delivered
    /// to the follower one heartbeat late (Fig. 3a, step 3). `None` until
    /// the first response has been observed.
    pub rtt_sample: Option<Duration>,
}

/// Metadata the follower piggybacks on its heartbeat response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatReply {
    /// The id of the heartbeat being acknowledged.
    pub id: u64,
    /// Echo of [`HeartbeatMeta::sent_at_nanos`]; the leader subtracts this
    /// from its current clock to obtain the RTT without per-heartbeat state,
    /// immune to reordering and loss.
    pub echo_sent_at_nanos: u64,
    /// The follower's newly tuned heartbeat interval `h`, if tuning is
    /// active and warmed up (§III-D2). The leader applies it to this
    /// follower's pacer.
    pub tuned_interval: Option<Duration>,
}

impl HeartbeatReply {
    /// Construct the reply a measurement-oblivious follower would send
    /// (echo only, no tuning directive).
    #[must_use]
    pub fn echo_only(meta: &HeartbeatMeta) -> Self {
        Self {
            id: meta.id,
            echo_sent_at_nanos: meta.sent_at_nanos,
            tuned_interval: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_only_copies_fields() {
        let meta = HeartbeatMeta {
            id: 7,
            sent_at_nanos: 123_456,
            rtt_sample: Some(Duration::from_millis(80)),
        };
        let reply = HeartbeatReply::echo_only(&meta);
        assert_eq!(reply.id, 7);
        assert_eq!(reply.echo_sent_at_nanos, 123_456);
        assert_eq!(reply.tuned_interval, None);
    }
}
