//! Leader-side per-follower heartbeat pacing (§III-B step 0 / step 3).
//!
//! In Dynatune each leader→follower path has its own heartbeat interval, so
//! the leader keeps one [`LeaderPacer`] per follower. The pacer:
//!
//! * decides when the next heartbeat is due and stamps it with the
//!   sequential id + local send timestamp ([`HeartbeatMeta`]);
//! * computes the RTT from the echoed timestamp on each reply (the leader
//!   needs no in-flight bookkeeping — Fig. 3a);
//! * applies the follower's piggybacked tuned interval (step 3).

use crate::config::TuningConfig;
use crate::meta::{HeartbeatMeta, HeartbeatReply};
use std::time::Duration;

/// Leader-side pacing state for one follower.
#[derive(Debug, Clone)]
pub struct LeaderPacer {
    config: TuningConfig,
    /// Heartbeat interval currently applied to this follower.
    interval: Duration,
    /// Next send deadline (leader-local nanoseconds).
    next_send_nanos: u64,
    /// Next heartbeat id to assign.
    next_id: u64,
    /// Last RTT computed from a reply; forwarded on the next heartbeat.
    last_rtt: Option<Duration>,
}

impl LeaderPacer {
    /// Create a pacer starting at the default interval, first heartbeat due
    /// immediately at `now_nanos`.
    #[must_use]
    pub fn new(config: TuningConfig, now_nanos: u64) -> Self {
        config.validate();
        Self {
            interval: config.default_heartbeat_interval,
            next_send_nanos: now_nanos,
            next_id: 0,
            last_rtt: None,
            config,
        }
    }

    /// Current heartbeat interval for this follower.
    #[must_use]
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Leader-local deadline of the next heartbeat.
    #[must_use]
    pub fn next_send_nanos(&self) -> u64 {
        self.next_send_nanos
    }

    /// Most recent RTT measured for this follower.
    #[must_use]
    pub fn last_rtt(&self) -> Option<Duration> {
        self.last_rtt
    }

    /// If a heartbeat is due at `now_nanos`, emit its metadata and schedule
    /// the next one. Missed intervals (e.g. after a pause) do not burst:
    /// the next deadline is `now + interval`.
    pub fn maybe_emit(&mut self, now_nanos: u64) -> Option<HeartbeatMeta> {
        if now_nanos < self.next_send_nanos {
            return None;
        }
        let meta = HeartbeatMeta {
            id: self.next_id,
            sent_at_nanos: now_nanos,
            rtt_sample: self.last_rtt,
        };
        self.next_id += 1;
        self.next_send_nanos = now_nanos + self.interval.as_nanos() as u64;
        Some(meta)
    }

    /// Treat the current deadline as satisfied without emitting: schedule
    /// the next heartbeat one interval from `now_nanos`. Used by the
    /// paper's §IV-E extension that suppresses heartbeats while replication
    /// traffic is already resetting the follower's election timer.
    pub fn defer(&mut self, now_nanos: u64) {
        if now_nanos >= self.next_send_nanos {
            self.next_send_nanos = now_nanos + self.interval.as_nanos() as u64;
        }
    }

    /// Emit a heartbeat immediately regardless of the schedule and restart
    /// the interval from `now_nanos`. Used by the §IV-E consolidated-timer
    /// extension, where the leader fires all pacers together on the
    /// smallest interval.
    pub fn emit_now(&mut self, now_nanos: u64) -> HeartbeatMeta {
        let meta = HeartbeatMeta {
            id: self.next_id,
            sent_at_nanos: now_nanos,
            rtt_sample: self.last_rtt,
        };
        self.next_id += 1;
        self.next_send_nanos = now_nanos + self.interval.as_nanos() as u64;
        meta
    }

    /// Process a heartbeat reply at `now_nanos`: measure the RTT from the
    /// echoed timestamp and adopt the follower's tuned interval if present.
    pub fn on_reply(&mut self, now_nanos: u64, reply: &HeartbeatReply) {
        // A reply from the future (clock misuse) is ignored defensively.
        if let Some(delta) = now_nanos.checked_sub(reply.echo_sent_at_nanos) {
            self.last_rtt = Some(Duration::from_nanos(delta));
        }
        if let Some(h) = reply.tuned_interval {
            self.interval = h.max(self.config.heartbeat_floor);
        }
    }

    /// Revert to the default interval and forget measurements (applied when
    /// leadership or membership changes).
    pub fn reset(&mut self, now_nanos: u64) {
        self.interval = self.config.default_heartbeat_interval;
        self.next_send_nanos = now_nanos;
        self.last_rtt = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn pacer() -> LeaderPacer {
        LeaderPacer::new(TuningConfig::dynatune(), 0)
    }

    #[test]
    fn first_heartbeat_is_immediate() {
        let mut p = pacer();
        let meta = p.maybe_emit(0).expect("due at t=0");
        assert_eq!(meta.id, 0);
        assert_eq!(meta.sent_at_nanos, 0);
        assert_eq!(meta.rtt_sample, None);
        // Not due again until one default interval (100ms) later.
        assert_eq!(p.maybe_emit(50 * MS), None);
        assert!(p.maybe_emit(100 * MS).is_some());
    }

    #[test]
    fn ids_are_sequential() {
        let mut p = pacer();
        let mut ids = Vec::new();
        let mut t = 0;
        for _ in 0..5 {
            ids.push(p.maybe_emit(t).unwrap().id);
            t += 100 * MS;
        }
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reply_measures_rtt_and_applies_interval() {
        let mut p = pacer();
        let meta = p.maybe_emit(0).unwrap();
        let reply = HeartbeatReply {
            id: meta.id,
            echo_sent_at_nanos: meta.sent_at_nanos,
            tuned_interval: Some(Duration::from_millis(40)),
        };
        p.on_reply(80 * MS, &reply);
        assert_eq!(p.last_rtt(), Some(Duration::from_millis(80)));
        assert_eq!(p.interval(), Duration::from_millis(40));
        // Next heartbeat carries the measured RTT.
        let next = p.maybe_emit(100 * MS).unwrap();
        assert_eq!(next.rtt_sample, Some(Duration::from_millis(80)));
        // And the new 40ms cadence applies from that send.
        assert_eq!(p.next_send_nanos(), 140 * MS);
    }

    #[test]
    fn reply_without_tuning_keeps_interval() {
        let mut p = pacer();
        let meta = p.maybe_emit(0).unwrap();
        p.on_reply(10 * MS, &HeartbeatReply::echo_only(&meta));
        assert_eq!(p.interval(), Duration::from_millis(100));
        assert_eq!(p.last_rtt(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn no_burst_after_gap() {
        let mut p = pacer();
        p.maybe_emit(0).unwrap();
        // Leader was busy/paused for 1s; exactly one heartbeat emitted,
        // next scheduled one interval after the late send.
        let late = p.maybe_emit(1000 * MS).unwrap();
        assert_eq!(late.id, 1);
        assert_eq!(p.next_send_nanos(), 1100 * MS);
        assert_eq!(p.maybe_emit(1050 * MS), None);
    }

    #[test]
    fn tuned_interval_respects_floor() {
        let mut p = pacer();
        let meta = p.maybe_emit(0).unwrap();
        p.on_reply(
            MS,
            &HeartbeatReply {
                id: meta.id,
                echo_sent_at_nanos: meta.sent_at_nanos,
                tuned_interval: Some(Duration::from_nanos(10)),
            },
        );
        assert_eq!(p.interval(), Duration::from_millis(1)); // default floor
    }

    #[test]
    fn future_echo_ignored() {
        let mut p = pacer();
        let _ = p.maybe_emit(0);
        p.on_reply(
            5 * MS,
            &HeartbeatReply {
                id: 0,
                echo_sent_at_nanos: 10 * MS, // claims to be from the future
                tuned_interval: None,
            },
        );
        assert_eq!(p.last_rtt(), None);
    }

    #[test]
    fn defer_skips_without_consuming_an_id() {
        let mut p = pacer();
        let first = p.maybe_emit(0).unwrap();
        assert_eq!(first.id, 0);
        // Deadline at 100ms; defer instead of emitting.
        p.defer(100 * MS);
        assert_eq!(p.maybe_emit(150 * MS), None, "deferred to 200ms");
        let next = p.maybe_emit(200 * MS).unwrap();
        assert_eq!(next.id, 1, "no id consumed by the deferral");
    }

    #[test]
    fn defer_before_deadline_is_noop() {
        let mut p = pacer();
        let _ = p.maybe_emit(0);
        p.defer(50 * MS); // not yet due
        assert!(p.maybe_emit(100 * MS).is_some(), "schedule unchanged");
    }

    #[test]
    fn emit_now_fires_early_and_reschedules() {
        let mut p = pacer();
        let _ = p.maybe_emit(0);
        // Not due until 100ms, but the consolidated timer fires at 60ms.
        let meta = p.emit_now(60 * MS);
        assert_eq!(meta.id, 1);
        assert_eq!(meta.sent_at_nanos, 60 * MS);
        assert_eq!(p.next_send_nanos(), 160 * MS);
    }

    #[test]
    fn reset_restores_defaults() {
        let mut p = pacer();
        let meta = p.maybe_emit(0).unwrap();
        p.on_reply(
            20 * MS,
            &HeartbeatReply {
                id: meta.id,
                echo_sent_at_nanos: meta.sent_at_nanos,
                tuned_interval: Some(Duration::from_millis(7)),
            },
        );
        assert_eq!(p.interval(), Duration::from_millis(7));
        p.reset(500 * MS);
        assert_eq!(p.interval(), Duration::from_millis(100));
        assert_eq!(p.last_rtt(), None);
        assert_eq!(p.next_send_nanos(), 500 * MS);
        // ids keep increasing across resets (no ambiguity for the follower).
        assert_eq!(p.maybe_emit(500 * MS).unwrap().id, 1);
    }
}
