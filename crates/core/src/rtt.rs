//! Follower-side RTT estimation (§III-C1): the `RTTs` list.

use dynatune_stats::SampleWindow;
use std::time::Duration;

/// Windowed RTT estimator.
///
/// Stores up to `maxListSize` RTT samples (milliseconds internally) and
/// exposes the mean and standard deviation the tuning rule consumes. Below
/// `minListSize` samples the estimator reports itself as not yet warmed and
/// the tuner keeps the conservative defaults (paper Step 0).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    window: SampleWindow,
    min_samples: usize,
}

impl RttEstimator {
    /// Create an estimator with the given warm-up threshold and capacity.
    ///
    /// # Panics
    /// Panics if `min_samples == 0` or `max_samples < min_samples`.
    #[must_use]
    pub fn new(min_samples: usize, max_samples: usize) -> Self {
        assert!(min_samples > 0, "min_samples must be positive");
        assert!(max_samples >= min_samples, "max below min");
        Self {
            window: SampleWindow::new(max_samples),
            min_samples,
        }
    }

    /// Record one RTT sample.
    pub fn record(&mut self, rtt: Duration) {
        self.window.push(rtt.as_secs_f64() * 1e3);
    }

    /// True once at least `minListSize` samples are stored (paper's
    /// transition from Step 0 to Step 1).
    #[must_use]
    pub fn is_warmed(&self) -> bool {
        self.window.len() >= self.min_samples
    }

    /// Number of stored samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no samples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Mean RTT over the window.
    #[must_use]
    pub fn mean(&self) -> Duration {
        Duration::from_secs_f64((self.window.mean() / 1e3).max(0.0))
    }

    /// Population standard deviation of the RTT over the window.
    #[must_use]
    pub fn std_dev(&self) -> Duration {
        Duration::from_secs_f64((self.window.std_dev() / 1e3).max(0.0))
    }

    /// Most recent sample.
    #[must_use]
    pub fn latest(&self) -> Option<Duration> {
        self.window
            .latest()
            .map(|ms| Duration::from_secs_f64((ms / 1e3).max(0.0)))
    }

    /// Discard all samples (paper's reset-on-election).
    pub fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_up_at_min_samples() {
        let mut e = RttEstimator::new(3, 10);
        assert!(!e.is_warmed());
        e.record(Duration::from_millis(100));
        e.record(Duration::from_millis(100));
        assert!(!e.is_warmed());
        e.record(Duration::from_millis(100));
        assert!(e.is_warmed());
    }

    #[test]
    fn mean_and_std() {
        let mut e = RttEstimator::new(2, 10);
        e.record(Duration::from_millis(90));
        e.record(Duration::from_millis(110));
        assert_eq!(e.mean(), Duration::from_millis(100));
        assert_eq!(e.std_dev(), Duration::from_millis(10));
        assert_eq!(e.latest(), Some(Duration::from_millis(110)));
    }

    #[test]
    fn window_evicts_old_samples() {
        let mut e = RttEstimator::new(2, 3);
        for ms in [10u64, 20, 30, 1000, 1000, 1000] {
            e.record(Duration::from_millis(ms));
        }
        // Only the three 1000ms samples remain.
        assert_eq!(e.mean(), Duration::from_millis(1000));
        assert_eq!(e.std_dev(), Duration::ZERO);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn reset_discards_everything() {
        let mut e = RttEstimator::new(2, 10);
        e.record(Duration::from_millis(50));
        e.record(Duration::from_millis(60));
        assert!(e.is_warmed());
        e.reset();
        assert!(!e.is_warmed());
        assert!(e.is_empty());
        assert_eq!(e.mean(), Duration::ZERO);
        assert_eq!(e.latest(), None);
    }

    #[test]
    fn sub_millisecond_rtts_survive() {
        let mut e = RttEstimator::new(2, 4);
        e.record(Duration::from_micros(500));
        e.record(Duration::from_micros(700));
        assert_eq!(e.mean(), Duration::from_micros(600));
    }
}
