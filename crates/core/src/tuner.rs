//! The follower-side tuner: Steps 0–3 of §III-B glued together.

use crate::config::{TuningConfig, TuningMode};
use crate::loss::LossEstimator;
use crate::math::{election_timeout_from_rtt, required_heartbeats};
use crate::meta::{HeartbeatMeta, HeartbeatReply};
use crate::rtt::RttEstimator;
use std::time::Duration;

/// Read-only view of the tuner's current state, for observers and logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningSnapshot {
    /// Current election timeout `Et`.
    pub election_timeout: Duration,
    /// Current heartbeat interval `h` this follower asks the leader to use.
    pub heartbeat_interval: Duration,
    /// Estimated packet loss rate `p`.
    pub loss_rate: f64,
    /// Mean RTT over the window.
    pub rtt_mean: Duration,
    /// RTT standard deviation over the window.
    pub rtt_std: Duration,
    /// Number of RTT samples held.
    pub rtt_samples: usize,
    /// Whether tuned values (vs. defaults) are in effect.
    pub warmed: bool,
}

/// Follower-side Dynatune state for one leader→follower path.
///
/// Lifecycle (paper §III-B):
/// 1. **Step 0** — record heartbeat metadata until `minListSize` samples.
/// 2. **Steps 1–2** — estimate RTT/loss, compute `Et = µ + s·σ` and
///    `h = Et / K(p, x)` on every heartbeat.
/// 3. **Step 3** — expose `Et` via [`Self::election_timeout`] (the consensus
///    layer applies it to its election timer) and piggyback `h` on the
///    heartbeat reply.
/// 4. **Fallback** — [`Self::reset`] discards all measurements and reverts
///    to defaults; the consensus layer calls it whenever the election timer
///    fires or leadership changes.
#[derive(Debug, Clone)]
pub struct FollowerTuner {
    config: TuningConfig,
    rtt: RttEstimator,
    loss: LossEstimator,
    election_timeout: Duration,
    heartbeat_interval: Duration,
    warmed: bool,
}

impl FollowerTuner {
    /// Create a tuner in the default (Step 0) state.
    ///
    /// # Panics
    /// Panics when the config is invalid.
    #[must_use]
    pub fn new(config: TuningConfig) -> Self {
        config.validate();
        Self {
            rtt: RttEstimator::new(config.min_list_size, config.max_list_size),
            loss: LossEstimator::new(config.min_list_size, config.max_list_size),
            election_timeout: config.default_election_timeout,
            heartbeat_interval: config.default_heartbeat_interval,
            warmed: false,
            config,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TuningConfig {
        &self.config
    }

    /// Process one received heartbeat's metadata and produce the reply
    /// metadata to piggyback on the acknowledgement.
    pub fn on_heartbeat(&mut self, meta: &HeartbeatMeta) -> HeartbeatReply {
        if !self.config.mode.tunes() {
            // Static baselines neither record nor tune (pure etcd).
            return HeartbeatReply::echo_only(meta);
        }
        let fresh = self.loss.record(meta.id);
        if !fresh {
            // Duplicate delivery: echo, but do not double-count.
            return HeartbeatReply {
                tuned_interval: self.warmed.then_some(self.heartbeat_interval),
                ..HeartbeatReply::echo_only(meta)
            };
        }
        if let Some(rtt) = meta.rtt_sample {
            self.rtt.record(rtt);
        }
        self.retune();
        HeartbeatReply {
            id: meta.id,
            echo_sent_at_nanos: meta.sent_at_nanos,
            tuned_interval: self.warmed.then_some(self.heartbeat_interval),
        }
    }

    /// Recompute `Et` and `h` from current estimates (Steps 1–2).
    fn retune(&mut self) {
        if !self.rtt.is_warmed() {
            return; // still Step 0
        }
        self.warmed = true;
        self.election_timeout = election_timeout_from_rtt(
            self.rtt.mean(),
            self.rtt.std_dev(),
            self.config.safety_factor,
            self.config.election_timeout_floor,
            self.config.election_timeout_ceiling,
        );
        let k = match self.config.mode {
            TuningMode::Static => unreachable!("static mode never retunes"),
            TuningMode::FixK(k) => k.max(1),
            TuningMode::Dynatune => required_heartbeats(
                self.loss.loss_rate(),
                self.config.arrival_probability,
                self.config.k_max,
            ),
        };
        let h = Duration::from_secs_f64(self.election_timeout.as_secs_f64() / f64::from(k));
        self.heartbeat_interval = h.max(self.config.heartbeat_floor);
    }

    /// Current election timeout `Et` for this path (default until warmed).
    #[must_use]
    pub fn election_timeout(&self) -> Duration {
        self.election_timeout
    }

    /// Current heartbeat interval `h` the follower expects from the leader.
    /// Followers use this as the tick period for timer quantization.
    #[must_use]
    pub fn expected_heartbeat_interval(&self) -> Duration {
        self.heartbeat_interval
    }

    /// Whether tuned values are in effect (false during Step 0 / after
    /// reset).
    #[must_use]
    pub fn is_warmed(&self) -> bool {
        self.warmed
    }

    /// Estimated packet loss rate.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        self.loss.loss_rate()
    }

    /// Discard all measurements and fall back to the conservative defaults.
    ///
    /// Per §III-B this is "the beginning of Step 0": it runs when a (new)
    /// leader's path is established, and as the availability fallback when
    /// an election fails to resolve quickly (see `dynatune-raft`'s campaign
    /// escalation).
    pub fn reset(&mut self) {
        self.rtt.reset();
        self.loss.reset();
        self.election_timeout = self.config.default_election_timeout;
        self.heartbeat_interval = self.config.default_heartbeat_interval;
        self.warmed = false;
    }

    /// Discard the measurement *data* but keep the currently tuned
    /// parameters in force.
    ///
    /// Per §III-B / Fig. 6b, on an election-timer expiry the follower
    /// "discards the network measurement data they had gathered" and
    /// campaigns; the conservative defaults are restored only when Step 0
    /// restarts with a newly elected leader ([`Self::reset`]). Keeping the
    /// tuned (small) Et for campaign retries is what keeps Dynatune's
    /// split-vote retries cheap (§IV-E reports a 560 ms mean election time,
    /// which default-paced retries could not produce).
    pub fn reset_measurements(&mut self) {
        self.rtt.reset();
        self.loss.reset();
        self.warmed = false;
    }

    /// Observer snapshot.
    #[must_use]
    pub fn snapshot(&self) -> TuningSnapshot {
        TuningSnapshot {
            election_timeout: self.election_timeout,
            heartbeat_interval: self.heartbeat_interval,
            loss_rate: self.loss.loss_rate(),
            rtt_mean: self.rtt.mean(),
            rtt_std: self.rtt.std_dev(),
            rtt_samples: self.rtt.len(),
            warmed: self.warmed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heartbeat(id: u64, rtt_ms: Option<u64>) -> HeartbeatMeta {
        HeartbeatMeta {
            id,
            sent_at_nanos: id * 1_000_000,
            rtt_sample: rtt_ms.map(Duration::from_millis),
        }
    }

    fn warmed_tuner(rtt_ms: u64, n: usize) -> FollowerTuner {
        let mut t = FollowerTuner::new(TuningConfig::dynatune());
        for i in 0..n as u64 {
            t.on_heartbeat(&heartbeat(i, Some(rtt_ms)));
        }
        t
    }

    #[test]
    fn static_mode_never_tunes() {
        let mut t = FollowerTuner::new(TuningConfig::raft_default());
        for i in 0..100 {
            let reply = t.on_heartbeat(&heartbeat(i, Some(100)));
            assert_eq!(reply.tuned_interval, None);
        }
        assert!(!t.is_warmed());
        assert_eq!(t.election_timeout(), Duration::from_millis(1000));
        assert_eq!(t.expected_heartbeat_interval(), Duration::from_millis(100));
    }

    #[test]
    fn stays_default_during_step0() {
        let mut t = FollowerTuner::new(TuningConfig::dynatune());
        // min_list_size is 10; 9 samples must not trigger tuning.
        for i in 0..9 {
            t.on_heartbeat(&heartbeat(i, Some(50)));
        }
        assert!(!t.is_warmed());
        assert_eq!(t.election_timeout(), Duration::from_millis(1000));
    }

    #[test]
    fn tunes_after_warmup_stable_rtt() {
        let t = warmed_tuner(100, 20);
        assert!(t.is_warmed());
        // sigma = 0 -> Et = mean = 100ms; p = 0 -> K = 1 -> h = Et.
        assert_eq!(t.election_timeout(), Duration::from_millis(100));
        assert_eq!(t.expected_heartbeat_interval(), Duration::from_millis(100));
    }

    #[test]
    fn variance_widens_election_timeout() {
        let mut t = FollowerTuner::new(TuningConfig::dynatune());
        // Alternate 80/120ms: mean 100, std 20 -> Et = 100 + 2*20 = 140.
        for i in 0..20u64 {
            let rtt = if i % 2 == 0 { 80 } else { 120 };
            t.on_heartbeat(&heartbeat(i, Some(rtt)));
        }
        assert_eq!(t.election_timeout(), Duration::from_millis(140));
    }

    #[test]
    fn loss_shrinks_heartbeat_interval() {
        let mut t = FollowerTuner::new(TuningConfig::dynatune());
        // Every third heartbeat lost: ids 0,1,3,4,6,7,... p = 1/3.
        for id in 0..30u64 {
            if id % 3 != 2 {
                t.on_heartbeat(&heartbeat(id, Some(100)));
            }
        }
        assert!(t.is_warmed());
        let p = t.loss_rate();
        assert!((p - 1.0 / 3.0).abs() < 0.05, "p = {p}");
        // K = ceil(log_{1/3}(0.001)) = ceil(6.29) = 7 -> h = 100/7 ≈ 14.3ms
        let h = t.expected_heartbeat_interval();
        assert!(h < Duration::from_millis(20), "h = {h:?}");
        assert!(h > Duration::from_millis(10), "h = {h:?}");
        // Et itself is unaffected by loss.
        assert_eq!(t.election_timeout(), Duration::from_millis(100));
    }

    #[test]
    fn fix_k_pins_the_ratio() {
        let mut t = FollowerTuner::new(TuningConfig::fix_k(10));
        // Lossy path: every second heartbeat lost.
        for i in 0..40u64 {
            if i % 2 == 0 {
                t.on_heartbeat(&heartbeat(i, Some(200)));
            }
        }
        assert!(t.is_warmed());
        assert_eq!(t.election_timeout(), Duration::from_millis(200));
        // Despite ~50% loss, h stays Et/10.
        assert_eq!(t.expected_heartbeat_interval(), Duration::from_millis(20));
    }

    #[test]
    fn reply_piggybacks_h_only_when_warmed() {
        let mut t = FollowerTuner::new(TuningConfig::dynatune());
        let early = t.on_heartbeat(&heartbeat(0, Some(100)));
        assert_eq!(early.tuned_interval, None);
        for i in 1..15 {
            t.on_heartbeat(&heartbeat(i, Some(100)));
        }
        let late = t.on_heartbeat(&heartbeat(15, Some(100)));
        assert_eq!(late.tuned_interval, Some(Duration::from_millis(100)));
    }

    #[test]
    fn duplicate_heartbeats_do_not_distort() {
        let mut t = FollowerTuner::new(TuningConfig::dynatune());
        for i in 0..15u64 {
            t.on_heartbeat(&heartbeat(i, Some(100)));
            // duplicate delivery of every heartbeat
            let dup_reply = t.on_heartbeat(&heartbeat(i, Some(100)));
            assert_eq!(dup_reply.id, i);
        }
        assert_eq!(t.loss_rate(), 0.0);
        // RTT window holds one sample per unique heartbeat.
        assert_eq!(t.snapshot().rtt_samples, 15);
    }

    #[test]
    fn reset_falls_back_to_defaults() {
        let mut t = warmed_tuner(50, 20);
        assert!(t.is_warmed());
        assert_eq!(t.election_timeout(), Duration::from_millis(50));
        t.reset();
        assert!(!t.is_warmed());
        assert_eq!(t.election_timeout(), Duration::from_millis(1000));
        assert_eq!(t.expected_heartbeat_interval(), Duration::from_millis(100));
        assert_eq!(t.snapshot().rtt_samples, 0);
    }

    #[test]
    fn reset_measurements_keeps_tuned_parameters() {
        let mut t = warmed_tuner(50, 20);
        t.reset_measurements();
        assert!(!t.is_warmed(), "data discarded");
        assert_eq!(t.snapshot().rtt_samples, 0);
        // Tuned Et/h stay in force for the campaign (§III-B reading).
        assert_eq!(t.election_timeout(), Duration::from_millis(50));
        assert_eq!(t.expected_heartbeat_interval(), Duration::from_millis(50));
        // Replies stop advertising a tuned h until re-warmed.
        let reply = t.on_heartbeat(&heartbeat(1000, Some(80)));
        assert_eq!(reply.tuned_interval, None);
    }

    #[test]
    fn adapts_to_rtt_change() {
        let mut t = warmed_tuner(50, 1000);
        assert_eq!(t.election_timeout(), Duration::from_millis(50));
        // RTT rises to 500ms; after the window refills the tuned Et follows.
        for i in 1000..2100u64 {
            t.on_heartbeat(&heartbeat(i, Some(500)));
        }
        // window (1000) now holds only 500ms samples
        assert_eq!(t.election_timeout(), Duration::from_millis(500));
    }

    #[test]
    fn heartbeat_floor_respected() {
        let cfg = TuningConfig {
            heartbeat_floor: Duration::from_millis(5),
            ..TuningConfig::dynatune()
        };
        let mut t = FollowerTuner::new(cfg);
        // 10ms RTT with heavy loss would want a very small h.
        for id in 0..200u64 {
            if id % 10 < 3 {
                t.on_heartbeat(&heartbeat(id, Some(10)));
            }
        }
        assert!(t.is_warmed());
        assert!(t.expected_heartbeat_interval() >= Duration::from_millis(5));
    }

    #[test]
    fn snapshot_reflects_state() {
        let t = warmed_tuner(100, 30);
        let s = t.snapshot();
        assert!(s.warmed);
        assert_eq!(s.election_timeout, Duration::from_millis(100));
        assert_eq!(s.rtt_mean, Duration::from_millis(100));
        assert_eq!(s.rtt_std, Duration::ZERO);
        assert_eq!(s.loss_rate, 0.0);
        assert_eq!(s.rtt_samples, 30);
    }
}
