//! Replicated key-value store for the Dynatune reproduction.
//!
//! The paper evaluates Dynatune inside etcd, a Raft-replicated KV store.
//! This crate provides the service layer:
//!
//! * [`KvStore`] — the deterministic KV map (put/get/delete/range/CAS with
//!   etcd-style create/mod revisions);
//! * [`Store`] — the replicated state machine: the map plus per-client
//!   retry deduplication (Raft §6.3 sessions) and snapshot/restore, driven
//!   by `dynatune-raft`;
//! * [`WorkloadGen`] — open-loop client load with Poisson arrivals, rate
//!   ramp schedules (the paper's §IV-B2 peak-throughput methodology) and
//!   Zipf-skewed keys;
//! * [`ShardRouter`] / [`ShardMap`] — hash partitioning of the keyspace
//!   across independent Raft groups, and the replica placement that maps
//!   shards onto simulated hosts (the multi-Raft serving layer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shard;
pub mod store;
pub mod workload;

pub use shard::{ShardId, ShardMap, ShardRouter};
pub use store::{
    KvCommand, KvRequest, KvResponse, KvStore, ReqOrigin, Store, VersionedValue,
    DEFAULT_REPLY_WINDOW,
};
pub use workload::{OpMix, RateStep, WorkloadGen};
