//! Keyspace sharding: hash partitioning and replica placement.
//!
//! A single Raft group serializes every write through one leader, so the
//! aggregate throughput of the store is capped by one machine no matter how
//! many hosts exist. The standard escape hatch — used by every production
//! multi-Raft store (TiKV, CockroachDB, etcd's successor designs) — is to
//! partition the keyspace into independent consensus groups ("shards") that
//! commit in parallel.
//!
//! This module is the pure-data half of that design:
//!
//! * [`ShardRouter`] maps a key to its owning shard by hashing the key
//!   bytes (FNV-1a, the workspace's deterministic hash of choice) modulo
//!   the shard count. Routing is stateless and identical on every client.
//! * [`ShardMap`] describes replica placement: which simulated host serves
//!   replica `r` of shard `s`. The layout is row-major
//!   (`shard * replicas + replica`), which keeps group membership
//!   contiguous and translation between group-local Raft ids and global
//!   host ids a single addition.
//!
//! The simulation layer (`dynatune_cluster`) builds one Raft group per
//! shard from a `ShardMap`; clients route commands with a `ShardRouter`
//! and batch per shard.

use crate::store::KvCommand;

/// Identifier of one shard (consensus group).
pub type ShardId = usize;

/// Stateless hash router from keys to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` hash partitions.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self { shards }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` (FNV-1a over the key bytes, mod shards).
    #[must_use]
    pub fn shard_of(&self, key: &[u8]) -> ShardId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.shards as u64) as usize
    }

    /// The shard a command routes to. Point commands route by their key;
    /// `Range` routes by its start key (cross-shard scatter/gather is out
    /// of scope — a range is served by the shard owning its start).
    #[must_use]
    pub fn shard_of_command(&self, cmd: &KvCommand) -> ShardId {
        let key = match cmd {
            KvCommand::Put { key, .. }
            | KvCommand::Get { key }
            | KvCommand::Delete { key }
            | KvCommand::Cas { key, .. } => key,
            KvCommand::Range { start, .. } => start,
        };
        self.shard_of(key)
    }
}

/// Replica placement: shard × replica → global host id.
///
/// Hosts `[0, shards * replicas)` are servers laid out row-major by shard;
/// anything at or past [`ShardMap::n_servers`] (clients, observers) is not
/// covered by the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    replicas: usize,
}

impl ShardMap {
    /// A placement of `shards` groups with `replicas` nodes each.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn new(shards: usize, replicas: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(replicas > 0, "need at least one replica per shard");
        Self { shards, replicas }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Replicas per shard (the Raft group size).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total server hosts placed by this map.
    #[must_use]
    pub fn n_servers(&self) -> usize {
        self.shards * self.replicas
    }

    /// Global host id of replica `replica` of shard `shard`.
    ///
    /// # Panics
    /// Panics when either index is out of range.
    #[must_use]
    pub fn server(&self, shard: ShardId, replica: usize) -> usize {
        assert!(shard < self.shards, "shard {shard} out of range");
        assert!(replica < self.replicas, "replica {replica} out of range");
        shard * self.replicas + replica
    }

    /// Global host ids of all replicas of `shard`.
    #[must_use]
    pub fn servers_of(&self, shard: ShardId) -> std::ops::Range<usize> {
        assert!(shard < self.shards, "shard {shard} out of range");
        let base = shard * self.replicas;
        base..base + self.replicas
    }

    /// First host id of `shard`'s group — the offset between group-local
    /// Raft node ids and global host ids.
    #[must_use]
    pub fn group_base(&self, shard: ShardId) -> usize {
        assert!(shard < self.shards, "shard {shard} out of range");
        shard * self.replicas
    }

    /// The shard a server host belongs to (`None` for non-server hosts).
    #[must_use]
    pub fn shard_of_server(&self, host: usize) -> Option<ShardId> {
        (host < self.n_servers()).then_some(host / self.replicas)
    }

    /// Group-local Raft node id of a server host (`None` for non-servers).
    #[must_use]
    pub fn replica_of_server(&self, host: usize) -> Option<usize> {
        (host < self.n_servers()).then_some(host % self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn routing_is_stable_and_in_range() {
        let router = ShardRouter::new(8);
        for i in 0..1000 {
            let key = format!("key-{i:08}");
            let s = router.shard_of(key.as_bytes());
            assert!(s < 8);
            assert_eq!(s, router.shard_of(key.as_bytes()), "stable routing");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1);
        assert_eq!(router.shard_of(b"anything"), 0);
        assert_eq!(router.shard_of(b""), 0);
    }

    #[test]
    fn routing_spreads_uniform_keys() {
        let router = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[router.shard_of(format!("key-{i:08}").as_bytes())] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (1500..4000).contains(&c),
                "shard {s} got {c} of 10000 keys — hash is badly skewed"
            );
        }
    }

    #[test]
    fn commands_route_by_key_and_ranges_by_start() {
        let router = ShardRouter::new(5);
        let key = Bytes::from_static(b"user-42");
        let expect = router.shard_of(&key);
        let cmds = [
            KvCommand::Put {
                key: key.clone(),
                value: Bytes::from_static(b"v"),
            },
            KvCommand::Get { key: key.clone() },
            KvCommand::Delete { key: key.clone() },
            KvCommand::Cas {
                key: key.clone(),
                expect: None,
                value: Bytes::from_static(b"v"),
            },
            KvCommand::Range {
                start: key.clone(),
                end: Bytes::from_static(b"user-99"),
                limit: 10,
            },
        ];
        for cmd in &cmds {
            assert_eq!(router.shard_of_command(cmd), expect, "{cmd:?}");
        }
    }

    #[test]
    fn placement_round_trips() {
        let map = ShardMap::new(4, 3);
        assert_eq!(map.n_servers(), 12);
        for shard in 0..4 {
            assert_eq!(map.group_base(shard), shard * 3);
            for replica in 0..3 {
                let host = map.server(shard, replica);
                assert!(map.servers_of(shard).contains(&host));
                assert_eq!(map.shard_of_server(host), Some(shard));
                assert_eq!(map.replica_of_server(host), Some(replica));
            }
        }
        // Hosts past the server range (e.g. the client) are unmapped.
        assert_eq!(map.shard_of_server(12), None);
        assert_eq!(map.replica_of_server(12), None);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_replica_rejected() {
        let _ = ShardMap::new(2, 3).server(0, 3);
    }
}
