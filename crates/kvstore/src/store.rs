//! The key-value state machine replicated by Raft (etcd-like semantics).
//!
//! Two layers live here: [`KvStore`], the pure ordered map with revision
//! bookkeeping, and [`Store`], the replicated state machine that wraps it
//! with per-client request deduplication (Raft §6.3 client sessions) and
//! snapshot/restore support. Raft logs [`KvRequest`]s — a command plus the
//! originating `(client, req_id)` — so every replica can recognise a
//! client retry of an already-applied write and return the cached response
//! instead of applying twice.

use bytes::Bytes;
use dynatune_raft::{LogIndex, StateMachine};
use std::collections::BTreeMap;

/// Commands accepted by the KV store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCommand {
    /// Store `value` under `key`.
    Put {
        /// Key bytes.
        key: Bytes,
        /// Value bytes.
        value: Bytes,
    },
    /// Linearizable read of `key` (goes through the log, like etcd's
    /// quorum reads).
    Get {
        /// Key bytes.
        key: Bytes,
    },
    /// Remove `key`.
    Delete {
        /// Key bytes.
        key: Bytes,
    },
    /// Read up to `limit` keys in `[start, end)`.
    Range {
        /// Inclusive start key.
        start: Bytes,
        /// Exclusive end key.
        end: Bytes,
        /// Maximum entries returned.
        limit: usize,
    },
    /// Compare-and-swap: set `value` only if the current value equals
    /// `expect` (`None` = key must be absent).
    Cas {
        /// Key bytes.
        key: Bytes,
        /// Expected current value (`None` expects absence).
        expect: Option<Bytes>,
        /// New value on success.
        value: Bytes,
    },
}

impl KvCommand {
    /// True for commands that mutate nothing (`Get`/`Range`). The serving
    /// layer routes these around the Raft log (lease / ReadIndex reads);
    /// everything else must be replicated.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, KvCommand::Get { .. } | KvCommand::Range { .. })
    }

    /// Approximate wire size of the command: key/value payload plus a
    /// small per-command framing overhead. Feeds the leader's group-commit
    /// byte accounting and the simulator's byte-based replication CPU
    /// charge, so only relative accuracy matters.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        const FRAMING: usize = 16; // tag + lengths
        let body = match self {
            KvCommand::Put { key, value } => key.len() + value.len(),
            KvCommand::Get { key } | KvCommand::Delete { key } => key.len(),
            KvCommand::Range { start, end, .. } => start.len() + end.len(),
            KvCommand::Cas { key, expect, value } => {
                key.len() + expect.as_ref().map_or(0, Bytes::len) + value.len()
            }
        };
        FRAMING + body
    }
}

/// One stored value with etcd-style revision bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The value bytes.
    pub value: Bytes,
    /// Log index of the write that created the key (etcd `create_revision`).
    pub create_revision: LogIndex,
    /// Log index of the last write (etcd `mod_revision`).
    pub mod_revision: LogIndex,
    /// Number of writes to this key since creation.
    pub version: u64,
}

/// Responses produced by applying commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// Put succeeded; carries the previous value if any.
    Put {
        /// Previous value, if the key existed.
        prev: Option<Bytes>,
        /// The write's own revision (its log index — etcd's
        /// `header.revision`). Lets clients order their writes against
        /// read results, which is what the stale-read checkers compare.
        revision: LogIndex,
    },
    /// Get result.
    Get {
        /// The value, if present.
        value: Option<VersionedValue>,
    },
    /// Delete result.
    Delete {
        /// True when a key was actually removed.
        existed: bool,
    },
    /// Range result.
    Range {
        /// Matching key/value pairs in key order.
        entries: Vec<(Bytes, Bytes)>,
        /// Total matches (may exceed `entries.len()` when limited).
        more: bool,
    },
    /// CAS result.
    Cas {
        /// Whether the swap happened.
        success: bool,
    },
}

/// The replicated store: an ordered map plus revision metadata.
///
/// Determinism: state depends only on the applied command sequence, which is
/// the SMR contract Raft provides. `PartialEq` compares full state —
/// integration tests use it to assert replica convergence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Bytes, VersionedValue>,
}

impl KvStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct (non-linearizable) read, for observers and tests.
    #[must_use]
    pub fn peek(&self, key: &[u8]) -> Option<&VersionedValue> {
        self.map.get(key)
    }

    /// Iterate over all live keys in order (observers and tests).
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &VersionedValue)> {
        self.map.iter()
    }

    /// Order-sensitive FNV-1a digest of the full state; replicas that
    /// applied the same command sequence produce identical digests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for (k, v) in &self.map {
            eat(k);
            eat(&v.value);
            eat(&v.create_revision.to_le_bytes());
            eat(&v.mod_revision.to_le_bytes());
            eat(&v.version.to_le_bytes());
        }
        h
    }

    fn put(&mut self, index: LogIndex, key: Bytes, value: Bytes) -> Option<Bytes> {
        match self.map.get_mut(&key) {
            Some(v) => {
                let prev = std::mem::replace(&mut v.value, value);
                v.mod_revision = index;
                v.version += 1;
                Some(prev)
            }
            None => {
                self.map.insert(
                    key,
                    VersionedValue {
                        value,
                        create_revision: index,
                        mod_revision: index,
                        version: 1,
                    },
                );
                None
            }
        }
    }
}

impl KvStore {
    /// Apply one command at `index`. This is the raw map mutation;
    /// replicated deployments go through [`Store`], which adds client
    /// retry deduplication on top.
    pub fn apply_command(&mut self, index: LogIndex, command: &KvCommand) -> KvResponse {
        match command {
            KvCommand::Put { key, value } => KvResponse::Put {
                prev: self.put(index, key.clone(), value.clone()),
                revision: index,
            },
            KvCommand::Get { .. } | KvCommand::Range { .. } => {
                self.read(command).expect("read command")
            }
            KvCommand::Delete { key } => KvResponse::Delete {
                existed: self.map.remove(key).is_some(),
            },
            KvCommand::Cas { key, expect, value } => {
                let current = self.map.get(key).map(|v| &v.value);
                let success = match (current, expect) {
                    (None, None) => true,
                    (Some(c), Some(e)) => c == e,
                    _ => false,
                };
                if success {
                    self.put(index, key.clone(), value.clone());
                }
                KvResponse::Cas { success }
            }
        }
    }

    /// Serve a read command (`Get`/`Range`) from the current state without
    /// touching revision bookkeeping; `None` for mutating commands. This is
    /// what both the log path and the log-free read path execute, so the
    /// two can never diverge on read semantics.
    #[must_use]
    pub fn read(&self, command: &KvCommand) -> Option<KvResponse> {
        match command {
            KvCommand::Get { key } => Some(KvResponse::Get {
                value: self.map.get(key).cloned(),
            }),
            KvCommand::Range { start, end, limit } => {
                let mut entries = Vec::new();
                let mut more = false;
                for (k, v) in self.map.range(start.clone()..end.clone()) {
                    if entries.len() >= *limit {
                        more = true;
                        break;
                    }
                    entries.push((k.clone(), v.value.clone()));
                }
                Some(KvResponse::Range { entries, more })
            }
            KvCommand::Put { .. } | KvCommand::Delete { .. } | KvCommand::Cas { .. } => None,
        }
    }

    /// Rough in-memory size of the stored state, used to model the cost of
    /// serializing and shipping a snapshot.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        const PER_ENTRY_OVERHEAD: usize = 32; // revisions + version + map node
        self.map
            .iter()
            .map(|(k, v)| k.len() + v.value.len() + PER_ENTRY_OVERHEAD)
            .sum()
    }
}

/// Identity of a client request, replicated inside the log entry so every
/// replica can deduplicate retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqOrigin {
    /// The issuing client (world host id).
    pub client: u64,
    /// The client's request id, monotonically increasing per client.
    pub req_id: u64,
}

/// What Raft actually replicates: a command plus (for client traffic) the
/// originating `(client, req_id)`, so a retried request that was already
/// committed under a previous leader is recognised at apply time instead of
/// being applied twice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvRequest {
    /// The issuing client, if this entry came from client traffic.
    pub origin: Option<ReqOrigin>,
    /// The command to apply.
    pub cmd: KvCommand,
}

impl KvRequest {
    /// A request with no client identity (internal / test traffic; never
    /// deduplicated).
    #[must_use]
    pub fn bare(cmd: KvCommand) -> Self {
        Self { origin: None, cmd }
    }

    /// A request on behalf of `client`'s `req_id`.
    #[must_use]
    pub fn from_client(client: u64, req_id: u64, cmd: KvCommand) -> Self {
        Self {
            origin: Some(ReqOrigin { client, req_id }),
            cmd,
        }
    }
}

/// Default reply-cache id window, re-exported from the shared
/// [`RaftConfig`](dynatune_raft::RaftConfig) knob (`reply_window`) whose
/// sizing rule — rate × timeout × retries, with headroom — is documented
/// at [`dynatune_raft::DEFAULT_REPLY_WINDOW`]. Client request ids increase
/// monotonically, so a sliding id window bounds the cache — but it must
/// comfortably exceed the deepest per-client pipeline any workload
/// generates, or a duplicate could commit after its original's entry was
/// evicted and be applied twice.
pub use dynatune_raft::DEFAULT_REPLY_WINDOW;

/// Only mutating commands need exactly-once protection: re-executing a
/// retried read is harmless (it re-reads linearizably at the retry's
/// commit point), and keeping read responses out of the sessions map keeps
/// replicated state — and every snapshot built from it — small.
fn needs_dedup(cmd: &KvCommand) -> bool {
    matches!(
        cmd,
        KvCommand::Put { .. } | KvCommand::Delete { .. } | KvCommand::Cas { .. }
    )
}

/// Rough in-memory size of one cached response (for snapshot costing).
fn response_bytes(resp: &KvResponse) -> usize {
    const PER_REPLY_OVERHEAD: usize = 24;
    let payload = match resp {
        KvResponse::Put { prev, .. } => prev.as_ref().map_or(0, Bytes::len),
        KvResponse::Get { value } => value.as_ref().map_or(0, |v| v.value.len() + 24),
        KvResponse::Delete { .. } | KvResponse::Cas { .. } => 1,
        KvResponse::Range { entries, .. } => entries.iter().map(|(k, v)| k.len() + v.len()).sum(),
    };
    PER_REPLY_OVERHEAD + payload
}

/// The replicated state machine: the [`KvStore`] map plus per-client reply
/// caches (Raft §6.3 client sessions).
///
/// A client that loses its response to a leadership change retries the same
/// `req_id`, possibly through a new leader. Both the original and the
/// retried log entry may commit; without the cache each replica would apply
/// the write twice (bumping versions, re-running CAS against the new
/// state). `Store::apply` recognises the duplicate by its
/// [`ReqOrigin`] and replays the cached response instead.
///
/// The cache is part of replicated state: it is filled identically on every
/// replica (same applied sequence) and travels inside snapshots, so a
/// follower restored via `InstallSnapshot` deduplicates exactly like one
/// that replayed the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Store {
    kv: KvStore,
    /// Per-client window of recent `req_id → response`.
    sessions: BTreeMap<u64, BTreeMap<u64, KvResponse>>,
    /// Sliding id window retained per client (the shared
    /// `RaftConfig::reply_window` knob; identical on every replica, so it
    /// is config rather than replicated state even though it rides along
    /// in snapshot clones).
    reply_window: u64,
}

impl Default for Store {
    fn default() -> Self {
        Self::with_reply_window(DEFAULT_REPLY_WINDOW)
    }
}

impl Store {
    /// Empty store with the default reply window.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store retaining `window` reply ids per client (the validated
    /// `RaftConfig::reply_window` knob; see
    /// [`DEFAULT_REPLY_WINDOW`] for the sizing rule).
    #[must_use]
    pub fn with_reply_window(window: u64) -> Self {
        assert!(window > 0, "zero reply window");
        Self {
            kv: KvStore::default(),
            sessions: BTreeMap::new(),
            reply_window: window,
        }
    }

    /// The configured per-client reply-cache id window.
    #[must_use]
    pub fn reply_window(&self) -> u64 {
        self.reply_window
    }

    /// The underlying KV map (observers).
    #[must_use]
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// True when no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }

    /// Direct (non-linearizable) read, for observers and tests.
    #[must_use]
    pub fn peek(&self, key: &[u8]) -> Option<&VersionedValue> {
        self.kv.peek(key)
    }

    /// Order-sensitive digest of the KV state (replica convergence checks).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.kv.digest()
    }

    /// Rough in-memory size of the snapshot this store would produce:
    /// the KV map plus the replicated sessions cache (both travel inside
    /// `InstallSnapshot`, so both are charged by the size-aware cost
    /// model).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let sessions: usize = self
            .sessions
            .values()
            .flat_map(BTreeMap::values)
            .map(response_bytes)
            .sum();
        self.kv.approx_bytes() + sessions
    }

    /// Cached reply for a client request, if it was already applied.
    #[must_use]
    pub fn cached_reply(&self, origin: ReqOrigin) -> Option<&KvResponse> {
        self.sessions.get(&origin.client)?.get(&origin.req_id)
    }

    /// The log-free read entry point: serve a `Get`/`Range` from the
    /// current applied state (`None` for mutating commands). Callers must
    /// hold a valid [`ReadGrant`](dynatune_raft::ReadGrant) whose
    /// `read_index` this store has applied through.
    ///
    /// **Invariant — reads stay out of the per-client reply cache, on both
    /// ends.** Responses served here are never inserted into `sessions`
    /// (only mutating commands are, see `needs_dedup`), and this path
    /// never consults `cached_reply`. Both directions matter for
    /// linearizability: a client that lease-read through a leader, lost
    /// the response to a failover, and retries the *same* `req_id` at the
    /// new leader must re-execute against the new leader's current state —
    /// replaying a cached pre-failover value would serve a stale read, and
    /// caching the fresh one would bloat replicated state (and every
    /// snapshot built from it) for a response that retries can simply
    /// recompute.
    #[must_use]
    pub fn read(&self, command: &KvCommand) -> Option<KvResponse> {
        self.kv.read(command)
    }
}

impl StateMachine for Store {
    type Command = KvRequest;
    type Response = KvResponse;
    type Snapshot = Store;

    fn command_bytes(request: &KvRequest) -> usize {
        const ORIGIN: usize = 16; // (client, req_id)
        ORIGIN + request.cmd.payload_bytes()
    }

    fn apply(&mut self, index: LogIndex, request: &KvRequest) -> KvResponse {
        match request.origin {
            Some(origin) if needs_dedup(&request.cmd) => {
                if let Some(cached) = self.cached_reply(origin) {
                    // Duplicate of an already-applied request: idempotent
                    // replay of the original response.
                    return cached.clone();
                }
                let resp = self.kv.apply_command(index, &request.cmd);
                let replies = self.sessions.entry(origin.client).or_default();
                replies.insert(origin.req_id, resp.clone());
                // Slide the window: drop replies no live retry can ask for.
                let newest = *replies.keys().next_back().expect("just inserted");
                let window = self.reply_window;
                while let Some((&oldest, _)) = replies.iter().next() {
                    if oldest + window <= newest {
                        replies.remove(&oldest);
                    } else {
                        break;
                    }
                }
                resp
            }
            // Reads (and origin-less internal traffic) bypass the cache:
            // re-execution is harmless and the sessions map stays small.
            _ => self.kv.apply_command(index, &request.cmd),
        }
    }

    fn snapshot(&self) -> Store {
        self.clone()
    }

    fn restore(&mut self, snapshot: &Store) {
        *self = snapshot.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_roundtrip() {
        let mut kv = KvStore::new();
        let r = kv.apply_command(
            1,
            &KvCommand::Put {
                key: b("a"),
                value: b("1"),
            },
        );
        assert_eq!(
            r,
            KvResponse::Put {
                prev: None,
                revision: 1
            }
        );
        let r = kv.apply_command(2, &KvCommand::Get { key: b("a") });
        match r {
            KvResponse::Get { value: Some(v) } => {
                assert_eq!(v.value, b("1"));
                assert_eq!(v.create_revision, 1);
                assert_eq!(v.mod_revision, 1);
                assert_eq!(v.version, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn put_overwrites_and_tracks_revisions() {
        let mut kv = KvStore::new();
        kv.apply_command(
            1,
            &KvCommand::Put {
                key: b("a"),
                value: b("1"),
            },
        );
        let r = kv.apply_command(
            5,
            &KvCommand::Put {
                key: b("a"),
                value: b("2"),
            },
        );
        assert_eq!(
            r,
            KvResponse::Put {
                prev: Some(b("1")),
                revision: 5
            }
        );
        let v = kv.peek(b"a").unwrap();
        assert_eq!(v.create_revision, 1);
        assert_eq!(v.mod_revision, 5);
        assert_eq!(v.version, 2);
    }

    #[test]
    fn get_missing_is_none() {
        let mut kv = KvStore::new();
        let r = kv.apply_command(1, &KvCommand::Get { key: b("nope") });
        assert_eq!(r, KvResponse::Get { value: None });
    }

    #[test]
    fn delete_semantics() {
        let mut kv = KvStore::new();
        kv.apply_command(
            1,
            &KvCommand::Put {
                key: b("a"),
                value: b("1"),
            },
        );
        assert_eq!(
            kv.apply_command(2, &KvCommand::Delete { key: b("a") }),
            KvResponse::Delete { existed: true }
        );
        assert_eq!(
            kv.apply_command(3, &KvCommand::Delete { key: b("a") }),
            KvResponse::Delete { existed: false }
        );
        assert!(kv.is_empty());
    }

    #[test]
    fn range_respects_bounds_and_limit() {
        let mut kv = KvStore::new();
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            kv.apply_command(
                i as u64 + 1,
                &KvCommand::Put {
                    key: b(k),
                    value: b(&i.to_string()),
                },
            );
        }
        let r = kv.apply_command(
            9,
            &KvCommand::Range {
                start: b("b"),
                end: b("d"),
                limit: 10,
            },
        );
        match r {
            KvResponse::Range { entries, more } => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0, b("b"));
                assert_eq!(entries[1].0, b("c"));
                assert!(!more);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = kv.apply_command(
            10,
            &KvCommand::Range {
                start: b("a"),
                end: b("z"),
                limit: 2,
            },
        );
        match r {
            KvResponse::Range { entries, more } => {
                assert_eq!(entries.len(), 2);
                assert!(more);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cas_success_and_failure() {
        let mut kv = KvStore::new();
        // Create-if-absent.
        assert_eq!(
            kv.apply_command(
                1,
                &KvCommand::Cas {
                    key: b("k"),
                    expect: None,
                    value: b("v1")
                }
            ),
            KvResponse::Cas { success: true }
        );
        // Wrong expectation fails and leaves the value alone.
        assert_eq!(
            kv.apply_command(
                2,
                &KvCommand::Cas {
                    key: b("k"),
                    expect: Some(b("zzz")),
                    value: b("v2")
                }
            ),
            KvResponse::Cas { success: false }
        );
        assert_eq!(kv.peek(b"k").unwrap().value, b("v1"));
        // Correct expectation succeeds.
        assert_eq!(
            kv.apply_command(
                3,
                &KvCommand::Cas {
                    key: b("k"),
                    expect: Some(b("v1")),
                    value: b("v2")
                }
            ),
            KvResponse::Cas { success: true }
        );
        assert_eq!(kv.peek(b"k").unwrap().value, b("v2"));
        assert_eq!(kv.peek(b"k").unwrap().version, 2);
        // CAS expecting absence fails on a live key.
        assert_eq!(
            kv.apply_command(
                4,
                &KvCommand::Cas {
                    key: b("k"),
                    expect: None,
                    value: b("v3")
                }
            ),
            KvResponse::Cas { success: false }
        );
    }

    #[test]
    fn store_deduplicates_client_retries() {
        let mut s = Store::new();
        let put = KvRequest::from_client(
            7,
            1,
            KvCommand::Put {
                key: b("k"),
                value: b("v"),
            },
        );
        let first = s.apply(1, &put);
        assert_eq!(
            first,
            KvResponse::Put {
                prev: None,
                revision: 1
            }
        );
        // The same (client, req_id) committed again (client retried through
        // a new leader): the apply is a no-op replaying the cached reply.
        let second = s.apply(2, &put);
        assert_eq!(second, first, "retry sees the original response");
        let v = s.peek(b"k").unwrap();
        assert_eq!(v.version, 1, "write applied exactly once");
        assert_eq!(v.mod_revision, 1);
        // A *new* req_id from the same client applies normally.
        let put2 = KvRequest::from_client(
            7,
            2,
            KvCommand::Put {
                key: b("k"),
                value: b("w"),
            },
        );
        assert_eq!(
            s.apply(3, &put2),
            KvResponse::Put {
                prev: Some(b("v")),
                revision: 3
            }
        );
        assert_eq!(s.peek(b"k").unwrap().version, 2);
    }

    #[test]
    fn store_dedup_keeps_cas_exactly_once() {
        let mut s = Store::new();
        let cas = KvRequest::from_client(
            3,
            10,
            KvCommand::Cas {
                key: b("c"),
                expect: None,
                value: b("1"),
            },
        );
        assert_eq!(s.apply(1, &cas), KvResponse::Cas { success: true });
        // Re-applied (duplicate commit): must NOT re-run against the new
        // state (which would report failure) — the cached success replays.
        assert_eq!(s.apply(2, &cas), KvResponse::Cas { success: true });
        assert_eq!(s.peek(b"c").unwrap().version, 1);
    }

    #[test]
    fn store_bare_requests_bypass_the_cache() {
        let mut s = Store::new();
        let put = KvRequest::bare(KvCommand::Put {
            key: b("k"),
            value: b("v"),
        });
        s.apply(1, &put);
        s.apply(2, &put);
        assert_eq!(s.peek(b"k").unwrap().version, 2, "no dedup without origin");
    }

    #[test]
    fn store_reply_window_slides() {
        // The window is the configurable RaftConfig::reply_window knob; a
        // small one keeps the test fast while exercising the same eviction.
        const WINDOW: u64 = 64;
        let mut s = Store::with_reply_window(WINDOW);
        assert_eq!(s.reply_window(), WINDOW);
        for req_id in 0..(WINDOW + 10) {
            let put = KvRequest::from_client(
                1,
                req_id,
                KvCommand::Put {
                    key: b("k"),
                    value: b("v"),
                },
            );
            s.apply(req_id + 1, &put);
        }
        let newest = WINDOW + 9;
        assert!(s
            .cached_reply(ReqOrigin {
                client: 1,
                req_id: 0
            })
            .is_none());
        assert!(s
            .cached_reply(ReqOrigin {
                client: 1,
                req_id: newest
            })
            .is_some());
        assert_eq!(s.sessions[&1].len() as u64, WINDOW);
        // The default window follows the shared knob's sizing rule.
        assert_eq!(Store::new().reply_window(), DEFAULT_REPLY_WINDOW);
    }

    #[test]
    fn store_reads_bypass_the_reply_cache() {
        let mut s = Store::new();
        s.apply(
            1,
            &KvRequest::bare(KvCommand::Put {
                key: b("k"),
                value: b("v1"),
            }),
        );
        let get = KvRequest::from_client(9, 5, KvCommand::Get { key: b("k") });
        let first = s.apply(2, &get);
        assert!(matches!(first, KvResponse::Get { value: Some(_) }));
        assert!(
            s.cached_reply(ReqOrigin {
                client: 9,
                req_id: 5
            })
            .is_none(),
            "reads are idempotent and must not bloat replicated state"
        );
        // A retried read re-executes and sees the current state.
        s.apply(
            3,
            &KvRequest::bare(KvCommand::Put {
                key: b("k"),
                value: b("v2"),
            }),
        );
        match s.apply(4, &get) {
            KvResponse::Get { value: Some(v) } => assert_eq!(v.value, b("v2")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn store_approx_bytes_counts_the_sessions_cache() {
        let mut s = Store::new();
        s.apply(
            1,
            &KvRequest::from_client(
                1,
                0,
                KvCommand::Put {
                    key: b("k"),
                    value: b("v"),
                },
            ),
        );
        // The snapshot ships kv + sessions; the estimate must cover both.
        assert!(
            s.approx_bytes() > s.kv().approx_bytes(),
            "sessions cache must be charged by the size-aware cost model"
        );
    }

    #[test]
    fn store_snapshot_round_trip_carries_sessions() {
        let mut s = Store::new();
        let put = KvRequest::from_client(
            5,
            1,
            KvCommand::Put {
                key: b("a"),
                value: b("1"),
            },
        );
        s.apply(1, &put);
        let snap = s.snapshot();
        let mut restored = Store::new();
        restored.restore(&snap);
        assert_eq!(restored, s);
        assert_eq!(restored.digest(), s.digest());
        // The restored replica deduplicates the same retry.
        // The replay returns the ORIGINAL response (revision 1, not 9).
        assert_eq!(
            restored.apply(9, &put),
            KvResponse::Put {
                prev: None,
                revision: 1
            }
        );
        assert_eq!(restored.peek(b"a").unwrap().version, 1);
        assert!(restored.approx_bytes() > 0);
    }

    #[test]
    fn replicas_converge_under_same_command_sequence() {
        let cmds = [
            KvCommand::Put {
                key: b("x"),
                value: b("1"),
            },
            KvCommand::Cas {
                key: b("x"),
                expect: Some(b("1")),
                value: b("2"),
            },
            KvCommand::Delete { key: b("y") },
            KvCommand::Put {
                key: b("y"),
                value: b("3"),
            },
            KvCommand::Delete { key: b("x") },
        ];
        let mut a = KvStore::new();
        let mut c = KvStore::new();
        for (i, cmd) in cmds.iter().enumerate() {
            a.apply_command(i as u64 + 1, cmd);
            c.apply_command(i as u64 + 1, cmd);
        }
        assert_eq!(a.map, c.map);
    }
}
