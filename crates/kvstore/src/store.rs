//! The key-value state machine replicated by Raft (etcd-like semantics).

use bytes::Bytes;
use dynatune_raft::{LogIndex, StateMachine};
use std::collections::BTreeMap;

/// Commands accepted by the KV store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCommand {
    /// Store `value` under `key`.
    Put {
        /// Key bytes.
        key: Bytes,
        /// Value bytes.
        value: Bytes,
    },
    /// Linearizable read of `key` (goes through the log, like etcd's
    /// quorum reads).
    Get {
        /// Key bytes.
        key: Bytes,
    },
    /// Remove `key`.
    Delete {
        /// Key bytes.
        key: Bytes,
    },
    /// Read up to `limit` keys in `[start, end)`.
    Range {
        /// Inclusive start key.
        start: Bytes,
        /// Exclusive end key.
        end: Bytes,
        /// Maximum entries returned.
        limit: usize,
    },
    /// Compare-and-swap: set `value` only if the current value equals
    /// `expect` (`None` = key must be absent).
    Cas {
        /// Key bytes.
        key: Bytes,
        /// Expected current value (`None` expects absence).
        expect: Option<Bytes>,
        /// New value on success.
        value: Bytes,
    },
}

/// One stored value with etcd-style revision bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The value bytes.
    pub value: Bytes,
    /// Log index of the write that created the key (etcd `create_revision`).
    pub create_revision: LogIndex,
    /// Log index of the last write (etcd `mod_revision`).
    pub mod_revision: LogIndex,
    /// Number of writes to this key since creation.
    pub version: u64,
}

/// Responses produced by applying commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// Put succeeded; carries the previous value if any.
    Put {
        /// Previous value, if the key existed.
        prev: Option<Bytes>,
    },
    /// Get result.
    Get {
        /// The value, if present.
        value: Option<VersionedValue>,
    },
    /// Delete result.
    Delete {
        /// True when a key was actually removed.
        existed: bool,
    },
    /// Range result.
    Range {
        /// Matching key/value pairs in key order.
        entries: Vec<(Bytes, Bytes)>,
        /// Total matches (may exceed `entries.len()` when limited).
        more: bool,
    },
    /// CAS result.
    Cas {
        /// Whether the swap happened.
        success: bool,
    },
}

/// The replicated store: an ordered map plus revision metadata.
///
/// Determinism: state depends only on the applied command sequence, which is
/// the SMR contract Raft provides. `PartialEq` compares full state —
/// integration tests use it to assert replica convergence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Bytes, VersionedValue>,
}

impl KvStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct (non-linearizable) read, for observers and tests.
    #[must_use]
    pub fn peek(&self, key: &[u8]) -> Option<&VersionedValue> {
        self.map.get(key)
    }

    /// Iterate over all live keys in order (observers and tests).
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &VersionedValue)> {
        self.map.iter()
    }

    /// Order-sensitive FNV-1a digest of the full state; replicas that
    /// applied the same command sequence produce identical digests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for (k, v) in &self.map {
            eat(k);
            eat(&v.value);
            eat(&v.create_revision.to_le_bytes());
            eat(&v.mod_revision.to_le_bytes());
            eat(&v.version.to_le_bytes());
        }
        h
    }

    fn put(&mut self, index: LogIndex, key: Bytes, value: Bytes) -> Option<Bytes> {
        match self.map.get_mut(&key) {
            Some(v) => {
                let prev = std::mem::replace(&mut v.value, value);
                v.mod_revision = index;
                v.version += 1;
                Some(prev)
            }
            None => {
                self.map.insert(
                    key,
                    VersionedValue {
                        value,
                        create_revision: index,
                        mod_revision: index,
                        version: 1,
                    },
                );
                None
            }
        }
    }
}

impl StateMachine for KvStore {
    type Command = KvCommand;
    type Response = KvResponse;

    fn apply(&mut self, index: LogIndex, command: &KvCommand) -> KvResponse {
        match command {
            KvCommand::Put { key, value } => KvResponse::Put {
                prev: self.put(index, key.clone(), value.clone()),
            },
            KvCommand::Get { key } => KvResponse::Get {
                value: self.map.get(key).cloned(),
            },
            KvCommand::Delete { key } => KvResponse::Delete {
                existed: self.map.remove(key).is_some(),
            },
            KvCommand::Range { start, end, limit } => {
                let mut entries = Vec::new();
                let mut more = false;
                for (k, v) in self.map.range(start.clone()..end.clone()) {
                    if entries.len() >= *limit {
                        more = true;
                        break;
                    }
                    entries.push((k.clone(), v.value.clone()));
                }
                KvResponse::Range { entries, more }
            }
            KvCommand::Cas { key, expect, value } => {
                let current = self.map.get(key).map(|v| &v.value);
                let success = match (current, expect) {
                    (None, None) => true,
                    (Some(c), Some(e)) => c == e,
                    _ => false,
                };
                if success {
                    self.put(index, key.clone(), value.clone());
                }
                KvResponse::Cas { success }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_roundtrip() {
        let mut kv = KvStore::new();
        let r = kv.apply(
            1,
            &KvCommand::Put {
                key: b("a"),
                value: b("1"),
            },
        );
        assert_eq!(r, KvResponse::Put { prev: None });
        let r = kv.apply(2, &KvCommand::Get { key: b("a") });
        match r {
            KvResponse::Get { value: Some(v) } => {
                assert_eq!(v.value, b("1"));
                assert_eq!(v.create_revision, 1);
                assert_eq!(v.mod_revision, 1);
                assert_eq!(v.version, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn put_overwrites_and_tracks_revisions() {
        let mut kv = KvStore::new();
        kv.apply(
            1,
            &KvCommand::Put {
                key: b("a"),
                value: b("1"),
            },
        );
        let r = kv.apply(
            5,
            &KvCommand::Put {
                key: b("a"),
                value: b("2"),
            },
        );
        assert_eq!(r, KvResponse::Put { prev: Some(b("1")) });
        let v = kv.peek(b"a").unwrap();
        assert_eq!(v.create_revision, 1);
        assert_eq!(v.mod_revision, 5);
        assert_eq!(v.version, 2);
    }

    #[test]
    fn get_missing_is_none() {
        let mut kv = KvStore::new();
        let r = kv.apply(1, &KvCommand::Get { key: b("nope") });
        assert_eq!(r, KvResponse::Get { value: None });
    }

    #[test]
    fn delete_semantics() {
        let mut kv = KvStore::new();
        kv.apply(
            1,
            &KvCommand::Put {
                key: b("a"),
                value: b("1"),
            },
        );
        assert_eq!(
            kv.apply(2, &KvCommand::Delete { key: b("a") }),
            KvResponse::Delete { existed: true }
        );
        assert_eq!(
            kv.apply(3, &KvCommand::Delete { key: b("a") }),
            KvResponse::Delete { existed: false }
        );
        assert!(kv.is_empty());
    }

    #[test]
    fn range_respects_bounds_and_limit() {
        let mut kv = KvStore::new();
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            kv.apply(
                i as u64 + 1,
                &KvCommand::Put {
                    key: b(k),
                    value: b(&i.to_string()),
                },
            );
        }
        let r = kv.apply(
            9,
            &KvCommand::Range {
                start: b("b"),
                end: b("d"),
                limit: 10,
            },
        );
        match r {
            KvResponse::Range { entries, more } => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0, b("b"));
                assert_eq!(entries[1].0, b("c"));
                assert!(!more);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = kv.apply(
            10,
            &KvCommand::Range {
                start: b("a"),
                end: b("z"),
                limit: 2,
            },
        );
        match r {
            KvResponse::Range { entries, more } => {
                assert_eq!(entries.len(), 2);
                assert!(more);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cas_success_and_failure() {
        let mut kv = KvStore::new();
        // Create-if-absent.
        assert_eq!(
            kv.apply(
                1,
                &KvCommand::Cas {
                    key: b("k"),
                    expect: None,
                    value: b("v1")
                }
            ),
            KvResponse::Cas { success: true }
        );
        // Wrong expectation fails and leaves the value alone.
        assert_eq!(
            kv.apply(
                2,
                &KvCommand::Cas {
                    key: b("k"),
                    expect: Some(b("zzz")),
                    value: b("v2")
                }
            ),
            KvResponse::Cas { success: false }
        );
        assert_eq!(kv.peek(b"k").unwrap().value, b("v1"));
        // Correct expectation succeeds.
        assert_eq!(
            kv.apply(
                3,
                &KvCommand::Cas {
                    key: b("k"),
                    expect: Some(b("v1")),
                    value: b("v2")
                }
            ),
            KvResponse::Cas { success: true }
        );
        assert_eq!(kv.peek(b"k").unwrap().value, b("v2"));
        assert_eq!(kv.peek(b"k").unwrap().version, 2);
        // CAS expecting absence fails on a live key.
        assert_eq!(
            kv.apply(
                4,
                &KvCommand::Cas {
                    key: b("k"),
                    expect: None,
                    value: b("v3")
                }
            ),
            KvResponse::Cas { success: false }
        );
    }

    #[test]
    fn replicas_converge_under_same_command_sequence() {
        let cmds = [
            KvCommand::Put {
                key: b("x"),
                value: b("1"),
            },
            KvCommand::Cas {
                key: b("x"),
                expect: Some(b("1")),
                value: b("2"),
            },
            KvCommand::Delete { key: b("y") },
            KvCommand::Put {
                key: b("y"),
                value: b("3"),
            },
            KvCommand::Delete { key: b("x") },
        ];
        let mut a = KvStore::new();
        let mut c = KvStore::new();
        for (i, cmd) in cmds.iter().enumerate() {
            a.apply(i as u64 + 1, cmd);
            c.apply(i as u64 + 1, cmd);
        }
        assert_eq!(a.map, c.map);
    }
}
