//! Open-loop workload generation (§IV-B2 of the paper).
//!
//! The paper's throughput experiment drives etcd with open-loop clients
//! whose offered rate ramps up in 1000 req/s increments, each level held
//! for 10 s. [`WorkloadGen`] reproduces that: it emits command arrival
//! times from a rate schedule (requests are sent regardless of completions
//! — open loop), with Zipf-distributed keys and configurable value sizes.

use crate::store::KvCommand;
use bytes::Bytes;
use dynatune_simnet::rng::Rng;
use dynatune_simnet::SimTime;
use dynatune_stats::Zipf;
use std::time::Duration;

/// Mix of operations, as fractions summing to at most 1 (the remainder
/// becomes `Get`s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of `Put`s.
    pub put: f64,
    /// Fraction of `Delete`s.
    pub delete: f64,
    /// Fraction of `Cas` operations.
    pub cas: f64,
}

impl OpMix {
    /// Write-heavy default (etcd benchmark style: mostly puts).
    #[must_use]
    pub fn write_heavy() -> Self {
        Self {
            put: 0.9,
            delete: 0.05,
            cas: 0.05,
        }
    }

    /// Read-mostly mix: 95% `Get`s, 5% `Put`s — the serving profile the
    /// log-free read path is built for.
    #[must_use]
    pub fn read_mostly() -> Self {
        Self {
            put: 0.05,
            delete: 0.0,
            cas: 0.0,
        }
    }

    /// Validate the fractions.
    ///
    /// # Panics
    /// Panics when fractions are negative or exceed 1 in total.
    pub fn validate(&self) {
        assert!(
            self.put >= 0.0 && self.delete >= 0.0 && self.cas >= 0.0,
            "negative fraction"
        );
        assert!(
            self.put + self.delete + self.cas <= 1.0 + 1e-9,
            "mix exceeds 1"
        );
    }
}

/// A single step of the offered-load schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateStep {
    /// Offered rate in requests per second.
    pub rps: f64,
    /// How long the level is held.
    pub hold: Duration,
}

/// Open-loop workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    steps: Vec<RateStep>,
    mix: OpMix,
    keys: Zipf,
    key_space: usize,
    value_size: usize,
    rng: Rng,
    /// Current position.
    step_idx: usize,
    step_started: SimTime,
    next_arrival: SimTime,
    emitted: u64,
}

impl WorkloadGen {
    /// Create a generator starting at `start`.
    ///
    /// # Panics
    /// Panics on an empty schedule or zero key space.
    #[must_use]
    pub fn new(
        steps: Vec<RateStep>,
        mix: OpMix,
        key_space: usize,
        zipf_theta: f64,
        value_size: usize,
        rng: Rng,
        start: SimTime,
    ) -> Self {
        assert!(!steps.is_empty(), "workload needs at least one rate step");
        assert!(key_space > 0, "empty key space");
        mix.validate();
        let mut gen = Self {
            steps,
            mix,
            keys: Zipf::new(key_space, zipf_theta),
            key_space,
            value_size,
            rng,
            step_idx: 0,
            step_started: start,
            next_arrival: start,
            emitted: 0,
        };
        gen.schedule_next(start);
        gen
    }

    /// The paper's ramp: 1000, 2000, ... `peak_rps` req/s, each held `hold`.
    #[must_use]
    pub fn paper_ramp(peak_rps: f64, increment: f64, hold: Duration) -> Vec<RateStep> {
        assert!(increment > 0.0 && peak_rps >= increment, "bad ramp");
        let mut steps = Vec::new();
        let mut rps = increment;
        while rps <= peak_rps + 1e-9 {
            steps.push(RateStep { rps, hold });
            rps += increment;
        }
        steps
    }

    fn current_rate(&self) -> f64 {
        self.steps[self.step_idx.min(self.steps.len() - 1)].rps
    }

    /// Offered rate at the current instant (for reporting).
    #[must_use]
    pub fn offered_rps(&self) -> f64 {
        self.current_rate()
    }

    /// Index of the rate step the next arrival belongs to (clamped to the
    /// last step once finished). Clients use this to bucket latencies per
    /// offered-load level.
    #[must_use]
    pub fn step_index(&self) -> usize {
        self.step_idx.min(self.steps.len() - 1)
    }

    /// The schedule this generator runs.
    #[must_use]
    pub fn steps(&self) -> &[RateStep] {
        &self.steps
    }

    /// Total requests emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// True when the schedule has been exhausted.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.step_idx >= self.steps.len()
    }

    /// Time of the next arrival (None when finished).
    #[must_use]
    pub fn peek_next(&self) -> Option<SimTime> {
        (!self.finished()).then_some(self.next_arrival)
    }

    fn schedule_next(&mut self, from: SimTime) {
        let mut from = from;
        loop {
            if self.finished() {
                return;
            }
            let step = self.steps[self.step_idx];
            // Exponential inter-arrival (Poisson process) at the step rate.
            let gap = self.rng.exponential(1.0 / step.rps.max(1e-9));
            let candidate = from + Duration::from_secs_f64(gap);
            if candidate < self.step_started + step.hold {
                self.next_arrival = candidate;
                return;
            }
            // Move to the next step; arrivals restart at the boundary.
            self.step_started += step.hold;
            self.step_idx += 1;
            from = self.step_started;
        }
    }

    fn make_key(&mut self) -> Bytes {
        let rank = self.keys.sample(self.rng.f64());
        Bytes::from(format!("key-{rank:08}"))
    }

    fn make_value(&mut self) -> Bytes {
        let mut v = vec![0u8; self.value_size];
        for chunk in v.chunks_mut(8) {
            let r = self.rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&r[..n]);
        }
        Bytes::from(v)
    }

    /// Produce the next `(arrival_time, command)` pair, advancing the
    /// schedule. Returns `None` once the schedule is exhausted.
    pub fn next_request(&mut self) -> Option<(SimTime, KvCommand)> {
        if self.finished() {
            return None;
        }
        let at = self.next_arrival;
        let key = self.make_key();
        let roll = self.rng.f64();
        let cmd = if roll < self.mix.put {
            KvCommand::Put {
                key,
                value: self.make_value(),
            }
        } else if roll < self.mix.put + self.mix.delete {
            KvCommand::Delete { key }
        } else if roll < self.mix.put + self.mix.delete + self.mix.cas {
            KvCommand::Cas {
                key,
                expect: None,
                value: self.make_value(),
            }
        } else {
            KvCommand::Get { key }
        };
        self.emitted += 1;
        self.schedule_next(at);
        Some((at, cmd))
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn key_space(&self) -> usize {
        self.key_space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_with(steps: Vec<RateStep>) -> WorkloadGen {
        WorkloadGen::new(
            steps,
            OpMix::write_heavy(),
            1000,
            0.99,
            64,
            Rng::new(7),
            SimTime::ZERO,
        )
    }

    #[test]
    fn paper_ramp_shape() {
        let steps = WorkloadGen::paper_ramp(15_000.0, 1000.0, Duration::from_secs(10));
        assert_eq!(steps.len(), 15);
        assert_eq!(steps[0].rps, 1000.0);
        assert_eq!(steps[14].rps, 15_000.0);
        assert!(steps.iter().all(|s| s.hold == Duration::from_secs(10)));
    }

    #[test]
    fn arrivals_are_monotone_and_respect_rate() {
        let mut g = gen_with(vec![RateStep {
            rps: 1000.0,
            hold: Duration::from_secs(5),
        }]);
        let mut last = SimTime::ZERO;
        let mut count = 0u64;
        while let Some((at, _)) = g.next_request() {
            assert!(at >= last, "arrivals must be monotone");
            assert!(at < SimTime::from_secs(5), "inside the schedule window");
            last = at;
            count += 1;
        }
        // ~1000 rps for 5 s => ~5000 requests (Poisson: wide tolerance).
        assert!((4000..6000).contains(&count), "count = {count}");
        assert!(g.finished());
        assert_eq!(g.emitted(), count);
    }

    #[test]
    fn rate_steps_advance() {
        let mut g = gen_with(vec![
            RateStep {
                rps: 100.0,
                hold: Duration::from_secs(2),
            },
            RateStep {
                rps: 2000.0,
                hold: Duration::from_secs(2),
            },
        ]);
        let mut first_window = 0u64;
        let mut second_window = 0u64;
        while let Some((at, _)) = g.next_request() {
            if at < SimTime::from_secs(2) {
                first_window += 1;
            } else {
                second_window += 1;
            }
        }
        assert!(first_window < 400, "low step too fast: {first_window}");
        assert!(second_window > 2500, "high step too slow: {second_window}");
    }

    #[test]
    fn op_mix_fractions_roughly_hold() {
        let mut g = WorkloadGen::new(
            vec![RateStep {
                rps: 5000.0,
                hold: Duration::from_secs(4),
            }],
            OpMix {
                put: 0.5,
                delete: 0.25,
                cas: 0.0,
            },
            100,
            0.0,
            16,
            Rng::new(11),
            SimTime::ZERO,
        );
        let mut puts = 0u64;
        let mut dels = 0u64;
        let mut gets = 0u64;
        let mut total = 0u64;
        while let Some((_, cmd)) = g.next_request() {
            total += 1;
            match cmd {
                KvCommand::Put { .. } => puts += 1,
                KvCommand::Delete { .. } => dels += 1,
                KvCommand::Get { .. } => gets += 1,
                _ => {}
            }
        }
        let frac = |n: u64| n as f64 / total as f64;
        assert!((frac(puts) - 0.5).abs() < 0.03, "puts {}", frac(puts));
        assert!((frac(dels) - 0.25).abs() < 0.03, "dels {}", frac(dels));
        assert!((frac(gets) - 0.25).abs() < 0.03, "gets {}", frac(gets));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut g = WorkloadGen::new(
                vec![RateStep {
                    rps: 500.0,
                    hold: Duration::from_secs(1),
                }],
                OpMix::write_heavy(),
                100,
                0.99,
                32,
                Rng::new(seed),
                SimTime::ZERO,
            );
            let mut out = Vec::new();
            while let Some((at, cmd)) = g.next_request() {
                out.push((at, format!("{cmd:?}")));
            }
            out
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn zipf_keys_are_skewed() {
        let mut g = gen_with(vec![RateStep {
            rps: 5000.0,
            hold: Duration::from_secs(2),
        }]);
        let mut head = 0u64;
        let mut total = 0u64;
        while let Some((_, cmd)) = g.next_request() {
            let key = match &cmd {
                KvCommand::Put { key, .. }
                | KvCommand::Get { key }
                | KvCommand::Delete { key }
                | KvCommand::Cas { key, .. } => key.clone(),
                KvCommand::Range { start, .. } => start.clone(),
            };
            if key == "key-00000000" {
                head += 1;
            }
            total += 1;
        }
        // Zipf(1000, 0.99): rank 0 carries ~12% of the mass.
        let frac = head as f64 / total as f64;
        assert!(frac > 0.05, "head key fraction {frac}");
    }

    #[test]
    fn value_size_respected() {
        let mut g = gen_with(vec![RateStep {
            rps: 100.0,
            hold: Duration::from_secs(1),
        }]);
        while let Some((_, cmd)) = g.next_request() {
            if let KvCommand::Put { value, .. } = cmd {
                assert_eq!(value.len(), 64);
            }
        }
    }
}
