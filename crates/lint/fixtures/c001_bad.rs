//! C001 must fire (scanned as a `crates/raft` source): imports reaching
//! *up* the crate DAG, via `use`, an alias, and a fully-qualified path.

use dynatune_cluster::ClusterSim;
use dynatune_repro as umbrella;

pub fn upward() -> usize {
    let _sim: Option<ClusterSim> = None;
    dynatune_bench::entry_count() + umbrella::version()
}
