//! C001 must stay silent (scanned as a `crates/raft` source): declared
//! downward edges, self-references, and `dynatune_`-prefixed identifiers
//! that are not workspace crates at all.

use dynatune_core::FollowerTuner;
use dynatune_simnet::SimTime;

pub fn downward(tuner: &FollowerTuner) -> SimTime {
    let _tuner = tuner;
    dynatune_raft::log::first_index();
    dynatune_detects_much_faster_than_raft();
    SimTime::ZERO
}

fn dynatune_detects_much_faster_than_raft() {}
