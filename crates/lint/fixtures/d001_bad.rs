//! D001 must fire: wall-clock time in deterministic code, including through
//! an aliased import.

use std::time::Instant;
use std::time::SystemTime as Clock;

pub fn measure() -> u64 {
    let start = Instant::now();
    let _epoch = Clock::now();
    start.elapsed().as_millis() as u64
}
