//! D001 must stay silent: virtual time only, and the hazard names appear
//! only where the scanner must ignore them (comments and string literals).

use std::time::Duration;

// A comment naming std::time::Instant::now() is not a use of it.
pub fn schedule(now_us: u64, delay: Duration) -> u64 {
    let msg = "docs mention std::time::SystemTime but never call it";
    let _len = msg.len();
    now_us + delay.as_micros() as u64
}
