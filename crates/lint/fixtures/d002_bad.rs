//! D002 must fire: hash containers in a deterministic crate — the import,
//! an aliased construction, and iteration over a binding.

use std::collections::HashMap as Map;

pub fn tally(events: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut counts: Map<u64, u64> = Map::new();
    for &(k, v) in events {
        *counts.entry(k).or_insert(0) += v;
    }
    let mut out = Vec::new();
    for (k, v) in counts.iter() {
        out.push((*k, *v));
    }
    out
}
