//! D002 must stay silent: ordered containers iterate deterministically.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(events: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for &(k, v) in events {
        *counts.entry(k).or_insert(0) += v;
        seen.insert(k);
    }
    counts.iter().map(|(k, v)| (*k, *v)).collect()
}
