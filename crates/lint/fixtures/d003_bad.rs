//! D003 must fire: ambient randomness — thread_rng, rand::random, and
//! std's randomized hasher state.

use rand::thread_rng;
use std::collections::hash_map::RandomState;

pub fn roll() -> u64 {
    let _state = RandomState::new();
    let _rng = thread_rng();
    rand::random::<u64>()
}
