//! D003 must stay silent: all randomness flows from an explicit seed.

pub struct SplitMix(u64);

impl SplitMix {
    pub fn new(seed: u64) -> Self {
        SplitMix(seed)
    }

    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^ (z >> 31)
    }
}
