//! D004 must fire: OS threads and sync primitives outside the vendored
//! rayon shim.

use std::sync::Mutex;

pub fn run() {
    let shared = Mutex::new(0u64);
    let handle = std::thread::spawn(move || {
        *shared.lock().unwrap() += 1;
    });
    handle.join().unwrap();
}
