//! D004 must stay silent: single-threaded deterministic code; `Arc` alone
//! is fine (shared ownership, not scheduling).

use std::sync::Arc;

pub fn share(v: Vec<u64>) -> (Arc<Vec<u64>>, Arc<Vec<u64>>) {
    let a = Arc::new(v);
    let b = Arc::clone(&a);
    (a, b)
}
