//! L001 must fire: `let _ =` discarding a value in protocol code.

pub fn apply(entries: &[u64]) -> Result<(), String> {
    for &e in entries {
        let _ = validate(e);
    }
    Ok(())
}

fn validate(e: u64) -> Result<u64, String> {
    if e == 0 {
        Err("zero entry".to_string())
    } else {
        Ok(e)
    }
}
