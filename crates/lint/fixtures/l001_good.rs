//! L001 must stay silent: results are propagated or handled, and named
//! `let _name =` bindings are allowed (they document intent).

pub fn apply(entries: &[u64]) -> Result<(), String> {
    for &e in entries {
        validate(e)?;
    }
    let _checked = entries.len();
    Ok(())
}

fn validate(e: u64) -> Result<u64, String> {
    if e == 0 {
        Err("zero entry".to_string())
    } else {
        Ok(e)
    }
}
