//! P001 must fire: `.unwrap()` / `.expect()` on the serving path, in all
//! three spellings (method, method-with-message, fully-qualified call).

pub fn lookup(entry: Option<u64>) -> u64 {
    entry.unwrap()
}

pub fn lookup_msg(entry: Option<u64>) -> u64 {
    entry.expect("entry present")
}

pub fn lookup_uf(entry: Option<u64>) -> u64 {
    Option::unwrap(entry)
}
