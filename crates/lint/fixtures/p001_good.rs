//! P001 must stay silent: explicit fallbacks, propagation, let-else, and
//! non-crashing `unwrap_*` relatives — plus mentions in comments and
//! strings, which are not code.

pub fn fallback(entry: Option<u64>) -> u64 {
    // A stray unwrap() in a comment is not a violation.
    entry.unwrap_or(0)
}

pub fn lazy(entry: Option<u64>) -> u64 {
    entry.unwrap_or_else(|| 7)
}

pub fn defaulted(entry: Option<u64>) -> u64 {
    entry.unwrap_or_default()
}

pub fn propagated(entry: Option<u64>) -> Option<u64> {
    let v = entry?;
    Some(v + 1)
}

pub fn structured(entry: Option<u64>) -> u64 {
    let Some(v) = entry else {
        return 0;
    };
    let _doc = "call .unwrap() at your peril";
    v
}
