//! P002 must fire: every explicit-panic macro, including the
//! "placeholder" forms that must never ship in protocol code.

pub fn explode(kind: u8) -> u64 {
    match kind {
        0 => panic!("bare panic"),
        1 => unreachable!(),
        2 => todo!(),
        _ => unimplemented!(),
    }
}
