//! P002 must stay silent: stated-invariant crashes via the sanctioned
//! `invariant!` macros, plain asserts (their message states the claim),
//! and `panic`-the-module-path (not the macro).

use dynatune_core::{invariant, invariant_violated};
use std::panic::Location;

pub fn checked(applied: u64, committed: u64) -> u64 {
    invariant!(applied <= committed, "applied {applied} passed {committed}");
    assert!(committed > 0, "empty log cannot commit");
    debug_assert!(applied > 0);
    committed
}

pub fn stated(entry: Option<u64>) -> u64 {
    match entry {
        Some(v) => v,
        None => invariant_violated!("committed entries are live in the log"),
    }
}

pub fn caller_line() -> u32 {
    Location::caller().line()
}
