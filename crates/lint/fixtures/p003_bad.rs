//! P003 must fire: narrowing `as` casts that silently truncate offsets
//! and indexes.

pub fn narrowed(offset: u64, count: usize, delta: i64) -> (u32, u16, i8) {
    let a = offset as u32;
    let b = count as u16;
    let c = delta as i8;
    (a, b, c)
}
