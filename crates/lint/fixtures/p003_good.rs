//! P003 must stay silent: checked conversions with an explicit overflow
//! policy, widening casts, float casts, and `as`-renames in use items.

// Legal (if eccentric) Rust: primitive names are not keywords, so a use
// item may alias one — the `as` here is a rename, not a cast.
use crate::width::thirty_two as u32;

pub fn converted(offset: u64, count: usize) -> (u32, u64, f64) {
    let a = u32::try_from(offset).unwrap_or(u32::MAX);
    let widened = (count as u64) + 1;
    let ratio = offset as f64 / 2.0;
    (a, widened, ratio)
}
