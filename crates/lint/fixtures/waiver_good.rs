//! A well-formed waiver with a reason suppresses the finding and counts
//! as used — both the own-line form and the trailing form.

// lint: allow(D002) — entry-only map, never iterated; fixture exercises
// the own-line waiver form (multi-line comment, covers the next code line).
use std::collections::HashMap;

pub fn build() -> usize {
    let m: HashMap<u64, u64> = HashMap::new(); // lint: allow(D002) — construction of the same entry-only map
    let started = std::time::Instant::now(); // lint: allow(D001) — trailing-form fixture
    let _elapsed = started.elapsed();
    m.len()
}
