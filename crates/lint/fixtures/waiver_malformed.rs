//! W001 must fire: a waiver without a written reason is malformed, and the
//! finding it meant to cover still stands.

// lint: allow(D002)
use std::collections::HashMap;

pub fn lookup(m: &HashMap<u64, u64>, k: u64) -> Option<u64> {
    m.get(&k).copied()
}
