//! W002 must fire: a waiver whose rule never triggers on the covered line
//! is stale and must be removed, not silently carried.

// lint: allow(D001) — stale: the next line has no wall-clock call
pub fn nothing_to_waive(x: u64) -> u64 {
    x + 1
}
