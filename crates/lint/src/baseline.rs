//! The violation baseline — a ratchet for landing new rules incrementally.
//!
//! A new rule pointed at an old tree fires hundreds of times; demanding a
//! same-PR sweep would block the rule forever. Instead the current
//! violation set is recorded once (`--baseline PATH --update-baseline`)
//! and CI runs `--deny --baseline PATH`: existing findings are
//! *grandfathered*, new ones fail the build. The ratchet only turns one
//! way — when a file gets cleaner than its baseline entry, the run
//! reports the baseline as **stale** and `--deny` fails until it is
//! regenerated, so recorded debt can shrink but never silently regrow.
//!
//! Entries are keyed by `(file, rule, count)`, not line numbers: unrelated
//! edits move lines constantly, and a per-line baseline would churn (or
//! worse, mask a *new* violation that happens to land on a recorded
//! line). Within one `(file, rule)` group the first `count` findings in
//! line order are grandfathered; any beyond that are regressions.

use crate::engine::Violation;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag written into (and required from) every baseline file.
pub const SCHEMA: &str = "dynatune-lint-baseline/v1";

/// A recorded violation budget: `(file, rule) → count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// One `(file, rule)` where the tree is now cleaner than the baseline —
/// the ratchet must be turned (file regenerated) before `--deny` passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// Baselined file.
    pub file: String,
    /// Baselined rule.
    pub rule: String,
    /// Count recorded in the baseline.
    pub recorded: usize,
    /// Count actually found now (strictly less than `recorded`).
    pub found: usize,
}

/// Result of applying a baseline to a violation list.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Violations not covered by the baseline (regressions — these fail
    /// `--deny`).
    pub regressions: Vec<Violation>,
    /// How many findings the baseline grandfathered.
    pub grandfathered: usize,
    /// Baseline entries now over-recorded (fail `--deny` until the file
    /// is regenerated).
    pub stale: Vec<StaleEntry>,
}

impl Baseline {
    /// Record a baseline from the current violation set.
    #[must_use]
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *entries
                .entry((v.file.clone(), v.rule.to_string()))
                .or_insert(0) += 1;
        }
        Self { entries }
    }

    /// Number of `(file, rule)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline records no debt at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keep only entries for the given rules (pairs with the CLI's
    /// `--only` view: a filtered scan must not read unrelated baseline
    /// entries as stale).
    pub fn retain_rules(&mut self, only: &[String]) {
        self.entries.retain(|(_, rule), _| only.contains(rule));
    }

    /// Apply the ratchet: split `violations` into grandfathered findings
    /// and regressions, and surface stale entries.
    #[must_use]
    pub fn apply(&self, violations: Vec<Violation>) -> BaselineOutcome {
        let mut found: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut out = BaselineOutcome::default();
        // `violations` arrive sorted by (file, line, rule); counting in
        // that order grandfathers the earliest findings deterministically.
        for v in violations {
            let key = (v.file.clone(), v.rule.to_string());
            let seen = found.entry(key.clone()).or_insert(0);
            *seen += 1;
            let budget = self.entries.get(&key).copied().unwrap_or(0);
            if *seen <= budget {
                out.grandfathered += 1;
            } else {
                out.regressions.push(v);
            }
        }
        for ((file, rule), &recorded) in &self.entries {
            let now = found
                .get(&(file.clone(), rule.clone()))
                .copied()
                .unwrap_or(0);
            if now < recorded {
                out.stale.push(StaleEntry {
                    file: file.clone(),
                    rule: rule.clone(),
                    recorded,
                    found: now,
                });
            }
        }
        out
    }

    /// Serialize to the committed-file form (stable ordering, hand-rolled
    /// JSON like every other report in this workspace).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        out.push_str("  \"entries\": [");
        let mut first = true;
        for ((file, rule), count) in &self.entries {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(
                out,
                "    {{\"file\": \"{}\", \"rule\": \"{}\", \"count\": {}}}",
                esc(file),
                esc(rule),
                count
            );
        }
        out.push_str(if first { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }

    /// Parse a baseline file. The format is the one [`Baseline::to_json`]
    /// writes (one entry object per line); parsing is deliberately
    /// line-oriented and strict about the schema tag so a wrong or
    /// hand-mangled file fails loudly instead of silently ratcheting
    /// nothing.
    ///
    /// # Errors
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Self, String> {
        if !text.contains(SCHEMA) {
            return Err(format!("baseline file missing schema tag `{SCHEMA}`"));
        }
        let mut entries = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            if !line.contains("\"file\"") {
                continue;
            }
            let file = field(line, "file")
                .ok_or_else(|| format!("line {line_no}: entry missing \"file\""))?;
            let rule = field(line, "rule")
                .ok_or_else(|| format!("line {line_no}: entry missing \"rule\""))?;
            let count = int_field(line, "count")
                .ok_or_else(|| format!("line {line_no}: entry missing \"count\""))?;
            entries.insert((file, rule), count);
        }
        Ok(Self { entries })
    }
}

/// Extract `"name": "value"` from one line (values never contain escaped
/// quotes: they are workspace-relative paths and rule IDs).
fn field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract `"name": 123` from one line.
fn int_field(line: &str, name: &str) -> Option<usize> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Minimal JSON escaping (paths and rule IDs only).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: u32, rule: &'static str) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let b = Baseline::from_violations(&[
            v("a.rs", 1, "P001"),
            v("a.rs", 9, "P001"),
            v("b.rs", 2, "P003"),
        ]);
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(b, parsed);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn empty_baseline_roundtrips_and_grandfathers_nothing() {
        let b = Baseline::default();
        assert!(b.is_empty());
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert!(parsed.is_empty());
        let out = parsed.apply(vec![v("a.rs", 1, "P001")]);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.grandfathered, 0);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn ratchet_grandfathers_up_to_budget_and_flags_excess() {
        let base = Baseline::from_violations(&[v("a.rs", 1, "P001"), v("a.rs", 2, "P001")]);
        // Same count: all grandfathered.
        let out = base.apply(vec![v("a.rs", 10, "P001"), v("a.rs", 20, "P001")]);
        assert!(out.regressions.is_empty());
        assert_eq!(out.grandfathered, 2);
        assert!(out.stale.is_empty());
        // One more than budget: exactly one regression (the last in line
        // order), others grandfathered.
        let out = base.apply(vec![
            v("a.rs", 10, "P001"),
            v("a.rs", 20, "P001"),
            v("a.rs", 30, "P001"),
        ]);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].line, 30);
        assert_eq!(out.grandfathered, 2);
    }

    #[test]
    fn shrinking_below_baseline_is_stale() {
        let base = Baseline::from_violations(&[v("a.rs", 1, "P001"), v("a.rs", 2, "P001")]);
        let out = base.apply(vec![v("a.rs", 10, "P001")]);
        assert!(out.regressions.is_empty());
        assert_eq!(
            out.stale,
            vec![StaleEntry {
                file: "a.rs".to_string(),
                rule: "P001".to_string(),
                recorded: 2,
                found: 1,
            }]
        );
    }

    #[test]
    fn different_rule_same_file_is_not_covered() {
        let base = Baseline::from_violations(&[v("a.rs", 1, "P001")]);
        let out = base.apply(vec![v("a.rs", 1, "P002")]);
        assert_eq!(out.regressions.len(), 1);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(Baseline::parse("{\"schema\": \"something-else\"}").is_err());
        assert!(Baseline::parse("").is_err());
    }
}
