//! The scanning engine: tokens → findings, with waivers applied.
//!
//! Passes over one file:
//!
//! 1. lex (comments kept for waivers),
//! 2. build the `use`-alias table,
//! 3. mark `#[cfg(test)] mod` line ranges (policy differs for test code),
//! 4. path pass — every resolved path checked against the hazard tables
//!    (this catches imports *and* spelled-out uses, aliased or not),
//! 5. D002 iteration pass — hash-container bindings collected from type
//!    ascriptions / initializers, then `.iter()`-family calls and `for`
//!    loops over them flagged,
//! 6. L001 pass — `let _ =` in protocol prod code,
//! 7. panic-freedom passes — P001 `.unwrap()`/`.expect()` calls, P002
//!    explicit panic macros, P003 narrowing `as` casts (all prod-only),
//! 8. C001 layering pass — any resolved `dynatune_*` path checked
//!    against the owning crate's declared DAG edges,
//! 9. waiver application — `// lint: allow(RULE) — reason` comments
//!    suppress same/next-line findings; malformed (W001) and stale (W002)
//!    waivers are themselves findings.

use crate::policy::FilePolicy;
use crate::rules::{self, id};
use crate::tokens::{lex, Comment, Tok, Token};
use crate::uses::UseMap;
use std::collections::{BTreeMap, BTreeSet};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule ID (`D001`...`L001`, `W001`, `W002`).
    pub rule: &'static str,
    /// What was found (includes the offending path or construct).
    pub message: String,
}

/// One parsed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative file path.
    pub file: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// Line of code the waiver covers.
    pub covers_line: u32,
    /// Waived rule IDs.
    pub rules: Vec<String>,
    /// The written justification (non-empty by construction).
    pub reason: String,
    /// Set when the waiver suppressed at least one finding.
    pub used: bool,
}

/// Scan result for one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that survived waivers (sorted by line).
    pub violations: Vec<Violation>,
    /// Every well-formed waiver found, with its use status.
    pub waivers: Vec<Waiver>,
}

/// Scan one source file under one policy.
#[must_use]
pub fn scan_source(rel_path: &str, src: &str, policy: &FilePolicy) -> FileScan {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let uses = UseMap::build(tokens);
    let test_ranges = cfg_test_ranges(tokens);

    let in_test = |line: u32| -> bool {
        policy.file_is_test || test_ranges.iter().any(|&(s, e)| line >= s && line <= e)
    };
    let ruleset = |line: u32| {
        if in_test(line) {
            &policy.test
        } else {
            &policy.prod
        }
    };

    let mut raw: Vec<Violation> = Vec::new();
    let mut push = |line: u32, rule: &'static str, message: String| {
        raw.push(Violation {
            file: rel_path.to_string(),
            line,
            rule,
            message,
        });
    };

    // --- Pass 4: resolved-path hazards ------------------------------------
    let paths = collect_paths(tokens);
    for p in &paths {
        let resolved = resolve(&uses, &p.segments);
        for rule in rules::matching_rules(&resolved) {
            let rs = ruleset(p.line);
            let fire = match rule {
                id::D002 => rs.d002 && rs.d002_presence,
                other => rs.enabled(other),
            };
            if fire {
                push(
                    p.line,
                    rule,
                    format!(
                        "`{}` resolves to `{}` — {}",
                        p.segments.join("::"),
                        resolved.join("::"),
                        rules::rule_info(rule).map_or("", |r| r.summary)
                    ),
                );
            }
        }
    }

    // --- Pass 5: D002 iteration over known hash bindings ------------------
    if policy.prod.d002 || policy.test.d002 {
        let bindings = hash_bindings(tokens, &uses);
        if !bindings.is_empty() {
            flag_iteration(tokens, &bindings, rel_path, &mut raw, |line| {
                ruleset(line).d002
            });
        }
    }

    // --- Pass 6: L001 `let _ =` discards ----------------------------------
    if policy.prod.l001 {
        for w in tokens.windows(3) {
            if matches!(&w[0].tok, Tok::Ident(s) if s == "let")
                && matches!(&w[1].tok, Tok::Ident(s) if s == "_")
                && matches!(w[2].tok, Tok::Punct('='))
                && ruleset(w[0].line).l001
            {
                raw.push(Violation {
                    file: rel_path.to_string(),
                    line: w[0].line,
                    rule: id::L001,
                    message: "`let _ =` discards a value in protocol code — a dropped \
                              Result/effect here is the silent-stall hazard class"
                        .to_string(),
                });
            }
        }
    }

    // --- Pass 7a: P001 `.unwrap()` / `.expect()` calls --------------------
    if policy.prod.p001 {
        for i in 1..tokens.len().saturating_sub(1) {
            let Tok::Ident(name) = &tokens[i].tok else {
                continue;
            };
            if name != "unwrap" && name != "expect" {
                continue;
            }
            // Method call (`x.unwrap()`) or UFCS (`Option::unwrap(x)`) —
            // either way the next token must open the call.
            let receiver = matches!(tokens[i - 1].tok, Tok::Punct('.'))
                || matches!(tokens[i - 1].tok, Tok::PathSep);
            if receiver
                && matches!(tokens[i + 1].tok, Tok::Punct('('))
                && ruleset(tokens[i].line).p001
            {
                raw.push(Violation {
                    file: rel_path.to_string(),
                    line: tokens[i].line,
                    rule: id::P001,
                    message: format!(
                        "`.{name}()` in protocol prod code — a latent crash in the serving \
                         path; propagate a typed error or state the invariant"
                    ),
                });
            }
        }
    }

    // --- Pass 7b: P002 explicit panic macros ------------------------------
    if policy.prod.p002 {
        for i in 0..tokens.len().saturating_sub(1) {
            let Tok::Ident(name) = &tokens[i].tok else {
                continue;
            };
            if rules::PANIC_MACROS.contains(&name.as_str())
                && matches!(tokens[i + 1].tok, Tok::Punct('!'))
                && ruleset(tokens[i].line).p002
            {
                raw.push(Violation {
                    file: rel_path.to_string(),
                    line: tokens[i].line,
                    rule: id::P002,
                    message: format!(
                        "`{name}!` in protocol prod code — explicit panics are waivable \
                         only with a stated invariant"
                    ),
                });
            }
        }
    }

    // --- Pass 7c: P003 narrowing `as` integer casts -----------------------
    if policy.prod.p003 {
        flag_narrowing_casts(tokens, rel_path, &mut raw, |line| ruleset(line).p003);
    }

    // --- Pass 8: C001 crate layering --------------------------------------
    if let Some(layer) = policy.layer {
        for p in &paths {
            let resolved = resolve(&uses, &p.segments);
            let Some(first) = resolved.first() else {
                continue;
            };
            if crate::layering::is_workspace_lib(first)
                && !crate::layering::edge_allowed(layer, first)
            {
                raw.push(Violation {
                    file: rel_path.to_string(),
                    line: p.line,
                    rule: id::C001,
                    message: format!(
                        "`{}` imports `{first}` — not a declared edge from {} in the \
                         crate DAG (crates/lint/src/layering.rs)",
                        p.segments.join("::"),
                        layer.lib
                    ),
                });
            }
        }
    }

    // --- Pass 9: waivers ---------------------------------------------------
    apply_waivers(rel_path, &lexed.comments, tokens, raw)
}

/// Flag `expr as u8|u16|u32|i8|i16|i32` casts. `as` inside a `use`
/// declaration is a rename, not a cast, so token runs between `use` and
/// `;` are skipped.
fn flag_narrowing_casts(
    tokens: &[Token],
    rel_path: &str,
    out: &mut Vec<Violation>,
    p003_on: impl Fn(u32) -> bool,
) {
    let mut in_use = false;
    for i in 0..tokens.len().saturating_sub(1) {
        match &tokens[i].tok {
            Tok::Ident(s) if s == "use" => in_use = true,
            Tok::Punct(';') => in_use = false,
            Tok::Ident(s) if s == "as" && !in_use => {
                let Tok::Ident(target) = &tokens[i + 1].tok else {
                    continue;
                };
                if rules::NARROWING_CAST_TARGETS.contains(&target.as_str())
                    && p003_on(tokens[i].line)
                {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: tokens[i].line,
                        rule: id::P003,
                        message: format!(
                            "`as {target}` narrows an integer in protocol prod code — a \
                             silent truncation corrupts offsets/indexes; use `try_from` \
                             with an explicit overflow policy"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Path collection and resolution
// ---------------------------------------------------------------------------

struct PathRef {
    line: u32,
    segments: Vec<String>,
}

/// Collect every maximal `ident(::ident)*` path whose first segment is not
/// a method name (preceded by `.`) and not the middle of a longer path.
fn collect_paths(tokens: &[Token]) -> Vec<PathRef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let prev_dot = i > 0 && matches!(tokens[i - 1].tok, Tok::Punct('.'));
        let prev_sep = i > 0 && matches!(tokens[i - 1].tok, Tok::PathSep);
        // A leading `::` (absolute path, `::std::thread::spawn`) still
        // starts a path; a `::` *after* an ident means we're mid-path.
        let leading_abs = prev_sep && (i < 2 || !matches!(tokens[i - 2].tok, Tok::Ident(_)));
        let is_start =
            matches!(tokens[i].tok, Tok::Ident(_)) && !prev_dot && (!prev_sep || leading_abs);
        if !is_start {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        let mut segments = Vec::new();
        while let Tok::Ident(s) = &tokens[i].tok {
            segments.push(s.clone());
            if i + 2 < tokens.len()
                && matches!(tokens[i + 1].tok, Tok::PathSep)
                && matches!(tokens[i + 2].tok, Tok::Ident(_))
            {
                i += 2;
            } else {
                break;
            }
        }
        i += 1;
        out.push(PathRef { line, segments });
    }
    out
}

/// Resolve a path's first segment through the file's imports.
fn resolve(uses: &UseMap, segments: &[String]) -> Vec<String> {
    let Some(first) = segments.first() else {
        return Vec::new();
    };
    match uses.resolve(first) {
        Some(full) => {
            let mut out: Vec<String> = full.to_vec();
            out.extend(segments.iter().skip(1).cloned());
            out
        }
        None => segments.to_vec(),
    }
}

// ---------------------------------------------------------------------------
// `#[cfg(test)] mod` regions
// ---------------------------------------------------------------------------

/// Line ranges (inclusive) of `#[cfg(test)] mod name { ... }` blocks.
fn cfg_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = matches!(tokens[i].tok, Tok::Punct('#'))
            && matches!(tokens[i + 1].tok, Tok::Punct('['))
            && matches!(&tokens[i + 2].tok, Tok::Ident(s) if s == "cfg")
            && matches!(tokens[i + 3].tok, Tok::Punct('('))
            && matches!(&tokens[i + 4].tok, Tok::Ident(s) if s == "test")
            && matches!(tokens[i + 5].tok, Tok::Punct(')'))
            && matches!(tokens[i + 6].tok, Tok::Punct(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip further attributes, then expect `[pub] mod name {`.
        let mut j = i + 7;
        while matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('#'))) {
            // Skip a balanced `[...]` attribute.
            j += 1;
            let mut depth = 0usize;
            while let Some(t) = tokens.get(j) {
                match t.tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "pub") {
            j += 1;
        }
        let is_mod = matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mod");
        if !is_mod {
            i += 1;
            continue;
        }
        // mod name {  — find the matching close brace.
        j += 2;
        while let Some(t) = tokens.get(j) {
            if matches!(t.tok, Tok::Punct('{')) {
                break;
            }
            j += 1;
        }
        let start_line = tokens[i].line;
        let mut depth = 0usize;
        let mut end_line = start_line;
        while let Some(t) = tokens.get(j) {
            match t.tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = t.line;
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        out.push((start_line, end_line));
        i = j;
    }
    out
}

// ---------------------------------------------------------------------------
// D002 iteration detection
// ---------------------------------------------------------------------------

/// Names bound to hash containers in this file: struct fields and let
/// bindings with a hash type ascription, lets initialized from
/// `HashMap::...`, plus local `type X = HashMap<...>` aliases.
fn hash_bindings(tokens: &[Token], uses: &UseMap) -> BTreeSet<String> {
    // Pre-pass: local `type X = HashMap<...>` aliases (nested alias chains
    // are out of scope).
    let mut hash_type_names: BTreeSet<String> = BTreeSet::new();
    for i in 0..tokens.len().saturating_sub(3) {
        if matches!(&tokens[i].tok, Tok::Ident(s) if s == "type")
            && matches!(tokens[i + 1].tok, Tok::Ident(_))
            && matches!(tokens[i + 2].tok, Tok::Punct('='))
        {
            let mut segs = Vec::new();
            let mut j = i + 3;
            while let Some(Tok::Ident(s)) = tokens.get(j).map(|t| &t.tok) {
                segs.push(s.clone());
                if matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::PathSep)) {
                    j += 2;
                } else {
                    break;
                }
            }
            if rules::is_hash_container(&resolve(uses, &segs)) {
                if let Tok::Ident(name) = &tokens[i + 1].tok {
                    hash_type_names.insert(name.clone());
                }
            }
        }
    }

    // Does a path starting at token `i` name a hash container?
    let starts_hash = |i: usize| -> bool {
        if !matches!(tokens[i].tok, Tok::Ident(_)) {
            return false;
        }
        if i > 0
            && (matches!(tokens[i - 1].tok, Tok::PathSep)
                || matches!(tokens[i - 1].tok, Tok::Punct('.')))
        {
            return false;
        }
        let mut segs = Vec::new();
        let mut j = i;
        while let Some(Tok::Ident(s)) = tokens.get(j).map(|t| &t.tok) {
            segs.push(s.clone());
            if matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::PathSep)) {
                j += 2;
            } else {
                break;
            }
        }
        let first_is_alias = segs
            .first()
            .is_some_and(|s| hash_type_names.contains(s.as_str()));
        first_is_alias || rules::is_hash_container(&resolve(uses, &segs))
    };

    let mut bindings: BTreeSet<String> = BTreeSet::new();
    for i in 0..tokens.len() {
        if !starts_hash(i) {
            continue;
        }
        // `name: HashMap<...>` — struct field, let ascription, fn param.
        if i >= 2 && matches!(tokens[i - 1].tok, Tok::Punct(':')) {
            if let Tok::Ident(name) = &tokens[i - 2].tok {
                bindings.insert(name.clone());
            }
        }
        // `let [mut] name = HashMap::new()` and friends.
        if i >= 3 && matches!(tokens[i - 1].tok, Tok::Punct('=')) {
            if let Tok::Ident(name) = &tokens[i - 2].tok {
                let before = &tokens[i - 3].tok;
                let is_let = matches!(before, Tok::Ident(s) if s == "let")
                    || (matches!(before, Tok::Ident(s) if s == "mut")
                        && i >= 4
                        && matches!(&tokens[i - 4].tok, Tok::Ident(s) if s == "let"));
                if is_let {
                    bindings.insert(name.clone());
                }
            }
        }
    }
    bindings
}

/// Flag `.iter()`-family calls and `for`-loops over known hash bindings.
fn flag_iteration(
    tokens: &[Token],
    bindings: &BTreeSet<String>,
    rel_path: &str,
    out: &mut Vec<Violation>,
    d002_on: impl Fn(u32) -> bool,
) {
    // `.method(` on a binding.
    for i in 1..tokens.len().saturating_sub(2) {
        let dot = matches!(tokens[i].tok, Tok::Punct('.'));
        if !dot {
            continue;
        }
        let Tok::Ident(method) = &tokens[i + 1].tok else {
            continue;
        };
        if !rules::ITER_METHODS.contains(&method.as_str()) {
            continue;
        }
        if !matches!(tokens[i + 2].tok, Tok::Punct('(')) {
            continue;
        }
        let Tok::Ident(receiver) = &tokens[i - 1].tok else {
            continue;
        };
        if bindings.contains(receiver.as_str()) && d002_on(tokens[i].line) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: tokens[i].line,
                rule: id::D002,
                message: format!(
                    "`.{method}()` iterates hash container `{receiver}` — order depends on \
                     SipHash keys; use BTreeMap/BTreeSet"
                ),
            });
        }
    }
    // `for pat in <expr containing a binding> {`.
    let mut i = 0usize;
    while i < tokens.len() {
        if !matches!(&tokens[i].tok, Tok::Ident(s) if s == "for") {
            i += 1;
            continue;
        }
        // Find `in` before the loop body `{` (skips `impl T for U {` and
        // `for<'a>` which have no `in`).
        let mut j = i + 1;
        let mut in_pos = None;
        while let Some(t) = tokens.get(j) {
            match &t.tok {
                Tok::Punct('{') => break,
                Tok::Ident(s) if s == "in" => {
                    in_pos = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        let Some(start) = in_pos else {
            i += 1;
            continue;
        };
        let mut k = start + 1;
        while let Some(t) = tokens.get(k) {
            match &t.tok {
                Tok::Punct('{') => break,
                Tok::Ident(name) if bindings.contains(name.as_str()) => {
                    // Exclude `x.contains_key(&name)`-style uses where the
                    // binding is an argument, not the iterated expression:
                    // good enough to check it's not directly preceded by
                    // `&` inside a call — kept simple; waivers exist for
                    // the rare false positive.
                    if d002_on(t.line) {
                        out.push(Violation {
                            file: rel_path.to_string(),
                            line: t.line,
                            rule: id::D002,
                            message: format!(
                                "`for ... in` over hash container `{name}` — iteration order \
                                 depends on SipHash keys; use BTreeMap/BTreeSet"
                            ),
                        });
                    }
                    k += 1;
                }
                _ => k += 1,
            }
        }
        i = k.max(i + 1);
    }
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// Outcome of parsing one comment for waiver syntax.
enum WaiverParse {
    NotAWaiver,
    Malformed(String),
    Ok { rules: Vec<String>, reason: String },
}

/// Parse a waiver (`lint: allow` + rule list + em-dash + reason) out of a
/// comment body. Doc comments (`///`, `//!`) never carry waivers — they
/// are documentation *about* the syntax, not directives — so bodies
/// starting with `/` or `!` are skipped.
fn parse_waiver(text: &str) -> WaiverParse {
    if text.starts_with('/') || text.starts_with('!') {
        return WaiverParse::NotAWaiver;
    }
    let Some(pos) = text.find("lint:") else {
        return WaiverParse::NotAWaiver;
    };
    let rest = text[pos + "lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return WaiverParse::Malformed("expected `allow(...)` after `lint:`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return WaiverParse::Malformed("expected `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return WaiverParse::Malformed("unclosed `allow(`".to_string());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return WaiverParse::Malformed("no rule IDs inside `allow(...)`".to_string());
    }
    for r in &rules {
        if !rules::is_waivable(r) {
            return WaiverParse::Malformed(format!("`{r}` is not a waivable rule"));
        }
    }
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim()
        .to_string();
    if reason.is_empty() {
        return WaiverParse::Malformed(
            "waiver has no reason — syntax is `// lint: allow(D00X) — <reason>`".to_string(),
        );
    }
    WaiverParse::Ok { rules, reason }
}

/// Apply waivers to the raw findings; malformed and stale waivers become
/// findings themselves.
fn apply_waivers(
    rel_path: &str,
    comments: &[Comment],
    tokens: &[Token],
    raw: Vec<Violation>,
) -> FileScan {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut malformed: Vec<Violation> = Vec::new();
    for c in comments {
        match parse_waiver(&c.text) {
            WaiverParse::NotAWaiver => {}
            WaiverParse::Malformed(why) => malformed.push(Violation {
                file: rel_path.to_string(),
                line: c.line,
                rule: id::W001,
                message: why,
            }),
            WaiverParse::Ok { rules, reason } => {
                let covers_line = if c.own_line {
                    // First code line after the comment (stacked waiver
                    // comments covering the same statement all resolve to
                    // that statement's line).
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line + 1)
                } else {
                    c.line
                };
                waivers.push(Waiver {
                    file: rel_path.to_string(),
                    comment_line: c.line,
                    covers_line,
                    rules,
                    reason,
                    used: false,
                });
            }
        }
    }

    let mut kept: Vec<Violation> = Vec::new();
    for v in raw {
        let mut waived = false;
        for w in &mut waivers {
            if w.covers_line == v.line && w.rules.iter().any(|r| r == v.rule) {
                w.used = true;
                waived = true;
            }
        }
        if !waived {
            kept.push(v);
        }
    }
    for w in &waivers {
        if !w.used {
            kept.push(Violation {
                file: rel_path.to_string(),
                line: w.comment_line,
                rule: id::W002,
                message: format!(
                    "stale waiver for {} — line {} has no matching violation",
                    w.rules.join(", "),
                    w.covers_line
                ),
            });
        }
    }
    kept.extend(malformed);
    kept.sort_by_key(|v| (v.line, v.rule));
    kept.dedup();
    FileScan {
        violations: kept,
        waivers,
    }
}

// ---------------------------------------------------------------------------

/// A tiny helper the walker uses: map of rule → count (report summaries).
#[must_use]
pub fn count_by_rule(violations: &[Violation]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for v in violations {
        *m.entry(v.rule).or_insert(0) += 1;
    }
    m
}
