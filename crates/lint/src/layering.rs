//! The declared crate-layering DAG that C001 enforces.
//!
//! The workspace's architecture is a strict layering: `stats` and
//! `simnet` at the bottom (no workspace-local imports at all), the Raft
//! protocol core above them, the state-machine apps (`kvstore`,
//! `broker`) above Raft, and the serving/measurement layers on top. The
//! PR-7 `App`-trait boundary only means something if `raft` can never
//! grow a `use dynatune_cluster` and a vendor shim can never reach into
//! the workspace — this table is the machine-checked form of that
//! architecture, and ARCHITECTURE.md's "Crate layering" section is
//! generated from it (kept in lockstep by `tests/docs_sync.rs`).
//!
//! Two enforcement points share the table:
//!
//! * the engine's C001 pass flags any resolved `dynatune_*` path in a
//!   `.rs` file whose owning crate does not declare that edge, and
//! * [`check_manifests`] parses every `crates/*/Cargo.toml` and
//!   `vendor/*/Cargo.toml` `[dependencies]` section, so an edge cannot
//!   sneak in as a manifest dependency that no source file exercises yet.

use crate::engine::Violation;
use crate::rules::id;
use std::io;
use std::path::Path;

/// One workspace crate's position in the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrateLayer {
    /// Directory name under `crates/`.
    pub dir: &'static str,
    /// The crate's lib name (what `use` statements and manifests say).
    pub lib: &'static str,
    /// Workspace-local lib names this crate may depend on. Everything
    /// absent is forbidden — the DAG is an allowlist, not a denylist.
    pub allowed: &'static [&'static str],
}

/// The declared DAG, bottom layer first. Edges list *direct* allowed
/// dependencies; transitive closure is intentionally not implied (if
/// `broker` starts needing `stats` directly, that is a new edge to
/// declare and review, not a freebie).
pub const LAYERS: &[CrateLayer] = &[
    CrateLayer {
        dir: "stats",
        lib: "dynatune_stats",
        allowed: &[],
    },
    CrateLayer {
        dir: "simnet",
        lib: "dynatune_simnet",
        allowed: &[],
    },
    CrateLayer {
        dir: "core",
        lib: "dynatune_core",
        allowed: &["dynatune_stats"],
    },
    CrateLayer {
        dir: "raft",
        lib: "dynatune_raft",
        allowed: &["dynatune_core", "dynatune_simnet"],
    },
    CrateLayer {
        dir: "kvstore",
        lib: "dynatune_kv",
        allowed: &["dynatune_raft", "dynatune_simnet", "dynatune_stats"],
    },
    CrateLayer {
        dir: "broker",
        lib: "dynatune_broker",
        allowed: &["dynatune_core", "dynatune_kv", "dynatune_raft"],
    },
    CrateLayer {
        dir: "cluster",
        lib: "dynatune_cluster",
        allowed: &[
            "dynatune_broker",
            "dynatune_core",
            "dynatune_kv",
            "dynatune_raft",
            "dynatune_simnet",
            "dynatune_stats",
        ],
    },
    CrateLayer {
        dir: "bench",
        lib: "dynatune_bench",
        allowed: &[
            "dynatune_broker",
            "dynatune_cluster",
            "dynatune_core",
            "dynatune_kv",
            "dynatune_raft",
            "dynatune_simnet",
            "dynatune_stats",
        ],
    },
    CrateLayer {
        dir: "lint",
        lib: "dynatune_lint",
        allowed: &[],
    },
];

/// Look up a layer by its directory name under `crates/`.
#[must_use]
pub fn layer_for_dir(dir: &str) -> Option<&'static CrateLayer> {
    LAYERS.iter().find(|l| l.dir == dir)
}

/// Is `name` the lib name of a workspace crate? (Plain `dynatune_*`
/// identifiers — test function names, locals — are not imports; only the
/// actual lib names participate in C001.) The umbrella `dynatune_repro`
/// counts: no crate in the DAG may import it (it sits above everything).
#[must_use]
pub fn is_workspace_lib(name: &str) -> bool {
    name == "dynatune_repro" || LAYERS.iter().any(|l| l.lib == name)
}

/// Is `dep` (a `dynatune_*` lib name) a declared edge from `layer`?
/// A crate may always reference itself.
#[must_use]
pub fn edge_allowed(layer: &CrateLayer, dep: &str) -> bool {
    dep == layer.lib || layer.allowed.contains(&dep)
}

/// The "Crate layering" markdown block ARCHITECTURE.md embeds, generated
/// from [`LAYERS`] so the prose cannot drift from what C001 enforces.
#[must_use]
pub fn dag_markdown() -> String {
    let mut out = String::from("| crate | may depend on (workspace-local) |\n|---|---|\n");
    for l in LAYERS {
        let deps = if l.allowed.is_empty() {
            "*(nothing workspace-local)*".to_string()
        } else {
            l.allowed
                .iter()
                .map(|d| format!("`{d}`"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "| `{}` (`crates/{}`) | {} |\n",
            l.lib, l.dir, deps
        ));
    }
    out
}

/// Check every `crates/*/Cargo.toml` and `vendor/*/Cargo.toml` under
/// `root` against the DAG: a `dynatune_*` entry in a dependency section
/// that is not a declared edge is a C001 violation (vendor shims may
/// not depend on the workspace at all). Manifests are data, not Rust —
/// inline waivers cannot apply here by construction.
///
/// # Errors
/// Propagates filesystem errors reading directories or manifests.
pub fn check_manifests(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for area in ["crates", "vendor"] {
        let dir = root.join(area);
        if !dir.is_dir() {
            continue;
        }
        let mut subdirs: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        for sub in subdirs {
            let Some(name) = sub.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let manifest = sub.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            let text = std::fs::read_to_string(&manifest)?;
            let rel = format!("{area}/{name}/Cargo.toml");
            let layer = if area == "crates" {
                layer_for_dir(name)
            } else {
                None // vendor: empty allowlist
            };
            out.extend(check_manifest_text(&rel, &text, layer));
        }
    }
    Ok(out)
}

/// Scan one manifest's dependency sections for undeclared `dynatune_*`
/// edges. `layer` is `None` for crates outside the DAG (vendor shims),
/// which may depend on nothing workspace-local.
#[must_use]
pub fn check_manifest_text(
    rel_path: &str,
    text: &str,
    layer: Option<&CrateLayer>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, line) in text.lines().enumerate() {
        let line_no = u32::try_from(idx).unwrap_or(u32::MAX).saturating_add(1);
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            // Any dependency table counts: [dependencies],
            // [dev-dependencies], [build-dependencies], target-specific.
            in_deps = trimmed.trim_matches(['[', ']']).ends_with("dependencies");
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some(dep) = trimmed.split(['=', ' ', '.']).next() else {
            continue;
        };
        if !dep.starts_with("dynatune_") {
            continue;
        }
        let allowed = layer.is_some_and(|l| edge_allowed(l, dep));
        if !allowed {
            let owner = layer.map_or("a vendor shim", |l| l.lib);
            out.push(Violation {
                file: rel_path.to_string(),
                line: line_no,
                rule: id::C001,
                message: format!(
                    "manifest dependency `{dep}` is not a declared edge from {owner} — \
                     the crate DAG in crates/lint/src/layering.rs does not allow it"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_dag_is_acyclic_and_self_consistent() {
        // Every allowed dep must itself be a declared layer, and must
        // appear *earlier* in LAYERS (bottom-first order doubles as a
        // topological order, so cycles are impossible by construction).
        for (i, l) in LAYERS.iter().enumerate() {
            for dep in l.allowed {
                let pos = LAYERS.iter().position(|o| o.lib == *dep);
                let pos = pos.unwrap_or_else(|| {
                    panic!("{}: allowed dep {dep} is not a declared layer", l.lib)
                });
                assert!(pos < i, "{}: dep {dep} is not a lower layer", l.lib);
            }
        }
    }

    #[test]
    fn raft_may_not_depend_on_cluster_or_bench() {
        let raft = layer_for_dir("raft").unwrap();
        assert!(!edge_allowed(raft, "dynatune_cluster"));
        assert!(!edge_allowed(raft, "dynatune_bench"));
        assert!(edge_allowed(raft, "dynatune_core"));
        assert!(edge_allowed(raft, "dynatune_raft"), "self is always fine");
    }

    #[test]
    fn manifest_scan_flags_undeclared_edges_only() {
        let bad = "[package]\nname = \"dynatune_raft\"\n[dependencies]\n\
                   dynatune_cluster = { workspace = true }\n\
                   dynatune_core = { workspace = true }\n";
        let v = check_manifest_text("crates/raft/Cargo.toml", bad, layer_for_dir("raft"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, id::C001);
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("dynatune_cluster"));
    }

    #[test]
    fn dev_dependency_edges_are_checked_too() {
        let bad = "[dev-dependencies]\ndynatune_bench = { workspace = true }\n";
        let v = check_manifest_text("crates/stats/Cargo.toml", bad, layer_for_dir("stats"));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn vendor_shims_may_not_import_the_workspace() {
        let bad = "[dependencies]\ndynatune_stats = { workspace = true }\n";
        let v = check_manifest_text("vendor/rayon/Cargo.toml", bad, None);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("vendor shim"));
    }

    #[test]
    fn dag_markdown_lists_every_layer() {
        let md = dag_markdown();
        for l in LAYERS {
            assert!(md.contains(l.lib), "missing {}", l.lib);
        }
        assert!(md.contains("*(nothing workspace-local)*"));
    }
}
