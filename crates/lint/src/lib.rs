//! `dynatune_lint` — determinism-and-hazard static analysis for the
//! Dynatune workspace.
//!
//! The repo's load-bearing claim is that every scenario is bit-identical
//! across `--jobs` widths and seeds. That only holds if no deterministic
//! code path reads the wall clock, iterates a hash container, draws
//! ambient randomness, or races OS threads. This crate enforces those
//! rules mechanically (ARCHITECTURE.md states them in prose and cites the
//! rule IDs defined in [`rules`]):
//!
//! | rule | hazard |
//! |------|--------|
//! | D001 | wall-clock time outside the bench/criterion harness |
//! | D002 | `HashMap`/`HashSet` (unordered iteration) in deterministic crates |
//! | D003 | ambient randomness / randomized hashing |
//! | D004 | thread/sync primitives outside the vendored rayon shim |
//! | L001 | `let _ =` discards in protocol code |
//! | P001 | `.unwrap()` / `.expect()` in protocol prod code |
//! | P002 | explicit panic macros in protocol prod code |
//! | P003 | narrowing `as` integer casts in protocol prod code |
//! | C001 | crate imports outside the declared layering DAG |
//! | W001 | malformed waiver comment |
//! | W002 | stale waiver |
//!
//! The P-family guards the *serving path*: `raft`, `cluster`, and
//! `broker` prod code must not contain a latent crash, so every
//! panicking construct is either converted to typed error propagation, a
//! stated-invariant assertion, or carries a reasoned waiver. C001 keeps
//! the crate DAG (declared in [`layering`]) from eroding. New rules land
//! incrementally through the baseline ratchet ([`baseline`], CLI
//! `--baseline`): recorded findings are grandfathered, new ones fail
//! `--deny`, and a tree that gets cleaner forces the baseline to be
//! regenerated.
//!
//! Violations are waived inline with
//! `// lint: allow(D002) — <non-empty reason>`; the waiver covers its own
//! line (trailing comment) or the next code line (own-line comment).
//!
//! Run it as `cargo run -p dynatune_lint` (add `--deny` for CI; `--json
//! PATH` writes the machine-readable report). The implementation is a
//! hand-rolled tokenizer (comments, strings, raw strings, char literals
//! all skipped correctly) plus `use`-path resolution, so aliased imports
//! are caught and hazard names inside literals are not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod layering;
pub mod policy;
pub mod report;
pub mod rules;
pub mod tokens;
pub mod uses;
pub mod walk;

use report::LintReport;
use std::io;
use std::path::Path;

/// Lint every scannable `.rs` file under `root` (a workspace checkout),
/// plus every crate/vendor manifest (C001 checks `Cargo.toml` dependency
/// sections against the declared DAG).
///
/// # Errors
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::rust_files(root)?;
    let mut report = LintReport {
        root: root.display().to_string(),
        ..Default::default()
    };
    for rel in &files {
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_default();
        let Some(policy) = policy::policy_for(&rel_str) else {
            continue;
        };
        let src = std::fs::read_to_string(root.join(rel))?;
        let scan = engine::scan_source(&rel_str, &src, &policy);
        report.files_scanned += 1;
        report.violations.extend(scan.violations);
        report.waivers.extend(scan.waivers);
    }
    report.violations.extend(layering::check_manifests(root)?);
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .waivers
        .sort_by(|a, b| (&a.file, a.comment_line).cmp(&(&b.file, b.comment_line)));
    Ok(report)
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
