//! CLI for `dynatune_lint`: scan the workspace, print the report, and
//! (under `--deny`) fail the build on any unwaived violation.
//!
//! ```text
//! cargo run -p dynatune_lint                  # report mode (always exit 0)
//! cargo run -p dynatune_lint -- --deny        # CI mode (exit 1 on findings)
//! cargo run -p dynatune_lint -- --json out.json --sarif out.sarif
//! cargo run -p dynatune_lint -- --only P001,P002      # sweep one rule family
//! cargo run -p dynatune_lint -- --baseline crates/lint/baseline.json --deny
//! cargo run -p dynatune_lint -- --baseline B --update-baseline  # turn the ratchet
//! cargo run -p dynatune_lint -- --rules       # print the rule catalog
//! ```
//!
//! Exit codes: 0 clean (or report mode), 1 `--deny` with findings or a
//! stale baseline, 2 usage errors (unknown flag/rule, unreadable
//! baseline) — mirroring the bench binaries' convention.

use dynatune_lint::baseline::Baseline;
use dynatune_lint::{find_workspace_root, lint_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dynatune_lint [--root DIR] [--deny] [--json PATH] [--sarif PATH]
                     [--baseline PATH [--update-baseline]] [--only RULE[,RULE]] [--rules]
  --root DIR         workspace root to scan (default: walk up from cwd)
  --deny             exit 1 on any unwaived violation or stale baseline (CI mode)
  --json PATH        also write the machine-readable report to PATH
  --sarif PATH       also write a SARIF 2.1.0 report to PATH (GitHub code scanning)
  --baseline PATH    ratchet: grandfather violations recorded in PATH; under --deny
                     only regressions (and stale entries) fail
  --update-baseline  rewrite --baseline PATH from the current scan (turn the ratchet)
  --only RULE[,..]   report only the named rules (e.g. P001,P002); unknown rule ids
                     are a usage error
  --rules            print the rule catalog and exit";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut json: Option<PathBuf> = None;
    let mut sarif: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut only: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage_error("--json needs a path"),
            },
            "--sarif" => match args.next() {
                Some(p) => sarif = Some(PathBuf::from(p)),
                None => return usage_error("--sarif needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_error("--baseline needs a path"),
            },
            "--only" => match args.next() {
                Some(list) => {
                    let mut sel = Vec::new();
                    for r in list.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                        if rules::rule_info(r).is_none() {
                            return usage_error(&format!(
                                "unknown rule `{r}` (see --rules for the catalog)"
                            ));
                        }
                        sel.push(r.to_string());
                    }
                    if sel.is_empty() {
                        return usage_error("--only needs at least one rule id");
                    }
                    only = Some(sel);
                }
                None => return usage_error("--only needs a rule list"),
            },
            "--rules" => {
                for r in rules::RULES {
                    println!("{}  {}\n      fix: {}", r.id, r.summary, r.fix);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }
    if update_baseline && baseline_path.is_none() {
        return usage_error("--update-baseline needs --baseline PATH");
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage_error("no workspace root found (pass --root)"),
    };

    let mut report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => return run_error(&format!("scan failed: {e}")),
    };

    if let Some(sel) = &only {
        report.retain_rules(sel);
    }

    if let Some(path) = &baseline_path {
        if update_baseline {
            let base = Baseline::from_violations(&report.violations);
            if let Err(e) = write_file(path, &base.to_json()) {
                return run_error(&e);
            }
            println!(
                "recorded baseline: {} entr{} -> {}",
                base.len(),
                if base.len() == 1 { "y" } else { "ies" },
                path.display()
            );
        }
        // Apply the (possibly just-rewritten) baseline so the printed
        // report and exit code reflect the ratchet.
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("read baseline {}: {e}", path.display())),
        };
        let mut base = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => return usage_error(&format!("parse baseline {}: {e}", path.display())),
        };
        if let Some(sel) = &only {
            base.retain_rules(sel);
        }
        report.apply_baseline(&base);
    }

    print!("{}", report.human());
    if let Some(path) = &json {
        if let Err(e) = write_file(path, &report.json()) {
            return run_error(&e);
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = &sarif {
        if let Err(e) = write_file(path, &report.sarif()) {
            return run_error(&e);
        }
        println!("wrote {}", path.display());
    }

    if deny && !report.deny_ok() {
        eprintln!(
            "dynatune_lint: {} violation(s), {} stale baseline entr{} — denying. Fix them, \
             waive with `// lint: allow(RULE) — reason`, or regenerate the baseline.",
            report.violations.len(),
            report.stale_baseline.len(),
            if report.stale_baseline.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn write_file(path: &std::path::Path, content: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, content).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Bad invocation: usage + exit 2 (the bench binaries' convention).
fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Environment failure mid-run (I/O): exit 1, no usage spam.
fn run_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
