//! CLI for `dynatune_lint`: scan the workspace, print the report, and
//! (under `--deny`) fail the build on any unwaived violation.
//!
//! ```text
//! cargo run -p dynatune_lint                  # report mode (always exit 0)
//! cargo run -p dynatune_lint -- --deny        # CI mode (exit 1 on findings)
//! cargo run -p dynatune_lint -- --json out.json
//! cargo run -p dynatune_lint -- --rules       # print the rule catalog
//! ```

use dynatune_lint::{find_workspace_root, lint_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dynatune_lint [--root DIR] [--deny] [--json PATH] [--rules]
  --root DIR   workspace root to scan (default: walk up from cwd)
  --deny       exit 1 on any unwaived violation (CI mode)
  --json PATH  also write the machine-readable report to PATH
  --rules      print the rule catalog and exit";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut json: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return fail("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return fail("--json needs a path"),
            },
            "--rules" => {
                for r in rules::RULES {
                    println!("{}  {}\n      fix: {}", r.id, r.summary, r.fix);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return fail("no workspace root found (pass --root)"),
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };

    print!("{}", report.human());
    if let Some(path) = &json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    return fail(&format!("create {}: {e}", parent.display()));
                }
            }
        }
        if let Err(e) = std::fs::write(path, report.json()) {
            return fail(&format!("write {}: {e}", path.display()));
        }
        println!("wrote {}", path.display());
    }

    if deny && !report.clean() {
        eprintln!(
            "dynatune_lint: {} violation(s) — denying. Fix them or waive with \
             `// lint: allow(RULE) — reason`.",
            report.violations.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}
