//! Per-crate policy: which rules apply where.
//!
//! The workspace splits into three worlds:
//!
//! * **Deterministic crates** (`simnet`, `core`, `stats`, `raft`,
//!   `kvstore`, `broker`, `cluster`, the umbrella `src/`, top-level
//!   `tests/` and `examples/`, and this lint itself): everything that
//!   feeds a scenario report. All D-rules apply — including to their
//!   `#[cfg(test)]` code, since tests assert bit-identical reports. The
//!   protocol crates (`raft`, `cluster`, `broker`) additionally get L001
//!   on non-test code.
//! * **The measurement harness** (`crates/bench`, `vendor/criterion`):
//!   wall-clock time is its job, so D001 is off; everything else applies.
//! * **The vendored concurrency shim** (`vendor/rayon`): threads and sync
//!   are its job, so D004 is off there — and *only* there.

/// The rule switches for one kind of code (prod vs test) in one crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// Wall-clock time.
    pub d001: bool,
    /// Hash containers / unordered iteration.
    pub d002: bool,
    /// D002 sub-switch: flag the *presence* of a hash-container type, not
    /// just iteration over one. On for deterministic crates (where the
    /// policy is "just use BTreeMap"), off for vendor shims.
    pub d002_presence: bool,
    /// Ambient randomness.
    pub d003: bool,
    /// Threads/sync.
    pub d004: bool,
    /// `let _ =` discards.
    pub l001: bool,
    /// `.unwrap()` / `.expect()` calls.
    pub p001: bool,
    /// Explicit panic macros.
    pub p002: bool,
    /// Narrowing `as` integer casts.
    pub p003: bool,
}

impl RuleSet {
    /// Is `rule` enabled in this set?
    #[must_use]
    pub fn enabled(&self, rule: &str) -> bool {
        match rule {
            "D001" => self.d001,
            "D002" => self.d002,
            "D003" => self.d003,
            "D004" => self.d004,
            "L001" => self.l001,
            "P001" => self.p001,
            "P002" => self.p002,
            "P003" => self.p003,
            _ => false,
        }
    }
}

/// Policy for one file: who it belongs to and which rules bind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilePolicy {
    /// The policy bucket the file fell into (e.g. `crates/raft`), for
    /// reports.
    pub label: String,
    /// True when the whole file is test-kind (`tests/`, `benches/`,
    /// `examples/`); `#[cfg(test)]` modules inside prod files are
    /// detected separately by the engine.
    pub file_is_test: bool,
    /// Rules for production code.
    pub prod: RuleSet,
    /// Rules for test code (L001/P001/P002/P003 never apply: tests drive
    /// state machines, legitimately discard step results, and panic on
    /// assertion failure by design).
    pub test: RuleSet,
    /// C001 layering scope: `Some(layer)` when the file belongs to a
    /// workspace crate in the declared DAG, `Some(vendor sentinel)` —
    /// the `VENDOR` layer with an empty allowlist — for vendor shims,
    /// `None` for the unconstrained umbrella (`src/`, root `tests/`,
    /// `examples/` re-export everything by design).
    pub layer: Option<&'static crate::layering::CrateLayer>,
}

/// The empty-allowlist layer vendor shims scan under: no `dynatune_*`
/// import is ever a declared edge from a vendored dependency.
pub const VENDOR_LAYER: crate::layering::CrateLayer = crate::layering::CrateLayer {
    dir: "",
    lib: "a vendor shim",
    allowed: &[],
};

const fn det(protocol: bool) -> RuleSet {
    RuleSet {
        d001: true,
        d002: true,
        d002_presence: true,
        d003: true,
        d004: true,
        l001: protocol,
        p001: protocol,
        p002: protocol,
        p003: protocol,
    }
}

const fn without_d001(mut rs: RuleSet) -> RuleSet {
    rs.d001 = false;
    rs
}

const fn without_d004(mut rs: RuleSet) -> RuleSet {
    rs.d004 = false;
    rs
}

const fn vendor_default() -> RuleSet {
    RuleSet {
        d001: true,
        d002: true,
        d002_presence: false,
        d003: true,
        d004: true,
        l001: false,
        p001: false,
        p002: false,
        p003: false,
    }
}

/// Decide the policy for one workspace-relative path (`/`-separated).
/// Returns `None` for files the lint does not scan (non-Rust sources are
/// filtered earlier; this is for completeness).
#[must_use]
pub fn policy_for(rel_path: &str) -> Option<FilePolicy> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let file_is_test = rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
        || rel_path.contains("/examples/");

    let (label, prod, layer): (&str, RuleSet, Option<&'static crate::layering::CrateLayer>) =
        if let Some(rest) = rel_path.strip_prefix("crates/") {
            let name = rest.split('/').next().unwrap_or("");
            let layer = crate::layering::layer_for_dir(name);
            match name {
                // Protocol crates: full deterministic set plus L001 and
                // the panic-freedom family (P001/P002/P003).
                "raft" | "cluster" | "broker" => ("protocol", det(true), layer),
                // Other deterministic crates.
                "simnet" | "core" | "stats" | "kvstore" | "lint" => {
                    ("deterministic", det(false), layer)
                }
                // The measurement harness owns the wall clock.
                "bench" => ("bench-harness", without_d001(det(false)), layer),
                _ => ("deterministic", det(false), layer),
            }
        } else if let Some(rest) = rel_path.strip_prefix("vendor/") {
            let name = rest.split('/').next().unwrap_or("");
            let vendor = Some(&VENDOR_LAYER);
            match name {
                // The one place threads/locks are allowed: the shim that
                // *provides* deterministic fan-out.
                "rayon" => ("vendor-rayon", without_d004(vendor_default()), vendor),
                // The timing harness shim: Instant is its whole job.
                "criterion" => ("vendor-criterion", without_d001(vendor_default()), vendor),
                _ => ("vendor", vendor_default(), vendor),
            }
        } else {
            // Umbrella src/, top-level tests/ and examples/: they re-export
            // or exercise the whole workspace, so C001 does not bind them.
            ("workspace-root", det(false), None)
        };

    let mut test = prod;
    test.l001 = false;
    test.p001 = false;
    test.p002 = false;
    test.p003 = false;
    Some(FilePolicy {
        label: label.to_string(),
        file_is_test,
        prod,
        test,
        layer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_crates_get_l001_in_prod_only() {
        let p = policy_for("crates/raft/src/node.rs").unwrap();
        assert!(p.prod.l001);
        assert!(!p.test.l001);
        assert!(!p.file_is_test);
        let t = policy_for("crates/raft/tests/pipeline.rs").unwrap();
        assert!(t.file_is_test);
    }

    #[test]
    fn bench_and_criterion_may_read_the_clock() {
        assert!(
            !policy_for("crates/bench/src/bin/scenarios.rs")
                .unwrap()
                .prod
                .d001
        );
        assert!(!policy_for("vendor/criterion/src/lib.rs").unwrap().prod.d001);
        assert!(policy_for("crates/simnet/src/world.rs").unwrap().prod.d001);
    }

    #[test]
    fn only_rayon_may_thread() {
        assert!(!policy_for("vendor/rayon/src/lib.rs").unwrap().prod.d004);
        assert!(policy_for("vendor/bytes/src/lib.rs").unwrap().prod.d004);
        assert!(policy_for("crates/cluster/src/sim.rs").unwrap().prod.d004);
    }

    #[test]
    fn panic_rules_bind_protocol_prod_code_only() {
        let p = policy_for("crates/broker/src/partition.rs").unwrap();
        assert!(p.prod.p001 && p.prod.p002 && p.prod.p003);
        assert!(!p.test.p001 && !p.test.p002 && !p.test.p003);
        let det = policy_for("crates/simnet/src/world.rs").unwrap();
        assert!(!det.prod.p001 && !det.prod.p002 && !det.prod.p003);
        let bench = policy_for("crates/bench/src/lib.rs").unwrap();
        assert!(!bench.prod.p001);
    }

    #[test]
    fn layering_scope_follows_the_dag() {
        let raft = policy_for("crates/raft/src/node.rs").unwrap();
        assert_eq!(raft.layer.unwrap().lib, "dynatune_raft");
        let vendor = policy_for("vendor/bytes/src/lib.rs").unwrap();
        assert!(vendor.layer.unwrap().allowed.is_empty());
        assert!(policy_for("src/lib.rs").unwrap().layer.is_none());
        assert!(policy_for("tests/docs_sync.rs").unwrap().layer.is_none());
    }

    #[test]
    fn deterministic_world_denies_hash_presence_vendor_does_not() {
        assert!(
            policy_for("tests/election_safety.rs")
                .unwrap()
                .prod
                .d002_presence
        );
        assert!(policy_for("src/lib.rs").unwrap().prod.d002_presence);
        assert!(
            !policy_for("vendor/proptest/src/lib.rs")
                .unwrap()
                .prod
                .d002_presence
        );
    }
}
