//! Per-crate policy: which rules apply where.
//!
//! The workspace splits into three worlds:
//!
//! * **Deterministic crates** (`simnet`, `core`, `stats`, `raft`,
//!   `kvstore`, `broker`, `cluster`, the umbrella `src/`, top-level
//!   `tests/` and `examples/`, and this lint itself): everything that
//!   feeds a scenario report. All D-rules apply — including to their
//!   `#[cfg(test)]` code, since tests assert bit-identical reports. The
//!   protocol crates (`raft`, `cluster`, `broker`) additionally get L001
//!   on non-test code.
//! * **The measurement harness** (`crates/bench`, `vendor/criterion`):
//!   wall-clock time is its job, so D001 is off; everything else applies.
//! * **The vendored concurrency shim** (`vendor/rayon`): threads and sync
//!   are its job, so D004 is off there — and *only* there.

/// The rule switches for one kind of code (prod vs test) in one crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// Wall-clock time.
    pub d001: bool,
    /// Hash containers / unordered iteration.
    pub d002: bool,
    /// D002 sub-switch: flag the *presence* of a hash-container type, not
    /// just iteration over one. On for deterministic crates (where the
    /// policy is "just use BTreeMap"), off for vendor shims.
    pub d002_presence: bool,
    /// Ambient randomness.
    pub d003: bool,
    /// Threads/sync.
    pub d004: bool,
    /// `let _ =` discards.
    pub l001: bool,
}

impl RuleSet {
    /// Is `rule` enabled in this set?
    #[must_use]
    pub fn enabled(&self, rule: &str) -> bool {
        match rule {
            "D001" => self.d001,
            "D002" => self.d002,
            "D003" => self.d003,
            "D004" => self.d004,
            "L001" => self.l001,
            _ => false,
        }
    }
}

/// Policy for one file: who it belongs to and which rules bind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilePolicy {
    /// The policy bucket the file fell into (e.g. `crates/raft`), for
    /// reports.
    pub label: String,
    /// True when the whole file is test-kind (`tests/`, `benches/`,
    /// `examples/`); `#[cfg(test)]` modules inside prod files are
    /// detected separately by the engine.
    pub file_is_test: bool,
    /// Rules for production code.
    pub prod: RuleSet,
    /// Rules for test code (L001 never applies: tests drive state
    /// machines and legitimately discard step results).
    pub test: RuleSet,
}

const fn det(l001: bool) -> RuleSet {
    RuleSet {
        d001: true,
        d002: true,
        d002_presence: true,
        d003: true,
        d004: true,
        l001,
    }
}

const fn without_d001(mut rs: RuleSet) -> RuleSet {
    rs.d001 = false;
    rs
}

const fn without_d004(mut rs: RuleSet) -> RuleSet {
    rs.d004 = false;
    rs
}

const fn vendor_default() -> RuleSet {
    RuleSet {
        d001: true,
        d002: true,
        d002_presence: false,
        d003: true,
        d004: true,
        l001: false,
    }
}

/// Decide the policy for one workspace-relative path (`/`-separated).
/// Returns `None` for files the lint does not scan (non-Rust sources are
/// filtered earlier; this is for completeness).
#[must_use]
pub fn policy_for(rel_path: &str) -> Option<FilePolicy> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let file_is_test = rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
        || rel_path.contains("/examples/");

    let (label, prod): (&str, RuleSet) = if let Some(rest) = rel_path.strip_prefix("crates/") {
        let name = rest.split('/').next().unwrap_or("");
        match name {
            // Protocol crates: full deterministic set plus L001.
            "raft" | "cluster" | "broker" => ("protocol", det(true)),
            // Other deterministic crates.
            "simnet" | "core" | "stats" | "kvstore" | "lint" => ("deterministic", det(false)),
            // The measurement harness owns the wall clock.
            "bench" => ("bench-harness", without_d001(det(false))),
            _ => ("deterministic", det(false)),
        }
    } else if let Some(rest) = rel_path.strip_prefix("vendor/") {
        let name = rest.split('/').next().unwrap_or("");
        match name {
            // The one place threads/locks are allowed: the shim that
            // *provides* deterministic fan-out.
            "rayon" => ("vendor-rayon", without_d004(vendor_default())),
            // The timing harness shim: Instant is its whole job.
            "criterion" => ("vendor-criterion", without_d001(vendor_default())),
            _ => ("vendor", vendor_default()),
        }
    } else {
        // Umbrella src/, top-level tests/ and examples/.
        ("workspace-root", det(false))
    };

    let mut test = prod;
    test.l001 = false;
    Some(FilePolicy {
        label: label.to_string(),
        file_is_test,
        prod,
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_crates_get_l001_in_prod_only() {
        let p = policy_for("crates/raft/src/node.rs").unwrap();
        assert!(p.prod.l001);
        assert!(!p.test.l001);
        assert!(!p.file_is_test);
        let t = policy_for("crates/raft/tests/pipeline.rs").unwrap();
        assert!(t.file_is_test);
    }

    #[test]
    fn bench_and_criterion_may_read_the_clock() {
        assert!(
            !policy_for("crates/bench/src/bin/scenarios.rs")
                .unwrap()
                .prod
                .d001
        );
        assert!(!policy_for("vendor/criterion/src/lib.rs").unwrap().prod.d001);
        assert!(policy_for("crates/simnet/src/world.rs").unwrap().prod.d001);
    }

    #[test]
    fn only_rayon_may_thread() {
        assert!(!policy_for("vendor/rayon/src/lib.rs").unwrap().prod.d004);
        assert!(policy_for("vendor/bytes/src/lib.rs").unwrap().prod.d004);
        assert!(policy_for("crates/cluster/src/sim.rs").unwrap().prod.d004);
    }

    #[test]
    fn deterministic_world_denies_hash_presence_vendor_does_not() {
        assert!(
            policy_for("tests/election_safety.rs")
                .unwrap()
                .prod
                .d002_presence
        );
        assert!(policy_for("src/lib.rs").unwrap().prod.d002_presence);
        assert!(
            !policy_for("vendor/proptest/src/lib.rs")
                .unwrap()
                .prod
                .d002_presence
        );
    }
}
