//! Report assembly: human-readable text, machine-readable JSON, and a
//! SARIF 2.1.0 view for GitHub code scanning.

use crate::baseline::{Baseline, StaleEntry};
use crate::engine::{count_by_rule, Violation, Waiver};
use crate::rules;
use std::fmt::Write as _;

/// The whole-workspace lint result.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Workspace root the scan ran over (display form).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings that survived waivers, sorted by (file, line, rule).
    /// After [`LintReport::apply_baseline`], only regressions remain here.
    pub violations: Vec<Violation>,
    /// Every well-formed waiver, with use status.
    pub waivers: Vec<Waiver>,
    /// Findings suppressed by the baseline ratchet (0 without one).
    pub grandfathered: usize,
    /// Baseline entries the tree has outgrown — the ratchet must be
    /// regenerated before `--deny` passes.
    pub stale_baseline: Vec<StaleEntry>,
}

impl LintReport {
    /// True when nothing (including waiver hygiene) fired.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when a `--deny` run passes: no live violations *and* no stale
    /// baseline entries (a shrunk tree must turn the ratchet).
    #[must_use]
    pub fn deny_ok(&self) -> bool {
        self.clean() && self.stale_baseline.is_empty()
    }

    /// Apply the baseline ratchet: grandfathered findings leave
    /// `violations`, regressions stay, stale entries are surfaced.
    pub fn apply_baseline(&mut self, baseline: &Baseline) {
        let outcome = baseline.apply(std::mem::take(&mut self.violations));
        self.violations = outcome.regressions;
        self.grandfathered = outcome.grandfathered;
        self.stale_baseline = outcome.stale;
    }

    /// Keep only violations of the given rules (the `--only` filter).
    /// Waivers are untouched: filtering is a *view* for sweeping one rule
    /// at a time, not a policy change.
    pub fn retain_rules(&mut self, only: &[String]) {
        self.violations.retain(|v| only.iter().any(|r| r == v.rule));
    }

    /// Human-readable report.
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let fix = rules::rule_info(v.rule).map_or("", |r| r.fix);
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            if !fix.is_empty() {
                let _ = writeln!(out, "    fix: {fix}");
            }
        }
        let counts = count_by_rule(&self.violations);
        let used_waivers = self.waivers.iter().filter(|w| w.used).count();
        if !counts.is_empty() {
            let _ = writeln!(out);
            for (rule, n) in &counts {
                let _ = writeln!(out, "  {rule}: {n} violation(s)");
            }
        }
        for s in &self.stale_baseline {
            let _ = writeln!(
                out,
                "stale baseline: {} {} records {} but only {} remain — regenerate with \
                 --update-baseline",
                s.file, s.rule, s.recorded, s.found
            );
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} violation(s), {} active waiver(s){}",
            self.files_scanned,
            self.violations.len(),
            used_waivers,
            if self.grandfathered > 0 {
                format!(", {} grandfathered by baseline", self.grandfathered)
            } else {
                String::new()
            }
        );
        out
    }

    /// SARIF 2.1.0 report (the format GitHub code scanning ingests, so CI
    /// can annotate PR diffs with lint findings). One run, one driver,
    /// every catalog rule listed, one result per live violation with a
    /// `file:line` physical location.
    #[must_use]
    pub fn sarif(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str("  \"runs\": [\n    {\n");
        out.push_str("      \"tool\": {\n        \"driver\": {\n");
        out.push_str("          \"name\": \"dynatune_lint\",\n");
        let _ = writeln!(
            out,
            "          \"version\": \"{}\",",
            env!("CARGO_PKG_VERSION")
        );
        out.push_str(
            "          \"informationUri\": \
             \"https://github.com/dynatune/dynatune#static-analysis\",\n",
        );
        out.push_str("          \"rules\": [\n");
        for (i, r) in rules::RULES.iter().enumerate() {
            let _ = write!(
                out,
                "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
                 \"help\": {{\"text\": \"{}\"}}, \"defaultConfiguration\": \
                 {{\"level\": \"error\"}}}}",
                r.id,
                esc(r.summary),
                esc(r.fix)
            );
            out.push_str(if i + 1 < rules::RULES.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("          ]\n        }\n      },\n");
        out.push_str("      \"results\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let rule_index = rules::RULES
                .iter()
                .position(|r| r.id == v.rule)
                .unwrap_or(0);
            let _ = write!(
                out,
                "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
                 \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"%SRCROOT%\"}}, \
                 \"region\": {{\"startLine\": {}}}}}}}]}}",
                v.rule,
                rule_index,
                esc(&v.message),
                esc(&v.file),
                v.line.max(1)
            );
            out.push_str(if i + 1 < self.violations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n    }\n  ]\n}\n");
        out
    }

    /// Machine-readable JSON (hand-rolled; the crate is dependency-free).
    #[must_use]
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"dynatune-lint/v1\",");
        let _ = writeln!(out, "  \"root\": \"{}\",", esc(&self.root));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.clean());
        let _ = writeln!(out, "  \"grandfathered\": {},", self.grandfathered);
        let _ = writeln!(out, "  \"stale_baseline\": {},", self.stale_baseline.len());
        out.push_str("  \"rules\": [\n");
        for (i, r) in rules::RULES.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": \"{}\", \"summary\": \"{}\", \"fix\": \"{}\"}}",
                r.id,
                esc(r.summary),
                esc(r.fix)
            );
            out.push_str(if i + 1 < rules::RULES.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                esc(&v.file),
                v.line,
                v.rule,
                esc(&v.message)
            );
            out.push_str(if i + 1 < self.violations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}, \"rules\": [{}], \"reason\": \"{}\", \
                 \"used\": {}}}",
                esc(&w.file),
                w.comment_line,
                w.rules
                    .iter()
                    .map(|r| format!("\"{}\"", esc(r)))
                    .collect::<Vec<_>>()
                    .join(", "),
                esc(&w.reason),
                w.used
            );
            out.push_str(if i + 1 < self.waivers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (mirrors the bench crate's convention).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_reports_clean_flag() {
        let mut r = LintReport {
            root: "/tmp/x".to_string(),
            files_scanned: 3,
            ..Default::default()
        };
        assert!(r.clean());
        r.violations.push(Violation {
            file: "a\"b.rs".to_string(),
            line: 7,
            rule: "D001",
            message: "quote \" and backslash \\".to_string(),
        });
        let json = r.json();
        assert!(json.contains("\"schema\": \"dynatune-lint/v1\""));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("quote \\\" and backslash \\\\"));
        assert!(json.contains("\"clean\": false"));
        assert!(r.human().contains("a\"b.rs:7: [D001]"));
    }
}
