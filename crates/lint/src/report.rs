//! Report assembly: human-readable text and machine-readable JSON.

use crate::engine::{count_by_rule, Violation, Waiver};
use crate::rules;
use std::fmt::Write as _;

/// The whole-workspace lint result.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Workspace root the scan ran over (display form).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings that survived waivers, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Every well-formed waiver, with use status.
    pub waivers: Vec<Waiver>,
}

impl LintReport {
    /// True when nothing (including waiver hygiene) fired.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable report.
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let fix = rules::rule_info(v.rule).map_or("", |r| r.fix);
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            if !fix.is_empty() {
                let _ = writeln!(out, "    fix: {fix}");
            }
        }
        let counts = count_by_rule(&self.violations);
        let used_waivers = self.waivers.iter().filter(|w| w.used).count();
        if !counts.is_empty() {
            let _ = writeln!(out);
            for (rule, n) in &counts {
                let _ = writeln!(out, "  {rule}: {n} violation(s)");
            }
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} violation(s), {} active waiver(s)",
            self.files_scanned,
            self.violations.len(),
            used_waivers
        );
        out
    }

    /// Machine-readable JSON (hand-rolled; the crate is dependency-free).
    #[must_use]
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"dynatune-lint/v1\",");
        let _ = writeln!(out, "  \"root\": \"{}\",", esc(&self.root));
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.clean());
        out.push_str("  \"rules\": [\n");
        for (i, r) in rules::RULES.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": \"{}\", \"summary\": \"{}\", \"fix\": \"{}\"}}",
                r.id,
                esc(r.summary),
                esc(r.fix)
            );
            out.push_str(if i + 1 < rules::RULES.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                esc(&v.file),
                v.line,
                v.rule,
                esc(&v.message)
            );
            out.push_str(if i + 1 < self.violations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"waivers\": [\n");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}, \"rules\": [{}], \"reason\": \"{}\", \
                 \"used\": {}}}",
                esc(&w.file),
                w.comment_line,
                w.rules
                    .iter()
                    .map(|r| format!("\"{}\"", esc(r)))
                    .collect::<Vec<_>>()
                    .join(", "),
                esc(&w.reason),
                w.used
            );
            out.push_str(if i + 1 < self.waivers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (mirrors the bench crate's convention).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_reports_clean_flag() {
        let mut r = LintReport {
            root: "/tmp/x".to_string(),
            files_scanned: 3,
            ..Default::default()
        };
        assert!(r.clean());
        r.violations.push(Violation {
            file: "a\"b.rs".to_string(),
            line: 7,
            rule: "D001",
            message: "quote \" and backslash \\".to_string(),
        });
        let json = r.json();
        assert!(json.contains("\"schema\": \"dynatune-lint/v1\""));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("quote \\\" and backslash \\\\"));
        assert!(json.contains("\"clean\": false"));
        assert!(r.human().contains("a\"b.rs:7: [D001]"));
    }
}
