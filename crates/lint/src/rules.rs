//! Rule catalog: the determinism/hazard classes the lint enforces.
//!
//! Every rule has a stable ID (cited by ARCHITECTURE.md and by inline
//! waivers), a hazard description, and a fix hint. The path tables below
//! are matched against *resolved* paths — `use std::time::Instant as
//! Clock` makes `Clock::now()` resolve to `std::time::Instant::now`, so
//! aliasing cannot dodge a rule.

/// Stable rule identifiers.
pub mod id {
    /// Wall-clock time in simulated/deterministic code.
    pub const D001: &str = "D001";
    /// `HashMap`/`HashSet` (unordered iteration) in a deterministic crate.
    pub const D002: &str = "D002";
    /// Ambient randomness or randomized hashing.
    pub const D003: &str = "D003";
    /// Thread/sync primitives outside the vendored rayon shim.
    pub const D004: &str = "D004";
    /// `let _ =` result discard in protocol code.
    pub const L001: &str = "L001";
    /// `.unwrap()` / `.expect()` in protocol prod code.
    pub const P001: &str = "P001";
    /// Explicit panic macro (`panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!`) in protocol prod code.
    pub const P002: &str = "P002";
    /// Narrowing `as` integer cast in protocol prod code.
    pub const P003: &str = "P003";
    /// Crate-layering violation: an import outside the declared DAG.
    pub const C001: &str = "C001";
    /// Malformed waiver comment (missing reason or bad syntax).
    pub const W001: &str = "W001";
    /// Stale waiver: covers a line with no matching violation.
    pub const W002: &str = "W002";
}

/// Human-facing metadata for one rule (drives `--rules`, the JSON report
/// and the docs).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable ID (`D001`...).
    pub id: &'static str,
    /// What the hazard is.
    pub summary: &'static str,
    /// How to fix a finding.
    pub fix: &'static str,
}

/// Every rule, in ID order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: id::D001,
        summary: "wall-clock time (std::time::Instant / SystemTime) in deterministic code — \
                  simulated components must read time from HostCtx::now / SimTime only",
        fix: "thread virtual time through the call; wall-clock timing belongs to the \
              bench/criterion harness",
    },
    RuleInfo {
        id: id::D002,
        summary: "HashMap/HashSet in a deterministic crate — iteration order depends on \
                  SipHash keys and allocation history, so any iteration (or report built \
                  from one) can differ across runs and --jobs widths",
        fix: "use BTreeMap/BTreeSet (ordered, seed-free); if the map provably is never \
              iterated, waive with a stated reason",
    },
    RuleInfo {
        id: id::D003,
        summary: "ambient randomness or randomized hashing (rand::thread_rng / rand::random / \
                  RandomState / DefaultHasher) — entropy outside the master seed",
        fix: "draw from the simulator's splittable Rng (seed / child(k)); hash with an \
              order-free structure or a fixed-key hasher",
    },
    RuleInfo {
        id: id::D004,
        summary: "thread or sync primitive (std::thread, Mutex, RwLock, Condvar, mpsc, \
                  Barrier) outside the vendored rayon shim — scheduling order is \
                  OS-nondeterministic",
        fix: "fan out through the rayon shim (index-seeded, input-order merge) and keep \
              per-trial state unshared",
    },
    RuleInfo {
        id: id::L001,
        summary: "`let _ =` discard in protocol code — silently dropped Results/effects are \
                  the silent-stall hazard class (a dropped append/ack never retries)",
        fix: "handle or propagate the value; if the discard is intentional, destructure to \
              a named `_reason` binding or waive with the invariant that makes it safe",
    },
    RuleInfo {
        id: id::P001,
        summary: "`.unwrap()` / `.expect()` in protocol prod code — a latent crash in the \
                  serving path (raft/cluster/broker serve live traffic; a poisoned Option \
                  here takes the whole replica down)",
        fix: "propagate a typed error, restructure so the None/Err case is impossible by \
              construction, state the invariant with `assert!`/`invariant!`, or waive with \
              the invariant that makes the value always present",
    },
    RuleInfo {
        id: id::P002,
        summary: "explicit panic (`panic!` / `unreachable!` / `todo!` / `unimplemented!`) in \
                  protocol prod code — only a *stated invariant* justifies crashing a \
                  serving replica",
        fix: "return a typed error for reachable conditions; for true invariants use \
              `assert!`/`dynatune_core::invariant!` (message required) or waive with the \
              invariant spelled out",
    },
    RuleInfo {
        id: id::P003,
        summary: "narrowing `as` integer cast (u8/u16/u32/i8/i16/i32) in protocol prod code \
                  — log offsets and indexes are u64; a silent truncation corrupts state \
                  instead of failing",
        fix: "keep arithmetic in the wide type, use `u32::try_from(x)` with an explicit \
              overflow policy (saturate/propagate), or waive with the bound that makes \
              the cast lossless",
    },
    RuleInfo {
        id: id::C001,
        summary: "crate-layering violation: a `use dynatune_*` import (or Cargo.toml \
                  dependency) outside the declared crate DAG — e.g. `raft` importing \
                  `cluster` inverts the protocol/serving boundary",
        fix: "depend only on lower layers (see ARCHITECTURE.md \"Crate layering\" and \
              `crates/lint/src/layering.rs`); move shared code down the DAG instead of \
              importing up",
    },
    RuleInfo {
        id: id::W001,
        summary: "malformed waiver comment",
        fix: "waiver syntax is `// lint: allow(D00X) — <non-empty reason>`",
    },
    RuleInfo {
        id: id::W002,
        summary: "stale waiver: the covered line has no violation of the waived rule",
        fix: "delete the waiver (or move it next to the code it excuses)",
    },
];

/// Look up one rule's metadata by ID.
#[must_use]
pub fn rule_info(rule_id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == rule_id)
}

/// True when `id` names a known waivable rule (the W-rules are about the
/// waivers themselves and cannot be waived).
#[must_use]
pub fn is_waivable(rule_id: &str) -> bool {
    matches!(
        rule_id,
        id::D001
            | id::D002
            | id::D003
            | id::D004
            | id::L001
            | id::P001
            | id::P002
            | id::P003
            | id::C001
    )
}

/// Macro names whose invocation is an explicit panic (P002).
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Cast-target type names that narrow a 64-bit offset/index (P003).
/// `u64`/`i64`/`u128`/`usize` are not listed: they cannot truncate the
/// u64 offsets/indexes this rule protects.
pub const NARROWING_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// A hazard path: the rule it belongs to plus the path-prefix that
/// triggers it.
pub struct HazardPath {
    /// Owning rule ID.
    pub rule: &'static str,
    /// Path prefix, outermost segment first. A resolved path matches when
    /// it starts with these segments.
    pub path: &'static [&'static str],
}

/// Path prefixes that trigger D/L rules when referenced in code covered by
/// the relevant policy. Matching is prefix-based on resolved segments, so
/// `std::thread` also catches `std::thread::spawn` and `std::thread::sleep`.
pub const HAZARD_PATHS: &[HazardPath] = &[
    // D001 — wall clock.
    HazardPath {
        rule: id::D001,
        path: &["std", "time", "Instant"],
    },
    HazardPath {
        rule: id::D001,
        path: &["std", "time", "SystemTime"],
    },
    HazardPath {
        rule: id::D001,
        path: &["std", "time", "UNIX_EPOCH"],
    },
    // D002 — unordered containers (the hash_map/hash_set modules cover
    // Entry/Iter/RandomState re-imports).
    HazardPath {
        rule: id::D002,
        path: &["std", "collections", "HashMap"],
    },
    HazardPath {
        rule: id::D002,
        path: &["std", "collections", "HashSet"],
    },
    HazardPath {
        rule: id::D002,
        path: &["std", "collections", "hash_map"],
    },
    HazardPath {
        rule: id::D002,
        path: &["std", "collections", "hash_set"],
    },
    // D003 — ambient randomness / randomized hashing.
    HazardPath {
        rule: id::D003,
        path: &["rand", "thread_rng"],
    },
    HazardPath {
        rule: id::D003,
        path: &["rand", "random"],
    },
    HazardPath {
        rule: id::D003,
        path: &["rand", "rngs", "ThreadRng"],
    },
    HazardPath {
        rule: id::D003,
        path: &["std", "collections", "hash_map", "RandomState"],
    },
    HazardPath {
        rule: id::D003,
        path: &["std", "hash", "RandomState"],
    },
    HazardPath {
        rule: id::D003,
        path: &["std", "collections", "hash_map", "DefaultHasher"],
    },
    HazardPath {
        rule: id::D003,
        path: &["std", "hash", "DefaultHasher"],
    },
    // D004 — threads and sync. `std::thread` as a prefix catches spawn,
    // sleep, park, scope, JoinHandle...
    HazardPath {
        rule: id::D004,
        path: &["std", "thread"],
    },
    HazardPath {
        rule: id::D004,
        path: &["std", "sync", "Mutex"],
    },
    HazardPath {
        rule: id::D004,
        path: &["std", "sync", "RwLock"],
    },
    HazardPath {
        rule: id::D004,
        path: &["std", "sync", "Condvar"],
    },
    HazardPath {
        rule: id::D004,
        path: &["std", "sync", "Barrier"],
    },
    HazardPath {
        rule: id::D004,
        path: &["std", "sync", "mpsc"],
    },
];

/// Method names that iterate a collection — calling any of these on a
/// known hash-container binding is a D002 violation even where the plain
/// type reference is allowed.
pub const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Does a resolved path trigger a hazard? Returns every matching rule ID
/// (a path can belong to two rules: `std::collections::hash_map::
/// RandomState` is both a hash-container module reference and a
/// randomized-hashing source).
#[must_use]
pub fn matching_rules(resolved: &[String]) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for hp in HAZARD_PATHS {
        if resolved.len() >= hp.path.len()
            && hp.path.iter().zip(resolved.iter()).all(|(a, b)| a == b)
            && !hits.contains(&hp.rule)
        {
            hits.push(hp.rule);
        }
    }
    hits
}

/// Is this resolved path a hash-container type (for binding tracking)?
#[must_use]
pub fn is_hash_container(resolved: &[String]) -> bool {
    matching_rules(resolved).contains(&id::D002)
}
