//! A minimal Rust lexer — just enough structure for hazard scanning.
//!
//! The scanner downstream only needs identifiers, the `::` path
//! separator, and single-character punctuation, but it needs them with
//! *no false positives from non-code text*: hazard names legally appear
//! inside line/block comments (nested), string / byte-string / raw-string
//! literals, and char literals, and none of those may produce tokens.
//! Line comments are kept (not discarded) because the waiver pass reads
//! `// lint: allow(...)` annotations out of them.

/// One meaningful token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `let`, `_`, ...). Raw
    /// identifiers (`r#type`) lex to their unprefixed name.
    Ident(String),
    /// The `::` path separator.
    PathSep,
    /// Any other significant character (`.`, `(`, `{`, `=`, ...).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// A line comment (`// ...`), kept for waiver parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the leading `//`, untrimmed (doc-comment markers `/`
    /// and `!` are still present).
    pub text: String,
    /// True when only whitespace preceded the `//` on its line — an
    /// own-line waiver covers the *next* code line, a trailing one its
    /// own.
    pub own_line: bool,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex one source file. Never fails: unrecognized bytes become `Punct`s,
/// and unterminated literals simply consume to end-of-file (the compiler,
/// not the lint, owns rejecting malformed Rust).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;

    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment: record it, then resume at the newline.
        if c == '/' && cs.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < cs.len() && cs[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: cs[start..j].iter().collect(),
                own_line: !line_has_code,
            });
            i = j;
            continue;
        }
        // Block comment, with nesting (Rust block comments nest).
        if c == '/' && cs.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < cs.len() && depth > 0 {
                if cs[j] == '\n' {
                    line += 1;
                    line_has_code = false;
                    j += 1;
                } else if cs[j] == '/' && cs.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if cs[j] == '*' && cs.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }

        line_has_code = true;

        // String-family literals. Handle the prefixed forms before plain
        // identifiers so `r"..."` / `br#"..."#` / `b"..."` / `b'x'` don't
        // lex as an ident followed by garbage.
        if c == '"' {
            i = skip_string(&cs, i + 1, &mut line);
            continue;
        }
        if c == 'r' || c == 'b' {
            // Raw (byte) string: r"..."  r#"..."#  br"..."  br##"..."##
            let after_b = if c == 'b' && cs.get(i + 1) == Some(&'r') {
                i + 2
            } else if c == 'r' {
                i + 1
            } else {
                usize::MAX // plain `b` prefix handled below
            };
            if after_b != usize::MAX {
                let mut j = after_b;
                while cs.get(j) == Some(&'#') {
                    j += 1;
                }
                if cs.get(j) == Some(&'"') {
                    let hashes = j - after_b;
                    i = skip_raw_string(&cs, j + 1, hashes, &mut line);
                    continue;
                }
                // Raw identifier `r#name` lexes to `name`.
                if c == 'r' && after_b == i + 1 && cs.get(i + 1) == Some(&'#') {
                    if let Some(&c2) = cs.get(i + 2) {
                        if is_ident_start(c2) {
                            let (name, j) = take_ident(&cs, i + 2);
                            out.tokens.push(Token {
                                line,
                                tok: Tok::Ident(name),
                            });
                            i = j;
                            continue;
                        }
                    }
                }
            }
            if c == 'b' {
                if cs.get(i + 1) == Some(&'"') {
                    i = skip_string(&cs, i + 2, &mut line);
                    continue;
                }
                if cs.get(i + 1) == Some(&'\'') {
                    i = skip_char_literal(&cs, i + 1);
                    continue;
                }
            }
            // Fall through: ordinary identifier starting with r/b.
        }
        if is_ident_start(c) {
            let (name, j) = take_ident(&cs, i);
            out.tokens.push(Token {
                line,
                tok: Tok::Ident(name),
            });
            i = j;
            continue;
        }
        // Char literal vs lifetime/loop-label: '\..' and 'x' are chars;
        // 'ident (no closing quote right after one char) is a lifetime.
        if c == '\'' {
            if cs.get(i + 1) == Some(&'\\') || cs.get(i + 2) == Some(&'\'') {
                i = skip_char_literal(&cs, i);
                continue;
            }
            // Lifetime or label: skip the quote and its identifier.
            i += 1;
            while i < cs.len() && is_ident_cont(cs[i]) {
                i += 1;
            }
            continue;
        }
        // Numbers produce no tokens; consume them carefully so `0.iter()`
        // on a tuple field still yields the `.` and `iter` tokens.
        if c.is_ascii_digit() {
            i = skip_number(&cs, i);
            continue;
        }
        if c == ':' && cs.get(i + 1) == Some(&':') {
            out.tokens.push(Token {
                line,
                tok: Tok::PathSep,
            });
            i += 2;
            continue;
        }
        out.tokens.push(Token {
            line,
            tok: Tok::Punct(c),
        });
        i += 1;
    }
    out
}

fn take_ident(cs: &[char], mut i: usize) -> (String, usize) {
    let start = i;
    while i < cs.len() && is_ident_cont(cs[i]) {
        i += 1;
    }
    (cs[start..i].iter().collect(), i)
}

/// Skip a plain (or byte) string body starting *after* the opening quote.
/// Returns the index after the closing quote.
fn skip_string(cs: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < cs.len() {
        match cs[i] {
            '\\' => i += 2, // escape: skip the escaped char blindly
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string body starting *after* the opening quote; `hashes` is
/// the number of `#`s that must follow the closing quote.
fn skip_raw_string(cs: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < cs.len() {
        if cs[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if cs[i] == '"' {
            let mut k = 0usize;
            while k < hashes && cs.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skip a char literal starting at its opening quote. Handles `'x'`,
/// `'\''`, `'\\'`, and `'\u{1F600}'`.
fn skip_char_literal(cs: &[char], mut i: usize) -> usize {
    i += 1; // opening quote
    if cs.get(i) == Some(&'\\') {
        i += 1;
        if cs.get(i) == Some(&'u') && cs.get(i + 1) == Some(&'{') {
            i += 2;
            while i < cs.len() && cs[i] != '}' {
                i += 1;
            }
            i += 1; // '}'
        } else {
            i += 1; // the escaped char
        }
    } else {
        i += 1; // the literal char
    }
    if cs.get(i) == Some(&'\'') {
        i += 1;
    }
    i
}

/// Skip a numeric literal: integer, float (`1.5e-3`), radix (`0x1F`),
/// separators (`1_000`) and type suffixes (`64u32`). Stops *before* a `.`
/// that is not followed by a digit, so ranges (`0..n`) and tuple-field
/// method calls (`self.0.iter()`) keep their punctuation.
fn skip_number(cs: &[char], mut i: usize) -> usize {
    // Radix prefix consumes alphanumerics wholesale (0x1F, 0b1010, 0o777).
    if cs[i] == '0'
        && matches!(
            cs.get(i + 1),
            Some(&'x') | Some(&'o') | Some(&'b') | Some(&'X')
        )
    {
        i += 2;
        while i < cs.len() && (cs[i].is_ascii_alphanumeric() || cs[i] == '_') {
            i += 1;
        }
        return i;
    }
    while i < cs.len() && (cs[i].is_ascii_digit() || cs[i] == '_') {
        i += 1;
    }
    if cs.get(i) == Some(&'.') && cs.get(i + 1).is_some_and(char::is_ascii_digit) {
        i += 1;
        while i < cs.len() && (cs[i].is_ascii_digit() || cs[i] == '_') {
            i += 1;
        }
    }
    if matches!(cs.get(i), Some(&'e') | Some(&'E'))
        && (cs.get(i + 1).is_some_and(char::is_ascii_digit)
            || (matches!(cs.get(i + 1), Some(&'+') | Some(&'-'))
                && cs.get(i + 2).is_some_and(char::is_ascii_digit)))
    {
        i += 1;
        if matches!(cs.get(i), Some(&'+') | Some(&'-')) {
            i += 1;
        }
        while i < cs.len() && cs[i].is_ascii_digit() {
            i += 1;
        }
    }
    // Type suffix (u32, f64, usize).
    while i < cs.len() && is_ident_cont(cs[i]) {
        i += 1;
    }
    i
}
