//! `use`-declaration resolution: maps the names a file imports back to
//! their full paths, so `use std::time::Instant as Clock; Clock::now()`
//! is caught just like a spelled-out `std::time::Instant::now()`.
//!
//! Handles simple paths, `as` renames, nested groups
//! (`use std::{time::Instant, collections::HashMap}`), `self` inside
//! groups, and prefix imports (`use std::time;` → `time::X` resolves).
//! Glob imports (`use x::*`) are ignored: nothing in this workspace
//! globs a hazard module, and resolving them soundly needs a real name
//! resolver.

use crate::tokens::{Tok, Token};
use std::collections::BTreeMap;

/// Alias table for one source file: imported name → full path segments.
#[derive(Debug, Default)]
pub struct UseMap {
    map: BTreeMap<String, Vec<String>>,
}

impl UseMap {
    /// Build the table from a lexed token stream by parsing every `use`
    /// declaration in it (module position is not checked; `use` is a
    /// reserved word, so any `use` ident outside a literal is a real
    /// import).
    #[must_use]
    pub fn build(tokens: &[Token]) -> Self {
        let mut out = Self::default();
        let mut i = 0usize;
        while i < tokens.len() {
            if matches!(&tokens[i].tok, Tok::Ident(s) if s == "use") {
                i = parse_use_tree(tokens, i + 1, &[], &mut out.map);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Resolve a path's first segment: returns the imported full path the
    /// name stands for, if the file imported it.
    #[must_use]
    pub fn resolve(&self, first_segment: &str) -> Option<&[String]> {
        self.map.get(first_segment).map(Vec::as_slice)
    }

    /// Number of recorded aliases (test hook).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no aliases were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Parse one use-tree starting at `i` (just past `use`, a `{`, or a `,`),
/// with `prefix` holding the path segments accumulated so far. Records
/// every terminal into `map` and returns the index just past the tree
/// (past the closing `;`, `,` stays for the caller's loop).
fn parse_use_tree(
    tokens: &[Token],
    mut i: usize,
    prefix: &[String],
    map: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let mut path: Vec<String> = prefix.to_vec();
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Ident(seg) if seg == "as" => {
                // `path as Alias`
                if let Some(Tok::Ident(alias)) = tokens.get(i + 1).map(|t| &t.tok) {
                    record(map, alias.clone(), &path);
                    i += 2;
                } else {
                    i += 1;
                }
                return skip_to_end(tokens, i);
            }
            Tok::Ident(seg) => {
                path.push(seg.clone());
                i += 1;
                if matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::PathSep)) {
                    i += 1;
                    match tokens.get(i).map(|t| &t.tok) {
                        Some(Tok::Punct('{')) => {
                            // Group: parse comma-separated subtrees.
                            i += 1;
                            loop {
                                match tokens.get(i).map(|t| &t.tok) {
                                    None | Some(Tok::Punct('}')) => {
                                        i += 1;
                                        return skip_to_end(tokens, i);
                                    }
                                    Some(Tok::Punct(',')) => i += 1,
                                    _ => {
                                        let next = parse_use_subtree(tokens, i, &path, map);
                                        // Guard: always advance, even on
                                        // token soup the compiler would
                                        // reject anyway.
                                        i = next.max(i + 1);
                                    }
                                }
                            }
                        }
                        Some(Tok::Punct('*')) => {
                            // Glob: unresolvable without a name resolver.
                            return skip_to_end(tokens, i + 1);
                        }
                        _ => {} // next segment, keep looping
                    }
                } else {
                    // `path as Alias`: loop back so the `as` arm records it.
                    if matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "as") {
                        continue;
                    }
                    // Terminal segment: alias is the segment itself.
                    terminal(map, &path);
                    return skip_to_end(tokens, i);
                }
            }
            // `;` or anything unexpected ends the declaration.
            _ => return skip_to_end(tokens, i),
        }
    }
    i
}

/// Parse a subtree *inside* a group (`{...}`): like `parse_use_tree`, but
/// stops at `,` / `}` instead of consuming to `;`.
fn parse_use_subtree(
    tokens: &[Token],
    mut i: usize,
    prefix: &[String],
    map: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let mut path: Vec<String> = prefix.to_vec();
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Ident(seg) if seg == "as" => {
                if let Some(Tok::Ident(alias)) = tokens.get(i + 1).map(|t| &t.tok) {
                    record(map, alias.clone(), &path);
                    i += 2;
                } else {
                    i += 1;
                }
                return i;
            }
            Tok::Ident(seg) if seg == "self" => {
                // `use a::b::{self, c}`: `self` imports the prefix module.
                terminal(map, &path);
                return i + 1;
            }
            Tok::Ident(seg) => {
                path.push(seg.clone());
                i += 1;
                if matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::PathSep)) {
                    i += 1;
                    match tokens.get(i).map(|t| &t.tok) {
                        Some(Tok::Punct('{')) => {
                            i += 1;
                            loop {
                                match tokens.get(i).map(|t| &t.tok) {
                                    None | Some(Tok::Punct('}')) => return i + 1,
                                    Some(Tok::Punct(',')) => i += 1,
                                    _ => {
                                        let next = parse_use_subtree(tokens, i, &path, map);
                                        i = next.max(i + 1);
                                    }
                                }
                            }
                        }
                        Some(Tok::Punct('*')) => return i + 1,
                        _ => {}
                    }
                } else {
                    if matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "as") {
                        continue;
                    }
                    terminal(map, &path);
                    return i;
                }
            }
            _ => return i,
        }
    }
    i
}

/// Record a terminal path under its last segment.
fn terminal(map: &mut BTreeMap<String, Vec<String>>, path: &[String]) {
    if let Some(last) = path.last() {
        record(map, last.clone(), path);
    }
}

fn record(map: &mut BTreeMap<String, Vec<String>>, alias: String, path: &[String]) {
    // Keep paths through `crate`/`super`/`self` prefixes out of the table:
    // they name workspace-local items, never the std/rand hazards.
    if matches!(
        path.first().map(String::as_str),
        Some("crate" | "super" | "self")
    ) {
        return;
    }
    map.insert(alias, path.to_vec());
}

/// Advance past the terminating `;` of a use declaration (tolerates eof).
fn skip_to_end(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() {
        if matches!(tokens[i].tok, Tok::Punct(';')) {
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::lex;

    fn aliases(src: &str) -> BTreeMap<String, Vec<String>> {
        UseMap::build(&lex(src).tokens).map
    }

    #[test]
    fn simple_and_renamed() {
        let m = aliases("use std::time::Instant;\nuse std::time::SystemTime as Wall;\n");
        assert_eq!(m["Instant"], ["std", "time", "Instant"]);
        assert_eq!(m["Wall"], ["std", "time", "SystemTime"]);
    }

    #[test]
    fn nested_groups_and_self() {
        let m = aliases("use std::{time::{self, Instant}, collections::{HashMap, HashSet}};");
        assert_eq!(m["time"], ["std", "time"]);
        assert_eq!(m["Instant"], ["std", "time", "Instant"]);
        assert_eq!(m["HashMap"], ["std", "collections", "HashMap"]);
        assert_eq!(m["HashSet"], ["std", "collections", "HashSet"]);
    }

    #[test]
    fn rename_inside_a_group() {
        let m = aliases("use std::{time::Instant as Clock, collections::HashMap as Map};");
        assert_eq!(m["Clock"], ["std", "time", "Instant"]);
        assert_eq!(m["Map"], ["std", "collections", "HashMap"]);
    }

    #[test]
    fn prefix_import_and_glob() {
        let m = aliases("use std::time;\nuse std::collections::*;\n");
        assert_eq!(m["time"], ["std", "time"]);
        assert_eq!(m.len(), 1, "globs record nothing");
    }

    #[test]
    fn crate_local_paths_are_ignored() {
        let m = aliases("use crate::server::ServerHost;\nuse super::Pending;");
        assert!(m.is_empty());
    }
}
