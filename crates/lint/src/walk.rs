//! Workspace file discovery: every `.rs` file, in sorted order (so the
//! report itself is deterministic), skipping build output, VCS metadata,
//! scenario results, and the lint's own deliberately-violating fixture
//! corpus.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target", ".git", ".github", "fixtures", "results", "related",
];

/// Collect workspace-relative paths of every scannable `.rs` file under
/// `root`, sorted.
///
/// # Errors
/// Propagates filesystem errors from reading directories.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    descend(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn descend(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(root.join(rel))?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel_child = rel.join(name);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            descend(root, &rel_child, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_child);
        }
    }
    Ok(())
}
