//! Keep ARCHITECTURE.md's "Crate layering" table in lockstep with the
//! declared DAG that C001 actually enforces. The test lives here (not in
//! the umbrella crate's `tests/`) because nothing in the DAG may depend
//! on `dynatune_lint` — including `dynatune_repro`.

use dynatune_lint::find_workspace_root;
use dynatune_lint::layering::dag_markdown;
use std::path::Path;

/// The committed ARCHITECTURE.md must embed `dag_markdown()` verbatim:
/// an edge added to `LAYERS` without updating the docs (or vice versa —
/// a hand-edited table row) fails here.
#[test]
fn architecture_md_embeds_the_generated_dag_table() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let committed = std::fs::read_to_string(root.join("ARCHITECTURE.md"))
        .expect("ARCHITECTURE.md at the workspace root");
    let generated = dag_markdown();
    assert!(
        committed.contains(&generated),
        "ARCHITECTURE.md's \"Crate layering\" table is stale — replace it with the \
         output of `dynatune_lint::layering::dag_markdown()`:\n\n{generated}"
    );
    // And exactly once: a duplicated paste would leave one copy to rot.
    assert_eq!(
        committed.matches(&generated).count(),
        1,
        "the generated DAG table must appear exactly once in ARCHITECTURE.md"
    );
}
