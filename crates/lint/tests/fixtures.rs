//! Rule-level self-tests: each rule has a fixture that must fire it and a
//! fixture that must scan clean, all under the strictest (protocol)
//! policy. The fixtures live in `crates/lint/fixtures/` — scanner input
//! only, never compiled, and skipped by the workspace walker.

use dynatune_lint::engine::{scan_source, FileScan};
use dynatune_lint::policy::policy_for;
use dynatune_lint::rules::id;

/// Scan fixture text as if it were a protocol-crate prod file (every rule
/// enabled, including D002 presence and L001).
fn scan(src: &str) -> FileScan {
    let policy = policy_for("crates/raft/src/fixture.rs").expect("protocol policy");
    scan_source("crates/raft/src/fixture.rs", src, &policy)
}

fn rules_fired(scan: &FileScan) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = scan.violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn d001_bad_fires_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/d001_bad.rs"));
    assert!(
        rules_fired(&bad).contains(&id::D001),
        "expected D001 in {:?}",
        bad.violations
    );
    // Both the direct import and the `as Clock` alias must be caught.
    assert!(
        bad.violations.iter().filter(|v| v.rule == id::D001).count() >= 2,
        "aliased SystemTime import escaped: {:?}",
        bad.violations
    );
    let good = scan(include_str!("../fixtures/d001_good.rs"));
    assert!(good.violations.is_empty(), "{:?}", good.violations);
}

#[test]
fn d002_bad_fires_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/d002_bad.rs"));
    assert!(
        rules_fired(&bad).contains(&id::D002),
        "expected D002 in {:?}",
        bad.violations
    );
    // The iteration over the aliased map must be flagged, not just the use.
    assert!(
        bad.violations
            .iter()
            .any(|v| v.rule == id::D002 && v.message.contains("iter")),
        "iteration over aliased HashMap escaped: {:?}",
        bad.violations
    );
    let good = scan(include_str!("../fixtures/d002_good.rs"));
    assert!(good.violations.is_empty(), "{:?}", good.violations);
}

#[test]
fn d003_bad_fires_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/d003_bad.rs"));
    assert!(
        rules_fired(&bad).contains(&id::D003),
        "expected D003 in {:?}",
        bad.violations
    );
    let good = scan(include_str!("../fixtures/d003_good.rs"));
    assert!(good.violations.is_empty(), "{:?}", good.violations);
}

#[test]
fn d004_bad_fires_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/d004_bad.rs"));
    assert!(
        rules_fired(&bad).contains(&id::D004),
        "expected D004 in {:?}",
        bad.violations
    );
    // Both the Mutex import and the full-path thread spawn must fire.
    assert!(
        bad.violations.iter().filter(|v| v.rule == id::D004).count() >= 2,
        "{:?}",
        bad.violations
    );
    let good = scan(include_str!("../fixtures/d004_good.rs"));
    assert!(
        good.violations.is_empty(),
        "Arc alone is not D004: {:?}",
        good.violations
    );
}

#[test]
fn l001_bad_fires_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/l001_bad.rs"));
    assert_eq!(rules_fired(&bad), vec![id::L001], "{:?}", bad.violations);
    let good = scan(include_str!("../fixtures/l001_good.rs"));
    assert!(
        good.violations.is_empty(),
        "named discards / `?` are not L001: {:?}",
        good.violations
    );
}

#[test]
fn l001_is_off_in_test_files() {
    let policy = policy_for("crates/raft/tests/fixture.rs").expect("test-file policy");
    let scan = scan_source(
        "crates/raft/tests/fixture.rs",
        include_str!("../fixtures/l001_bad.rs"),
        &policy,
    );
    assert!(
        scan.violations.is_empty(),
        "L001 must not bind test code: {:?}",
        scan.violations
    );
}

#[test]
fn p001_bad_fires_on_every_spelling_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/p001_bad.rs"));
    assert_eq!(rules_fired(&bad), vec![id::P001], "{:?}", bad.violations);
    // Method call, method-with-message, and fully-qualified form.
    assert_eq!(
        bad.violations.iter().filter(|v| v.rule == id::P001).count(),
        3,
        "{:?}",
        bad.violations
    );
    let good = scan(include_str!("../fixtures/p001_good.rs"));
    assert!(
        good.violations.is_empty(),
        "unwrap_or / let-else / `?` are not P001: {:?}",
        good.violations
    );
}

#[test]
fn p001_is_off_in_test_files() {
    let policy = policy_for("crates/raft/tests/fixture.rs").expect("test-file policy");
    let scan = scan_source(
        "crates/raft/tests/fixture.rs",
        include_str!("../fixtures/p001_bad.rs"),
        &policy,
    );
    assert!(
        scan.violations.is_empty(),
        "P001 must not bind test code: {:?}",
        scan.violations
    );
}

#[test]
fn p002_bad_fires_on_every_panic_macro_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/p002_bad.rs"));
    assert_eq!(rules_fired(&bad), vec![id::P002], "{:?}", bad.violations);
    assert_eq!(
        bad.violations.iter().filter(|v| v.rule == id::P002).count(),
        4,
        "panic!/unreachable!/todo!/unimplemented! must each fire: {:?}",
        bad.violations
    );
    let good = scan(include_str!("../fixtures/p002_good.rs"));
    assert!(
        good.violations.is_empty(),
        "invariant!/assert!/std::panic::Location are not P002: {:?}",
        good.violations
    );
}

#[test]
fn p003_bad_fires_per_narrowing_cast_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/p003_bad.rs"));
    assert_eq!(rules_fired(&bad), vec![id::P003], "{:?}", bad.violations);
    assert_eq!(
        bad.violations.iter().filter(|v| v.rule == id::P003).count(),
        3,
        "{:?}",
        bad.violations
    );
    let good = scan(include_str!("../fixtures/p003_good.rs"));
    assert!(
        good.violations.is_empty(),
        "try_from / widening / float casts / use-renames are not P003: {:?}",
        good.violations
    );
}

#[test]
fn c001_bad_fires_on_upward_imports_and_good_is_clean() {
    let bad = scan(include_str!("../fixtures/c001_bad.rs"));
    assert_eq!(rules_fired(&bad), vec![id::C001], "{:?}", bad.violations);
    assert!(
        bad.violations.iter().filter(|v| v.rule == id::C001).count() >= 3,
        "use, alias, and fully-qualified upward paths must all fire: {:?}",
        bad.violations
    );
    let good = scan(include_str!("../fixtures/c001_good.rs"));
    assert!(
        good.violations.is_empty(),
        "declared edges / self / non-crate dynatune_ idents are not C001: {:?}",
        good.violations
    );
}

#[test]
fn c001_binds_test_code_too() {
    // Unlike the P rules, layering applies everywhere: a test importing up
    // the DAG creates the same compile-time edge a prod file would.
    let policy = policy_for("crates/raft/tests/fixture.rs").expect("test-file policy");
    let scan = scan_source(
        "crates/raft/tests/fixture.rs",
        include_str!("../fixtures/c001_bad.rs"),
        &policy,
    );
    assert!(
        scan.violations.iter().any(|v| v.rule == id::C001),
        "{:?}",
        scan.violations
    );
}

#[test]
fn wellformed_waivers_suppress_and_count_as_used() {
    let s = scan(include_str!("../fixtures/waiver_good.rs"));
    assert!(s.violations.is_empty(), "{:?}", s.violations);
    assert_eq!(s.waivers.len(), 3, "{:?}", s.waivers);
    assert!(
        s.waivers.iter().all(|w| w.used && !w.reason.is_empty()),
        "{:?}",
        s.waivers
    );
}

#[test]
fn reasonless_waiver_is_w001_and_does_not_suppress() {
    let s = scan(include_str!("../fixtures/waiver_malformed.rs"));
    let rules = rules_fired(&s);
    assert!(
        rules.contains(&id::W001),
        "expected W001 in {:?}",
        s.violations
    );
    assert!(
        rules.contains(&id::D002),
        "a malformed waiver must not suppress: {:?}",
        s.violations
    );
}

#[test]
fn unused_waiver_is_w002() {
    let s = scan(include_str!("../fixtures/waiver_stale.rs"));
    assert_eq!(rules_fired(&s), vec![id::W002], "{:?}", s.violations);
}
