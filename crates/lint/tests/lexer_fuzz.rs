//! Property tests for the lexer and the scanner on adversarial input.
//!
//! The lexer's contract is total: *any* text — truncated literals,
//! unmatched delimiters, raw-string fences, stray control bytes — lexes
//! without panicking, and every produced token/comment carries a 1-based
//! line number inside the input. Two generators exercise it: raw byte
//! soup (lossily decoded), and structured soup assembled from the exact
//! fragments the lexer special-cases, which reaches far deeper into the
//! literal/comment state machine than uniform bytes ever would.

use dynatune_lint::engine::scan_source;
use dynatune_lint::policy::policy_for;
use dynatune_lint::tokens::lex;
use proptest::prelude::*;

/// Fragments chosen to hit lexer edge paths: comment nesting, raw-string
/// fences, char-vs-lifetime disambiguation, waiver syntax, and the idents
/// the rules react to.
#[rustfmt::skip]
const FRAGMENTS: &[&str] = &[
    "/*", "*/", "//", "// lint: allow(D001) — reason", "\n", "\"", "\\\"",
    "r#\"", "\"#", "r\"", "b\"", "'a'", "'static", "'\\''", "::", ".", "!",
    "unwrap", "expect", "panic", "as", "u32", "HashMap", "use ", ";", "(",
    ")", "{", "}", "let _ = ", "dynatune_cluster", "Instant", "r#type",
    "#[cfg(test)]", "mod tests", "\t", "é", "🦀",
];

fn assert_lex_contract(src: &str) {
    let lexed = lex(src);
    let max_line = u32::try_from(src.split('\n').count()).unwrap_or(u32::MAX);
    for t in &lexed.tokens {
        assert!(
            t.line >= 1 && t.line <= max_line,
            "token {:?} line {} out of bounds 1..={max_line} in {src:?}",
            t.tok,
            t.line
        );
    }
    for c in &lexed.comments {
        assert!(
            c.line >= 1 && c.line <= max_line,
            "comment line {} out of bounds 1..={max_line} in {src:?}",
            c.line
        );
    }
    // The full scanner (uses, policies, every rule pass, waiver matching)
    // must be just as total — and report in-bounds lines.
    let policy = policy_for("crates/raft/src/soup.rs").expect("protocol policy");
    let scan = scan_source("crates/raft/src/soup.rs", src, &policy);
    for v in &scan.violations {
        assert!(
            v.line >= 1 && v.line <= max_line,
            "violation {v:?} out of bounds 1..={max_line} in {src:?}"
        );
    }
}

proptest! {
    #[test]
    fn prop_lexer_total_on_byte_soup(
        bytes in proptest::collection::vec(0u8..=255u8, 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        assert_lex_contract(&src);
    }

    #[test]
    fn prop_lexer_total_on_structured_soup(
        picks in proptest::collection::vec(0usize..36, 0..64),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect();
        assert_lex_contract(&src);
    }
}
