//! Lexer edge cases: the scanner's no-false-positive guarantee rests on
//! the lexer producing zero tokens from comments and literals, and these
//! are the constructs that break naive scanners.

use dynatune_lint::engine::scan_source;
use dynatune_lint::policy::policy_for;
use dynatune_lint::tokens::{lex, Tok};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn nested_block_comments_produce_no_tokens() {
    let src = "/* outer /* std::time::Instant */ still comment */ let x = 1;";
    assert_eq!(idents(src), vec!["let", "x"]);
}

#[test]
fn raw_strings_with_hashes_hide_their_contents() {
    let src = r####"let s = r##"quote " and // and std::time::Instant"##; let y = 2;"####;
    assert_eq!(idents(src), vec!["let", "s", "let", "y"]);
}

#[test]
fn line_comment_marker_inside_string_is_not_a_comment() {
    let src = "let url = \"http://example.com\"; let after = 3;";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
    assert_eq!(idents(src), vec!["let", "url", "let", "after"]);
}

#[test]
fn escaped_quote_in_string_does_not_end_it() {
    let src = r#"let s = "a\"b; let fake = 1"; let real = 2;"#;
    assert_eq!(idents(src), vec!["let", "s", "let", "real"]);
}

#[test]
fn char_literals_versus_lifetimes() {
    // 'x' and '\n' are char literals (no tokens); 'a after & is a
    // lifetime (skipped, not a string-opener that would eat the file).
    let src = "fn f<'a>(x: &'a u64) -> u64 { let c = 'x'; let n = '\\n'; *x }";
    let names = idents(src);
    assert!(names.contains(&"let".to_string()));
    assert!(names.contains(&"u64".to_string()));
    // The chars themselves never become idents.
    assert!(!names.contains(&"x'".to_string()));
    // Crucially the lexer reached the end: the final `x` is tokenized.
    assert_eq!(names.last().map(String::as_str), Some("x"));
}

#[test]
fn raw_identifiers_lex_to_their_name() {
    assert_eq!(
        idents("let r#type = 1; let rate = 2;"),
        vec!["let", "type", "let", "rate"]
    );
}

#[test]
fn byte_and_raw_byte_strings_are_literals() {
    let src = r##"let a = b"bytes // x"; let b2 = br#"raw " bytes"#; let c = b'q'; let done = 1;"##;
    assert_eq!(
        idents(src),
        vec!["let", "a", "let", "b2", "let", "c", "let", "done"]
    );
}

#[test]
fn tuple_field_method_calls_keep_their_tokens() {
    // `self.0.iter()` — the number must not swallow `.iter`.
    let names = idents("self.0.iter()");
    assert_eq!(names, vec!["self", "iter"]);
}

#[test]
fn comments_record_line_and_own_line_flag() {
    let src = "// own-line\nlet x = 1; // trailing\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert!(lexed.comments[0].own_line);
    assert_eq!(lexed.comments[0].line, 1);
    assert!(!lexed.comments[1].own_line);
    assert_eq!(lexed.comments[1].line, 2);
}

#[test]
fn hazards_in_comments_and_strings_never_fire() {
    let src = concat!(
        "//! docs: std::time::Instant::now() is banned.\n",
        "/* and std::collections::HashMap too /* nested */ */\n",
        "pub fn f() -> &'static str {\n",
        "    \"thread_rng and std::time::SystemTime in a string\"\n",
        "}\n",
    );
    let policy = policy_for("crates/raft/src/x.rs").unwrap();
    let s = scan_source("crates/raft/src/x.rs", src, &policy);
    assert!(s.violations.is_empty(), "{:?}", s.violations);
}
