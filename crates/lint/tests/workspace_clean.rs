//! The live tree must lint clean: `cargo test -p dynatune_lint` fails the
//! same way CI's `--deny` run does, so a violation can't land through a
//! path that skips the lint job. Also pins the accepted-waiver set — a new
//! waiver showing up here means README.md's waiver list needs updating —
//! and the panic-freedom contract: the protocol crates carry **zero**
//! P001/P002 findings against an **empty** committed baseline, so the
//! ratchet has nothing grandfathered and any new unwrap is a regression.

use dynatune_lint::baseline::Baseline;
use dynatune_lint::rules::id;
use dynatune_lint::{find_workspace_root, lint_workspace};
use std::path::Path;

fn root() -> std::path::PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(here).expect("workspace root above crates/lint")
}

#[test]
fn workspace_has_zero_unwaived_violations() {
    let report = lint_workspace(&root()).expect("scan workspace");
    assert!(
        report.files_scanned > 100,
        "walked too little: {} files",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "the tree must be lint-clean; run `cargo run -p dynatune_lint` for the report:\n{}",
        report.human()
    );
    // The accepted waivers, by file — keep in sync with README.md's
    // "Static analysis" section. The panic-freedom sweep (PR 9) landed
    // with no P-rule waivers at all: every serving-path unwrap became a
    // typed fallback, a structural rewrite, or an `invariant!`.
    let mut by_file: Vec<(&str, usize)> = Vec::new();
    for w in &report.waivers {
        match by_file.iter_mut().find(|(f, _)| *f == w.file) {
            Some((_, n)) => *n += 1,
            None => by_file.push((&w.file, 1)),
        }
    }
    assert_eq!(
        by_file,
        vec![("tests/election_safety.rs", 2)],
        "waiver set changed — update README.md's accepted-waiver list"
    );
    assert!(report
        .waivers
        .iter()
        .all(|w| w.used && !w.reason.is_empty()));
}

#[test]
fn committed_baseline_is_empty_and_not_stale() {
    // The ratchet ships fully turned: nothing is grandfathered. If this
    // fails because the baseline file gained entries, someone regenerated
    // it to paper over a regression — fix the code instead.
    let root = root();
    let text = std::fs::read_to_string(root.join("crates/lint/baseline.json"))
        .expect("committed baseline at crates/lint/baseline.json");
    let baseline = Baseline::parse(&text).expect("valid baseline schema");
    assert!(
        baseline.is_empty(),
        "the committed baseline must stay empty — {} grandfathered entries found",
        baseline.len()
    );
    // And applying it to the live tree yields no regressions and no stale
    // entries — exactly what CI's `--deny --baseline` run asserts.
    let mut report = lint_workspace(&root).expect("scan workspace");
    report.apply_baseline(&baseline);
    assert!(report.deny_ok(), "{}", report.human());
}

#[test]
fn protocol_crates_are_panic_free_without_waivers() {
    // Belt and braces over the pinned-waiver test: even if a P-rule
    // waiver were accepted some day, this test keeps the three protocol
    // crates' prod code at literally zero unwrap/expect/panic findings,
    // waived or not.
    let report = lint_workspace(&root()).expect("scan workspace");
    let panicky: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == id::P001 || v.rule == id::P002)
        .collect();
    assert!(panicky.is_empty(), "{panicky:?}");
    let waived_panics: Vec<_> = report
        .waivers
        .iter()
        .filter(|w| w.rules.iter().any(|r| r == id::P001 || r == id::P002))
        .collect();
    assert!(
        waived_panics.is_empty(),
        "P001/P002 are swept, not waived: {waived_panics:?}"
    );
}
