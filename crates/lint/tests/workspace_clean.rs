//! The live tree must lint clean: `cargo test -p dynatune_lint` fails the
//! same way CI's `--deny` run does, so a violation can't land through a
//! path that skips the lint job. Also pins the accepted-waiver set — a new
//! waiver showing up here means README.md's waiver list needs updating.

use dynatune_lint::{find_workspace_root, lint_workspace};
use std::path::Path;

#[test]
fn workspace_has_zero_unwaived_violations() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 100,
        "walked too little: {} files",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "the tree must be lint-clean; run `cargo run -p dynatune_lint` for the report:\n{}",
        report.human()
    );
    // The accepted waivers, by file — keep in sync with README.md's
    // "Static analysis" section.
    let mut by_file: Vec<(&str, usize)> = Vec::new();
    for w in &report.waivers {
        match by_file.iter_mut().find(|(f, _)| *f == w.file) {
            Some((_, n)) => *n += 1,
            None => by_file.push((&w.file, 1)),
        }
    }
    assert_eq!(
        by_file,
        vec![("tests/election_safety.rs", 2)],
        "waiver set changed — update README.md's accepted-waiver list"
    );
    assert!(report
        .waivers
        .iter()
        .all(|w| w.used && !w.reason.is_empty()));
}
