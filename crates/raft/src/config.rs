//! Node configuration.

use crate::types::NodeId;
use dynatune_core::TuningConfig;
use std::time::Duration;

/// Default [`RaftConfig::reply_window`]: the sliding id window of replies
/// each replicated state machine retains per request origin for retry
/// deduplication. Sizing rule: the window must exceed
/// `offered rate × response timeout × retry budget`, the largest id gap a
/// live retry can trail the newest accepted id by — e.g. a fig5-style ramp
/// peaking near 15 k req/s with a 1 s response timeout and up to 4 sends
/// per request needs ≈ 60 k ids; 65 536 clears that with headroom while a
/// cached reply stays ~40 bytes, so the cache tops out near 2.6 MB per
/// origin.
pub const DEFAULT_REPLY_WINDOW: u64 = 1 << 16;

/// How election-timer expiry interacts with the tick clock.
///
/// etcd counts election timeouts in ticks whose period is the heartbeat
/// interval: expiry is only observed on a tick boundary. The paper's
/// measured detection times (≈ 2·Et for Dynatune, whose tick equals Et
/// because K = 1 at zero loss) only make sense under this quantization, so
/// it is the default; `Continuous` is provided for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerQuantization {
    /// Expiry observed at the first tick boundary at or after the deadline
    /// (tick period = the node's current expected heartbeat interval).
    Tick,
    /// Expiry observed exactly at `last_reset + randomized_timeout`.
    Continuous,
}

/// Static configuration of one Raft node.
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// This node's id.
    pub id: NodeId,
    /// The genesis voter set. Usually includes this node; an *outsider*
    /// configuration (id not in `peers` or `learners`) is also valid — the
    /// node then starts as a silent follower that never campaigns, waiting
    /// to be admitted through a replicated configuration change
    /// (`AddLearner` → catch-up → promotion).
    pub peers: Vec<NodeId>,
    /// Genesis non-voting learners: replicated to, but counted in no
    /// election, commit, read or lease quorum. Normally empty — learners
    /// are usually added at runtime via `ConfChange::AddLearner`.
    pub learners: Vec<NodeId>,
    /// Election-parameter tuning configuration (mode selects the paper's
    /// Raft / Raft-Low / Fix-K / Dynatune variants).
    pub tuning: TuningConfig,
    /// Run the pre-vote phase before real elections (etcd ≥ 3.4 default).
    pub pre_vote: bool,
    /// Reject (pre-)votes while a current leader lease is active, and have
    /// leaders step down when a quorum has been silent for an election
    /// timeout (etcd's CheckQuorum).
    pub check_quorum: bool,
    /// Election-timer quantization discipline.
    pub quantization: TimerQuantization,
    /// Send heartbeats over the UDP-like channel (the paper's hybrid
    /// transport). When false everything uses TCP (stock etcd; ablation).
    pub udp_heartbeats: bool,
    /// Maximum entries per `AppendEntries` message.
    pub max_entries_per_append: usize,
    /// How many `AppendEntries` may be in flight to one follower at once
    /// (etcd's pipelining). `1` restores the historical one-at-a-time
    /// discipline, where per-follower throughput is capped at one append
    /// batch per RTT; larger windows keep the pipe full across the RTT. An
    /// in-flight `InstallSnapshot` always occupies the whole window.
    pub pipeline_window: usize,
    /// Group commit: flush the proposal batch to followers once this many
    /// payload bytes have accumulated, even if `max_batch_delay` has not
    /// elapsed yet.
    pub max_batch_bytes: usize,
    /// Group commit: proposals arriving while the replication pipe is busy
    /// are coalesced for at most this long before the leader flushes them
    /// into (up to) one `AppendEntries` per follower. A proposal hitting an
    /// idle pipe is still sent immediately — the delay bounds batching
    /// latency under load, it never adds latency to a lone write.
    pub max_batch_delay: Duration,
    /// Resend an unacknowledged `AppendEntries` after this long. With
    /// pipelining the timer watches the *oldest* unacked send; expiry
    /// abandons the whole optimistic pipeline and falls back to a probe at
    /// `match_index + 1`.
    pub append_resend: Duration,
    /// Resend an unacknowledged `InstallSnapshot` after this long. Paced
    /// slower than appends: a snapshot is a bulk transfer, and re-streaming
    /// the full state on the append cadence would flood a slow or briefly
    /// unreachable follower.
    pub snapshot_resend: Duration,
    /// §IV-E extension 1: skip a follower's heartbeat when replication
    /// traffic was sent to it within the current heartbeat interval —
    /// appends already reset the follower's election timer, so under load
    /// the heartbeats are redundant CPU/bandwidth. Off by default (the
    /// paper leaves it as future work).
    pub suppress_heartbeats_when_replicating: bool,
    /// §IV-E extension 2: fire all followers' heartbeats together on the
    /// smallest tuned interval, so the leader manages one timer instead of
    /// n−1. Off by default (future work in the paper).
    pub consolidated_heartbeat_timer: bool,
    /// Enable the leader-lease fast path for log-free reads: while a quorum
    /// has acknowledged heartbeats within the (margin-scaled) lease window,
    /// [`RaftNode::request_read`](crate::RaftNode::request_read) grants
    /// reads immediately instead of running a ReadIndex confirmation round.
    /// Inert unless the host actually requests log-free reads, and also
    /// inert when `check_quorum` is off — lease safety rests on
    /// check-quorum's in-lease vote withholding, so without it reads take
    /// the ReadIndex path regardless of this flag.
    pub lease_reads: bool,
    /// Leader-lease duration for lease reads, measured from the send
    /// instant of the quorum'th-freshest acknowledged heartbeat. Safety
    /// requires it to stay at or below the smallest election timeout any
    /// member may run (a new leader must not be electable while the old
    /// lease holds), so it defaults to the conservative default election
    /// timeout and `validate` rejects anything larger. Under a tuning
    /// mode, followers can adapt `Et` far below the default, so
    /// `lease_valid` additionally clamps the effective lease to the
    /// tuning floor — tuned clusters keep correctness and fall back to
    /// ReadIndex confirmation instead of riding an unsound lease.
    pub read_lease: Duration,
    /// Clock-drift safety margin for lease reads: the effective lease is
    /// `read_lease * (1 - margin)`, so a leader whose clock runs slow by up
    /// to this fraction still expires its lease before any follower's
    /// election timer can fire. In `[0, 1)`.
    pub lease_drift_margin: f64,
    /// Sliding id window of cached replies the replicated state machine
    /// keeps per request origin (KV reply cache, broker producer dedupe).
    /// Ids more than this far below the newest accepted id are evicted, so
    /// a retry older than the window can no longer be deduplicated — size
    /// it by the rule documented at [`DEFAULT_REPLY_WINDOW`]
    /// (rate × timeout × retries, with headroom).
    pub reply_window: u64,
    /// Seed for the node's randomized-timeout stream.
    pub seed: u64,
}

impl RaftConfig {
    /// Standard configuration for node `id` in a cluster of `n` nodes.
    #[must_use]
    pub fn new(id: NodeId, n: usize, tuning: TuningConfig) -> Self {
        assert!(id < n, "node id {id} out of range for cluster of {n}");
        Self::with_peers(id, (0..n).collect(), tuning)
    }

    /// Configuration with an explicit genesis voter set. Unlike
    /// [`RaftConfig::new`], `id` need not appear in `peers`: an absent id
    /// builds an outsider node that never campaigns until a replicated
    /// configuration change admits it.
    #[must_use]
    pub fn with_peers(id: NodeId, peers: Vec<NodeId>, tuning: TuningConfig) -> Self {
        Self {
            id,
            peers,
            learners: Vec::new(),
            tuning,
            pre_vote: true,
            check_quorum: true,
            quantization: TimerQuantization::Tick,
            udp_heartbeats: true,
            // etcd's default message budget (~1 MB) holds thousands of small
            // entries; even with the pipeline window at 1, a single append
            // batch must comfortably exceed peak-rate × RTT
            // (≈ 14k req/s × 100 ms ≈ 1400 entries).
            max_entries_per_append: 8192,
            pipeline_window: 4,
            max_batch_bytes: 64 * 1024,
            max_batch_delay: Duration::from_millis(1),
            append_resend: Duration::from_millis(200),
            snapshot_resend: Duration::from_millis(1000),
            suppress_heartbeats_when_replicating: false,
            consolidated_heartbeat_timer: false,
            lease_reads: true,
            read_lease: tuning.default_election_timeout,
            lease_drift_margin: 0.1,
            reply_window: DEFAULT_REPLY_WINDOW,
            seed: 0xD15_EA5E ^ id as u64,
        }
    }

    /// Number of cluster members.
    #[must_use]
    pub fn cluster_size(&self) -> usize {
        self.peers.len()
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics when the config is inconsistent.
    pub fn validate(&self) {
        assert!(!self.peers.is_empty(), "empty cluster");
        assert!(
            !self.learners.iter().any(|l| self.peers.contains(l)),
            "a node cannot be both a genesis voter and a genesis learner"
        );
        assert!(self.max_entries_per_append > 0, "zero append batch size");
        assert!(self.pipeline_window > 0, "zero pipeline window");
        assert!(self.max_batch_bytes > 0, "zero group-commit byte cap");
        assert!(self.append_resend > Duration::ZERO, "zero resend timeout");
        assert!(
            self.max_batch_delay < self.append_resend,
            "group-commit delay must flush well before loss recovery kicks in"
        );
        assert!(
            self.snapshot_resend >= self.append_resend,
            "snapshot resend must not be paced faster than appends"
        );
        assert!(
            self.read_lease > Duration::ZERO,
            "zero-length read lease (disable lease_reads instead)"
        );
        assert!(
            self.read_lease <= self.tuning.default_election_timeout,
            "read lease must not outlive the conservative election timeout"
        );
        assert!(
            (0.0..1.0).contains(&self.lease_drift_margin),
            "lease drift margin must be in [0, 1)"
        );
        assert!(
            self.reply_window > 0,
            "zero reply window would evict every cached reply immediately; \
             retries could never be deduplicated"
        );
        self.tuning.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_builds_full_peer_set() {
        let c = RaftConfig::new(2, 5, TuningConfig::dynatune());
        assert_eq!(c.peers, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.cluster_size(), 5);
        assert!(c.pre_vote);
        assert!(c.check_quorum);
        assert_eq!(c.quantization, TimerQuantization::Tick);
        c.validate();
    }

    #[test]
    fn replication_defaults_are_pipelined() {
        let c = RaftConfig::new(0, 3, TuningConfig::dynatune());
        assert!(c.pipeline_window >= 4, "pipelining on by default");
        assert!(
            c.max_batch_delay < c.append_resend,
            "group commit must flush before loss recovery"
        );
        c.validate();
    }

    #[test]
    #[should_panic(expected = "zero pipeline window")]
    fn zero_pipeline_window_panics() {
        let mut c = RaftConfig::new(0, 3, TuningConfig::dynatune());
        c.pipeline_window = 0;
        c.validate();
    }

    #[test]
    fn reply_window_defaults_to_sizing_rule_headroom() {
        let c = RaftConfig::new(0, 3, TuningConfig::dynatune());
        // rate × timeout × retries for the fig5 peak: 15k × 1s × 4 ≈ 60k.
        assert!(c.reply_window as f64 >= 15_000.0 * 1.0 * 4.0);
        assert_eq!(c.reply_window, DEFAULT_REPLY_WINDOW);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "zero reply window")]
    fn zero_reply_window_panics() {
        let mut c = RaftConfig::new(0, 3, TuningConfig::dynatune());
        c.reply_window = 0;
        c.validate();
    }

    #[test]
    fn per_node_seeds_differ() {
        let a = RaftConfig::new(0, 3, TuningConfig::dynatune());
        let b = RaftConfig::new(1, 3, TuningConfig::dynatune());
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_out_of_range_panics() {
        let _ = RaftConfig::new(5, 5, TuningConfig::dynatune());
    }

    #[test]
    fn outsider_config_is_valid() {
        // A node configured with a genesis voter set it is not part of:
        // the spare-server shape used for elastic scale-out.
        let c = RaftConfig::with_peers(3, vec![0, 1, 2], TuningConfig::dynatune());
        assert!(!c.peers.contains(&c.id));
        assert!(c.learners.is_empty());
        c.validate();
    }

    #[test]
    #[should_panic(expected = "both a genesis voter and a genesis learner")]
    fn voter_learner_overlap_panics() {
        let mut c = RaftConfig::new(0, 3, TuningConfig::dynatune());
        c.learners = vec![2];
        c.validate();
    }
}
