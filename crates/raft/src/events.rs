//! Observable events emitted by a node, consumed by experiment observers.
//!
//! The paper extracts detection and out-of-service times from server log
//! files (§IV-A); this enum is the structured equivalent.

use crate::types::{LogIndex, NodeId, Term};
use std::time::Duration;

/// Noteworthy state transitions of a Raft node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RaftEvent {
    /// The election timer expired — the node *detected* a (suspected)
    /// leader failure. Carries the randomized timeout that just expired,
    /// which is what the paper's Fig. 4/6 `randomizedTimeout` refers to.
    ElectionTimeout {
        /// Term at the moment of expiry (before any campaign bump).
        term: Term,
        /// The randomized timeout value that expired.
        randomized_timeout: Duration,
    },
    /// Pre-vote phase started.
    PreVoteStarted {
        /// Prospective campaign term (current + 1).
        campaign_term: Term,
    },
    /// A pre-vote or election round timed out without resolution and is
    /// being retried (split vote or unreachable quorum).
    CampaignRetry {
        /// Term of the abandoned round.
        term: Term,
    },
    /// Pre-vote aborted because the current leader made contact (the
    /// paper's Fig. 6b "false detection without OTS" path).
    PreVoteAborted {
        /// The node's (unchanged) term.
        term: Term,
    },
    /// A real election started (term incremented, votes requested).
    ElectionStarted {
        /// The new candidate term.
        term: Term,
    },
    /// This node won an election.
    BecameLeader {
        /// The leadership term.
        term: Term,
    },
    /// This node became (or reverted to) follower.
    BecameFollower {
        /// The follower's term.
        term: Term,
        /// The known leader, if any.
        leader: Option<NodeId>,
    },
    /// A leader stepped down (deposed by a higher term or check-quorum).
    SteppedDown {
        /// Term at step-down.
        term: Term,
    },
    /// The Dynatune tuner was reset to defaults (measurements discarded).
    TunerReset,
    /// The leader streamed a state-machine snapshot to a follower whose
    /// next needed entry was compacted away.
    SnapshotSent {
        /// The lagging follower.
        to: NodeId,
        /// Highest log index the snapshot covers.
        last_included_index: LogIndex,
    },
    /// This node installed a snapshot received from the leader (log base
    /// reset, state machine restored).
    SnapshotInstalled {
        /// Highest log index the snapshot covers.
        last_included_index: LogIndex,
    },
    /// The active cluster configuration changed: a configuration-change
    /// entry was appended (or rolled back by log truncation, or restored
    /// from a snapshot). Raft §6 append-time semantics: this fires when the
    /// entry enters the log, not when it commits.
    MembershipChanged {
        /// Log index of the configuration entry now in force (the snapshot
        /// boundary when restored from a snapshot).
        index: LogIndex,
        /// Number of voters in the (new, while joint) voter set.
        voters: usize,
        /// Number of non-voting learners.
        learners: usize,
        /// Whether a joint configuration (`C_old,new`) is active.
        joint: bool,
    },
    /// The leader opened a ReadIndex confirmation round: queued log-free
    /// reads could not be served from the lease (expired or disabled) and
    /// now await a quorum of `read_ctx` echoes. Observably absent under a
    /// healthy lease — scenarios use it to tell the two read paths apart.
    ReadConfirmRound {
        /// The round's confirmation token.
        seq: u64,
    },
}

impl RaftEvent {
    /// Short tag for logs and traces.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RaftEvent::ElectionTimeout { .. } => "election_timeout",
            RaftEvent::PreVoteStarted { .. } => "pre_vote_started",
            RaftEvent::CampaignRetry { .. } => "campaign_retry",
            RaftEvent::PreVoteAborted { .. } => "pre_vote_aborted",
            RaftEvent::ElectionStarted { .. } => "election_started",
            RaftEvent::BecameLeader { .. } => "became_leader",
            RaftEvent::BecameFollower { .. } => "became_follower",
            RaftEvent::SteppedDown { .. } => "stepped_down",
            RaftEvent::TunerReset => "tuner_reset",
            RaftEvent::SnapshotSent { .. } => "snapshot_sent",
            RaftEvent::SnapshotInstalled { .. } => "snapshot_installed",
            RaftEvent::MembershipChanged { .. } => "membership_changed",
            RaftEvent::ReadConfirmRound { .. } => "read_confirm_round",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let events = [
            RaftEvent::ElectionTimeout {
                term: 1,
                randomized_timeout: Duration::from_millis(150),
            },
            RaftEvent::PreVoteStarted { campaign_term: 2 },
            RaftEvent::CampaignRetry { term: 2 },
            RaftEvent::PreVoteAborted { term: 1 },
            RaftEvent::ElectionStarted { term: 2 },
            RaftEvent::BecameLeader { term: 2 },
            RaftEvent::BecameFollower {
                term: 2,
                leader: Some(1),
            },
            RaftEvent::SteppedDown { term: 2 },
            RaftEvent::TunerReset,
            RaftEvent::SnapshotSent {
                to: 1,
                last_included_index: 9,
            },
            RaftEvent::SnapshotInstalled {
                last_included_index: 9,
            },
            RaftEvent::MembershipChanged {
                index: 4,
                voters: 3,
                learners: 1,
                joint: false,
            },
            RaftEvent::ReadConfirmRound { seq: 1 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(RaftEvent::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }
}
