//! From-scratch etcd-style Raft with pluggable Dynatune tuning.
//!
//! This crate is the consensus substrate of the reproduction: the paper
//! builds Dynatune into etcd's Raft, so we rebuild the relevant slice of
//! etcd's Raft semantics in Rust:
//!
//! * leader / follower / candidate / **pre-candidate** roles with the
//!   pre-vote phase (§II-A of the paper);
//! * randomized election timeouts `U[Et, 2·Et)` with etcd's tick
//!   quantization (tick = heartbeat interval);
//! * check-quorum: vote requests are ignored inside an active leader lease,
//!   and leaders step down when a quorum goes silent;
//! * log replication with conflict back-off, commit by majority match in
//!   the current term, prefix compaction;
//! * per-follower heartbeat pacing carrying Dynatune measurement metadata
//!   over the UDP-like channel (the paper's hybrid transport, §III-E);
//! * pause (container-sleep) and crash-recovery failure modes.
//!
//! The node is a pure state machine ([`RaftNode::step`] / [`RaftNode::tick`]
//! / [`RaftNode::propose`] → [`Effects`]) so the discrete-event simulator
//! and property tests can drive it deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod events;
pub mod log;
pub mod membership;
pub mod message;
pub mod node;
pub mod progress;
pub mod state_machine;
pub mod types;

pub use config::{RaftConfig, TimerQuantization, DEFAULT_REPLY_WINDOW};
pub use events::RaftEvent;
pub use log::{AppendOutcome, Entry, RaftLog};
pub use membership::{ConfChange, Membership};
pub use message::{
    AppendEntries, AppendResp, Heartbeat, HeartbeatResp, InstallSnapshot, OutMsg, Payload,
    RequestVote, RequestVoteResp,
};
pub use node::{ConfChangeError, NodeEffects, NodePayload, NotLeader, RaftNode};
pub use progress::{InflightSend, Progress};
pub use state_machine::{
    Applied, Effects, NullStateMachine, ReadGrant, ReadPath, Snapshot, StateMachine,
};
pub use types::{quorum, LogIndex, NodeId, Role, Term};
