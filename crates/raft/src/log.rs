//! The replicated log: append, conflict resolution, matching, compaction.

use crate::membership::ConfChange;
use crate::types::{LogIndex, Term};
use dynatune_core::invariant_violated;

/// One log entry. `data == None` is the no-op entry a new leader appends to
/// commit entries from previous terms (the etcd convention). A
/// configuration change travels as an entry with `conf` set; it takes
/// effect the moment it is appended (Raft §6), not when it commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<C> {
    /// Term in which the entry was created.
    pub term: Term,
    /// Position in the log (1-based).
    pub index: LogIndex,
    /// The command, or `None` for a leader-change no-op.
    pub data: Option<C>,
    /// The configuration change this entry carries, if any.
    pub conf: Option<ConfChange>,
}

impl<C> Entry<C> {
    /// A normal entry (command or leader no-op).
    #[must_use]
    pub fn normal(term: Term, index: LogIndex, data: Option<C>) -> Self {
        Self {
            term,
            index,
            data,
            conf: None,
        }
    }
}

/// Result of offering entries from an `AppendEntries` RPC to the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Entries accepted; the log now matches the leader through `last_index`.
    Success {
        /// Highest index now known to match the leader.
        last_index: LogIndex,
    },
    /// The consistency check failed; retry from `hint`.
    Conflict {
        /// Highest index the follower believes may still match. The leader
        /// should probe at `prev = hint`, i.e. set `next = hint + 1`.
        hint: LogIndex,
    },
}

/// In-memory replicated log with prefix compaction.
///
/// Entries before `base_index` have been compacted away; `base_index` itself
/// is the index of the last compacted entry (0 when nothing was compacted)
/// and `base_term` its term, so consistency checks at the boundary work.
#[derive(Debug, Clone)]
pub struct RaftLog<C> {
    base_index: LogIndex,
    base_term: Term,
    entries: Vec<Entry<C>>,
}

impl<C: Clone> Default for RaftLog<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Clone> RaftLog<C> {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self {
            base_index: 0,
            base_term: 0,
            entries: Vec::new(),
        }
    }

    /// Index of the last entry (0 when empty and nothing compacted).
    #[must_use]
    pub fn last_index(&self) -> LogIndex {
        self.base_index + self.entries.len() as LogIndex
    }

    /// Term of the last entry (`base_term` when no live entries).
    #[must_use]
    pub fn last_term(&self) -> Term {
        self.entries.last().map_or(self.base_term, |e| e.term)
    }

    /// Index of the first un-compacted entry.
    #[must_use]
    pub fn first_index(&self) -> LogIndex {
        self.base_index + 1
    }

    /// Number of live (un-compacted) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no live entries exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Term at `index`, if known (compacted boundary included).
    #[must_use]
    pub fn term_at(&self, index: LogIndex) -> Option<Term> {
        if index == self.base_index {
            return Some(self.base_term);
        }
        if index < self.base_index || index > self.last_index() {
            return None;
        }
        Some(self.entries[(index - self.base_index - 1) as usize].term)
    }

    /// Entry at `index`, if live.
    #[must_use]
    pub fn entry_at(&self, index: LogIndex) -> Option<&Entry<C>> {
        if index <= self.base_index || index > self.last_index() {
            return None;
        }
        Some(&self.entries[(index - self.base_index - 1) as usize])
    }

    /// Append an entry created by the local leader.
    ///
    /// # Panics
    /// Panics if the entry's index is not exactly `last_index() + 1`.
    pub fn append(&mut self, entry: Entry<C>) {
        assert_eq!(entry.index, self.last_index() + 1, "non-contiguous append");
        self.entries.push(entry);
    }

    /// Leader helper: create and append a new entry at the tail.
    pub fn append_new(&mut self, term: Term, data: Option<C>) -> LogIndex {
        let index = self.last_index() + 1;
        self.entries.push(Entry::normal(term, index, data));
        index
    }

    /// Leader helper: create and append a configuration-change entry.
    pub fn append_conf(&mut self, term: Term, conf: ConfChange) -> LogIndex {
        let index = self.last_index() + 1;
        self.entries.push(Entry {
            term,
            index,
            data: None,
            conf: Some(conf),
        });
        index
    }

    /// Follower side of `AppendEntries`: verify the `(prev_index, prev_term)`
    /// consistency check, truncate any conflicting suffix, and append.
    pub fn try_append(
        &mut self,
        prev_index: LogIndex,
        prev_term: Term,
        entries: &[Entry<C>],
    ) -> AppendOutcome {
        // The previous entry must exist and match.
        match self.term_at(prev_index) {
            None => {
                // Either compacted (leader is way behind — cannot happen with
                // a correct leader) or beyond our log: hint the tail.
                return AppendOutcome::Conflict {
                    hint: self.last_index().min(prev_index),
                };
            }
            Some(t) if t != prev_term => {
                // Conflict at prev_index: ask the leader to back up.
                return AppendOutcome::Conflict {
                    hint: prev_index.saturating_sub(1).max(self.base_index),
                };
            }
            Some(_) => {}
        }
        // Walk the offered entries; skip duplicates, truncate on conflict.
        let mut insert_from = 0usize;
        for (i, e) in entries.iter().enumerate() {
            match self.term_at(e.index) {
                Some(t) if t == e.term => {
                    insert_from = i + 1; // already have it
                }
                Some(_) => {
                    // Conflicting suffix: drop everything from e.index on.
                    self.truncate_from(e.index);
                    break;
                }
                None => break,
            }
        }
        for e in &entries[insert_from..] {
            debug_assert_eq!(e.index, self.last_index() + 1, "gap in offered entries");
            self.entries.push(e.clone());
        }
        AppendOutcome::Success {
            last_index: prev_index + entries.len() as LogIndex,
        }
    }

    /// Drop all entries at `index` and beyond.
    pub fn truncate_from(&mut self, index: LogIndex) {
        assert!(index > self.base_index, "cannot truncate compacted prefix");
        let keep = (index - self.base_index - 1) as usize;
        self.entries.truncate(keep);
    }

    /// Entries in `[from, last]`, at most `max`, cloned for transmission.
    #[must_use]
    pub fn entries_from(&self, from: LogIndex, max: usize) -> Vec<Entry<C>> {
        if from <= self.base_index || from > self.last_index() {
            return Vec::new();
        }
        let start = (from - self.base_index - 1) as usize;
        self.entries[start..].iter().take(max).cloned().collect()
    }

    /// Raft's up-to-date check (§5.4.1 of the Raft paper): a candidate's log
    /// is at least as up-to-date if its last term is higher, or equal with
    /// last index at least ours.
    #[must_use]
    pub fn candidate_up_to_date(&self, last_index: LogIndex, last_term: Term) -> bool {
        last_term > self.last_term()
            || (last_term == self.last_term() && last_index >= self.last_index())
    }

    /// Discard entries up to and including `index` (they must be applied).
    /// No-op if `index` is not beyond the current base.
    pub fn compact(&mut self, index: LogIndex) {
        let index = index.min(self.last_index());
        if index <= self.base_index {
            return;
        }
        let Some(term) = self.term_at(index) else {
            invariant_violated!(
                "compact target {index} has no term despite being clamped to \
                 ({}, {}] — the live suffix must be dense",
                self.base_index,
                self.last_index()
            );
        };
        let drop = (index - self.base_index) as usize;
        self.entries.drain(..drop);
        self.base_index = index;
        self.base_term = term;
    }

    /// Replace the whole log with the boundary of an installed snapshot:
    /// every live entry is discarded and the base moves to
    /// `(base_index, base_term)`. Used by followers whose log diverged from
    /// (or never reached) the snapshot point; when the snapshot point is
    /// already present with a matching term, use [`RaftLog::compact`]
    /// instead to retain the tail.
    pub fn reset(&mut self, base_index: LogIndex, base_term: Term) {
        self.entries.clear();
        self.base_index = base_index;
        self.base_term = base_term;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(term: Term, index: LogIndex, v: u32) -> Entry<u32> {
        Entry::normal(term, index, Some(v))
    }

    fn log_from(terms: &[Term]) -> RaftLog<u32> {
        let mut log = RaftLog::new();
        for (i, &t) in terms.iter().enumerate() {
            log.append(entry(t, i as LogIndex + 1, i as u32));
        }
        log
    }

    #[test]
    fn empty_log() {
        let log: RaftLog<u32> = RaftLog::new();
        assert_eq!(log.last_index(), 0);
        assert_eq!(log.last_term(), 0);
        assert_eq!(log.term_at(0), Some(0));
        assert_eq!(log.term_at(1), None);
        assert!(log.is_empty());
    }

    #[test]
    fn append_and_lookup() {
        let log = log_from(&[1, 1, 2]);
        assert_eq!(log.last_index(), 3);
        assert_eq!(log.last_term(), 2);
        assert_eq!(log.term_at(2), Some(1));
        assert_eq!(log.entry_at(3).unwrap().data, Some(2));
        assert_eq!(log.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn non_contiguous_append_panics() {
        let mut log = log_from(&[1]);
        log.append(entry(1, 5, 0));
    }

    #[test]
    fn try_append_success_on_match() {
        let mut log = log_from(&[1, 1]);
        let out = log.try_append(2, 1, &[entry(2, 3, 30), entry(2, 4, 40)]);
        assert_eq!(out, AppendOutcome::Success { last_index: 4 });
        assert_eq!(log.last_index(), 4);
        assert_eq!(log.term_at(4), Some(2));
    }

    #[test]
    fn try_append_heartbeatlike_empty() {
        let mut log = log_from(&[1, 1]);
        let out = log.try_append(2, 1, &[]);
        assert_eq!(out, AppendOutcome::Success { last_index: 2 });
        assert_eq!(log.last_index(), 2);
    }

    #[test]
    fn try_append_conflict_on_missing_prev() {
        let mut log = log_from(&[1]);
        let out = log.try_append(5, 1, &[entry(1, 6, 0)]);
        assert_eq!(out, AppendOutcome::Conflict { hint: 1 });
        assert_eq!(log.last_index(), 1, "log unchanged");
    }

    #[test]
    fn try_append_conflict_on_term_mismatch() {
        let mut log = log_from(&[1, 2, 2]);
        let out = log.try_append(3, 3, &[entry(3, 4, 0)]);
        assert_eq!(out, AppendOutcome::Conflict { hint: 2 });
    }

    #[test]
    fn try_append_truncates_conflicting_suffix() {
        let mut log = log_from(&[1, 1, 1, 1]);
        // Leader says entry 3 has term 2: our 3 and 4 are garbage.
        let out = log.try_append(2, 1, &[entry(2, 3, 99)]);
        assert_eq!(out, AppendOutcome::Success { last_index: 3 });
        assert_eq!(log.last_index(), 3);
        assert_eq!(log.term_at(3), Some(2));
        assert_eq!(log.entry_at(3).unwrap().data, Some(99));
    }

    #[test]
    fn try_append_is_idempotent_for_duplicates() {
        let mut log = log_from(&[1, 1]);
        let batch = [entry(1, 3, 30)];
        assert_eq!(
            log.try_append(2, 1, &batch),
            AppendOutcome::Success { last_index: 3 }
        );
        // Redelivered (e.g. TCP-level retry after a dropped response).
        assert_eq!(
            log.try_append(2, 1, &batch),
            AppendOutcome::Success { last_index: 3 }
        );
        assert_eq!(log.last_index(), 3);
    }

    #[test]
    fn stale_overlapping_append_does_not_truncate_matching_tail() {
        let mut log = log_from(&[1, 1, 1]);
        // A delayed append that covers an old range we already have.
        let out = log.try_append(1, 1, &[entry(1, 2, 1)]);
        assert_eq!(out, AppendOutcome::Success { last_index: 2 });
        // Entry 3 survives: nothing conflicted.
        assert_eq!(log.last_index(), 3);
    }

    #[test]
    fn up_to_date_check() {
        let log = log_from(&[1, 2, 2]);
        // Higher last term wins regardless of length.
        assert!(log.candidate_up_to_date(1, 3));
        // Same term needs at least our length.
        assert!(log.candidate_up_to_date(3, 2));
        assert!(!log.candidate_up_to_date(2, 2));
        // Lower term always loses.
        assert!(!log.candidate_up_to_date(100, 1));
    }

    #[test]
    fn entries_from_respects_max() {
        let log = log_from(&[1, 1, 1, 1, 1]);
        let out = log.entries_from(2, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, 2);
        assert_eq!(out[1].index, 3);
        assert!(log.entries_from(6, 10).is_empty());
        assert!(log.entries_from(0, 10).is_empty());
    }

    #[test]
    fn compaction_preserves_boundary_semantics() {
        let mut log = log_from(&[1, 1, 2, 2, 3]);
        log.compact(3);
        assert_eq!(log.first_index(), 4);
        assert_eq!(log.last_index(), 5);
        assert_eq!(log.term_at(3), Some(2), "boundary term retained");
        assert_eq!(log.term_at(2), None, "compacted entries gone");
        assert_eq!(log.len(), 2);
        // Appends still line up.
        let out = log.try_append(5, 3, &[entry(3, 6, 60)]);
        assert_eq!(out, AppendOutcome::Success { last_index: 6 });
        // Compacting again further is fine; beyond last_index is clamped.
        log.compact(100);
        assert_eq!(log.first_index(), 7);
        assert_eq!(log.last_term(), 3);
    }

    #[test]
    fn compact_noop_for_old_index() {
        let mut log = log_from(&[1, 1, 1]);
        log.compact(2);
        log.compact(1); // no-op
        assert_eq!(log.first_index(), 3);
    }

    #[test]
    fn reset_replaces_everything_with_the_snapshot_boundary() {
        let mut log = log_from(&[1, 1, 2]);
        log.reset(10, 4);
        assert!(log.is_empty());
        assert_eq!(log.first_index(), 11);
        assert_eq!(log.last_index(), 10);
        assert_eq!(log.last_term(), 4);
        assert_eq!(log.term_at(10), Some(4), "boundary term answers checks");
        assert_eq!(log.term_at(9), None);
        // Appends continue from the new base.
        let out = log.try_append(10, 4, &[entry(4, 11, 0)]);
        assert_eq!(out, AppendOutcome::Success { last_index: 11 });
        // Up-to-date checks use the boundary when no live entries exist.
        let fresh = log_from(&[]);
        let mut snap_only: RaftLog<u32> = RaftLog::new();
        snap_only.reset(5, 3);
        assert!(snap_only.candidate_up_to_date(5, 3));
        assert!(!snap_only.candidate_up_to_date(4, 3));
        assert!(fresh.candidate_up_to_date(0, 0));
    }

    proptest! {
        /// Boundary semantics around `base_index` survive any compaction
        /// point: `term_at`/`entry_at`/`entries_from` agree with an
        /// uncompacted twin on the retained range, answer the boundary from
        /// `base_term`, and return nothing below it.
        #[test]
        fn prop_compaction_boundary_semantics(
            terms in proptest::collection::vec(1u64..5, 1..40),
            cut in 0u64..50,
            probe in 0u64..50,
        ) {
            let mut terms = terms;
            terms.sort_unstable(); // terms must be non-decreasing in a log
            let full = log_from(&terms);
            let mut log = full.clone();
            log.compact(cut); // clamped to last_index internally
            let base = cut.min(full.last_index());
            prop_assert_eq!(log.first_index(), base + 1);
            prop_assert_eq!(log.last_index(), full.last_index());
            prop_assert_eq!(log.last_term(), full.last_term());
            prop_assert_eq!(log.len() as u64, full.last_index() - base);
            // term_at: boundary included, compacted prefix gone, retained
            // range identical to the uncompacted twin.
            if probe == base {
                prop_assert_eq!(log.term_at(probe), full.term_at(base));
            } else if probe < base || probe > full.last_index() {
                if probe < base {
                    prop_assert_eq!(log.term_at(probe), None);
                } else {
                    prop_assert_eq!(log.term_at(probe), full.term_at(probe));
                }
            } else {
                prop_assert_eq!(log.term_at(probe), full.term_at(probe));
                prop_assert_eq!(
                    log.entry_at(probe).map(|e| e.data),
                    full.entry_at(probe).map(|e| e.data)
                );
            }
            // entries_from: empty at or below the base, suffix-equal above.
            let got = log.entries_from(probe, 100);
            if probe <= base || probe > full.last_index() {
                prop_assert!(got.is_empty());
            } else {
                prop_assert_eq!(&got, &full.entries_from(probe, 100));
                prop_assert_eq!(got[0].index, probe);
            }
        }
    }

    proptest! {
        /// Log Matching property: after any sequence of leader-style batches
        /// applied to two logs, if two entries at the same index have the
        /// same term they carry the same data, and all preceding entries
        /// match as well.
        #[test]
        fn prop_log_matching(splits in proptest::collection::vec(1usize..5, 1..20)) {
            // Build a "leader history": terms increase; each batch appends
            // `n` entries at term = batch number.
            let mut leader: RaftLog<u32> = RaftLog::new();
            let mut follower: RaftLog<u32> = RaftLog::new();
            for (batch_no, &n) in splits.iter().enumerate() {
                let term = batch_no as Term + 1;
                let prev = leader.last_index();
                let prev_term = leader.last_term();
                let mut batch = Vec::new();
                for k in 0..n {
                    let index = prev + k as LogIndex + 1;
                    batch.push(Entry::normal(term, index, Some(index as u32 * 10)));
                }
                for e in &batch {
                    leader.append(e.clone());
                }
                // Follower receives the batch (possibly redundantly).
                let ok = matches!(follower.try_append(prev, prev_term, &batch), AppendOutcome::Success { .. });
                prop_assert!(ok);
                let ok2 = matches!(follower.try_append(prev, prev_term, &batch), AppendOutcome::Success { .. });
                prop_assert!(ok2);
            }
            prop_assert_eq!(leader.last_index(), follower.last_index());
            for i in 1..=leader.last_index() {
                prop_assert_eq!(leader.term_at(i), follower.term_at(i));
                prop_assert_eq!(&leader.entry_at(i).unwrap().data, &follower.entry_at(i).unwrap().data);
            }
        }
    }
}
